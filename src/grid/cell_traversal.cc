#include "grid/cell_traversal.h"

#include <algorithm>

namespace topkmon {

namespace {

struct HeapCompare {
  // std::push_heap builds a max-heap with operator<; compare maxscores.
  bool operator()(const MaxScoreTraversal::Entry& a,
                  const MaxScoreTraversal::Entry& b) const {
    return a.maxscore < b.maxscore;
  }
};

/// Per-axis step from a cell toward lower scores: away from the best
/// corner, i.e. -1 on increasing axes and +1 on decreasing axes.
int DescendingStep(const ScoringFunction& f, int axis) {
  return f.direction(axis) == Monotonicity::kIncreasing ? -1 : +1;
}

}  // namespace

void TraversalScratch::Reset(std::size_t num_cells) {
  if (marks_.size() < num_cells) {
    marks_.assign(num_cells, 0);
    epoch_ = 1;
    return;
  }
  if (++epoch_ == 0) {  // wrapped: clear and restart
    std::fill(marks_.begin(), marks_.end(), 0);
    epoch_ = 1;
  }
}

CellIndex SeedCell(const Grid& grid, const ScoringFunction& f) {
  CellCoords coords{};
  for (int i = 0; i < grid.dim(); ++i) {
    coords[i] = f.direction(i) == Monotonicity::kIncreasing
                    ? grid.cells_per_axis() - 1
                    : 0;
  }
  return grid.Compose(coords);
}

CellIndex ConstrainedSeedCell(const Grid& grid, const ScoringFunction& f,
                              const Rect& constraint) {
  assert(constraint.dim() == grid.dim());
  const Point corner = f.BestCorner(constraint);
  CellCoords coords = grid.Decompose(grid.LocateCell(corner));
  // A corner lying exactly on a grid line can be located into the adjacent
  // cell that does not intersect the constraint (e.g. corner 0.6 on a
  // 10-cell axis: 0.6 * 10 rounds to 6 but cell 6 starts past the
  // constraint's hi of 0.6 - ulp). Nudge such coordinates back inside;
  // cell bounds are reproduced with the same arithmetic as CellBounds().
  const double delta = grid.delta();
  for (int i = 0; i < grid.dim(); ++i) {
    if (coords[i] > 0 && coords[i] * delta > constraint.hi()[i]) {
      --coords[i];
    } else if (coords[i] < grid.cells_per_axis() - 1 &&
               (coords[i] + 1) * delta < constraint.lo()[i]) {
      ++coords[i];
    }
  }
  return grid.Compose(coords);
}

MaxScoreTraversal::MaxScoreTraversal(const Grid& grid,
                                     const ScoringFunction& f,
                                     TraversalScratch* scratch,
                                     const Rect* constraint)
    : grid_(grid), f_(f), scratch_(scratch), constraint_(constraint) {
  assert(f.dim() == grid.dim());
  scratch_->Reset(grid.num_cells());
  CellIndex seed;
  if (constraint_ == nullptr) {
    seed = SeedCell(grid, f);
  } else {
    // The cell containing the best corner of the constraint region has the
    // highest clipped maxscore (Figure 12 starts at c_{5,5}).
    seed = ConstrainedSeedCell(grid, f, *constraint_);
  }
  Push(seed);
}

std::optional<Rect> MaxScoreTraversal::ClippedBounds(CellIndex cell) const {
  Rect bounds = grid_.CellBounds(cell);
  if (constraint_ == nullptr) return bounds;
  if (!bounds.Intersects(*constraint_)) return std::nullopt;
  Point lo(grid_.dim());
  Point hi(grid_.dim());
  for (int i = 0; i < grid_.dim(); ++i) {
    lo[i] = std::max(bounds.lo()[i], constraint_->lo()[i]);
    hi[i] = std::min(bounds.hi()[i], constraint_->hi()[i]);
  }
  return Rect(lo, hi);
}

void MaxScoreTraversal::Push(CellIndex cell) {
  if (!scratch_->Mark(cell)) return;  // already en-heaped
  std::optional<Rect> bounds = ClippedBounds(cell);
  if (!bounds.has_value()) return;  // outside the constraint region
  heap_.push_back(Entry{cell, f_.MaxScore(*bounds)});
  std::push_heap(heap_.begin(), heap_.end(), HeapCompare{});
}

MaxScoreTraversal::Entry MaxScoreTraversal::Next() {
  assert(HasNext());
  std::pop_heap(heap_.begin(), heap_.end(), HeapCompare{});
  const Entry top = heap_.back();
  heap_.pop_back();
  ++num_processed_;
  // En-heap the per-axis neighbors one step toward lower scores
  // (Figure 6, lines 9-12).
  CellCoords coords = grid_.Decompose(top.cell);
  for (int axis = 0; axis < grid_.dim(); ++axis) {
    const int step = DescendingStep(f_, axis);
    const std::int32_t next = coords[axis] + step;
    if (next < 0 || next >= grid_.cells_per_axis()) continue;
    CellCoords neighbor = coords;
    neighbor[axis] = next;
    Push(grid_.Compose(neighbor));
  }
  return top;
}

std::vector<CellIndex> MaxScoreTraversal::RemainingFrontier() const {
  std::vector<CellIndex> frontier;
  frontier.reserve(heap_.size());
  for (const Entry& e : heap_) frontier.push_back(e.cell);
  return frontier;
}

void WalkDescending(const Grid& grid, const ScoringFunction& f,
                    const std::vector<CellIndex>& seeds,
                    TraversalScratch* scratch,
                    const std::function<bool(CellIndex)>& visit) {
  scratch->Reset(grid.num_cells());
  std::vector<CellIndex> list;
  list.reserve(seeds.size());
  for (CellIndex seed : seeds) {
    if (scratch->Mark(seed)) list.push_back(seed);
  }
  // The order of visiting does not matter (Section 4.3), so a plain list
  // replaces the heap.
  for (std::size_t i = 0; i < list.size(); ++i) {
    const CellIndex cell = list[i];
    if (!visit(cell)) continue;
    CellCoords coords = grid.Decompose(cell);
    for (int axis = 0; axis < grid.dim(); ++axis) {
      const int step = DescendingStep(f, axis);
      const std::int32_t next = coords[axis] + step;
      if (next < 0 || next >= grid.cells_per_axis()) continue;
      CellCoords neighbor = coords;
      neighbor[axis] = next;
      const CellIndex ni = grid.Compose(neighbor);
      if (scratch->Mark(ni)) list.push_back(ni);
    }
  }
}

}  // namespace topkmon
