// ReplicaFollower — warm-standby daemon: ships the leader's journal and
// continuously replays it into a read-only MonitorService.
//
// One follower owns one MonitorService in follower role (engine fed by
// replay, writes refused with a redirect) plus a pump thread that drives
// the replication loop against the leader's TCP server:
//
//   ReplFetch (segment, offset) ──► leader TcpServer / JournalShipper
//        ▲                                   │ raw journal bytes
//        │                                   ▼
//   local journal dir  ◄── append ── chunk ── parse complete frames
//   (byte-identical leader prefix)            │ CycleJournalReader logic,
//                                             ▼ in-memory (format.h)
//                              MonitorService::ApplyReplicated
//                              (engine + sessions + delta fan-out)
//
// Guarantees and behaviors:
//   * Bytes are persisted to the local journal directory *before* they
//     are applied, so a follower restart resumes from its own disk
//     (Open replays the newest locally-anchored segment exactly like
//     crash recovery — RecoveryDriver's selection rule — truncates any
//     torn tail, and continues fetching from that offset).
//   * A chunk ending mid-frame (the leader's live tail) just waits for
//     the rest: partial frames are never applied, so a torn leader tail
//     can at worst delay the follower, not corrupt it.
//   * `sealed` chunks advance to the next segment; its anchor snapshot
//     is skipped (the follower already holds exactly that state).
//   * `restart` (the leader garbage-collected past us, or was replaced)
//     wipes the local directory, resets the service to a fresh engine
//     (sessions and their delta buffers survive) and re-ships from the
//     leader's oldest segment — whose anchor snapshot is a complete
//     catch-up. Slow followers therefore never stall the leader; they
//     pay with a full resync.
//   * The leader being down is not fatal: fetches fail, the follower
//     keeps serving reads at its last applied state, and the pump
//     reconnects with backoff until Stop() or Promote().
//
// Promote() stops the pump and turns the service into a leader in place
// (MonitorService::Promote): journaling resumes over the shipped
// directory and writes are accepted — the manual failover path.

#ifndef TOPKMON_REPLICA_FOLLOWER_H_
#define TOPKMON_REPLICA_FOLLOWER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "net/client.h"
#include "service/monitor_service.h"

namespace topkmon {

struct ReplicaFollowerOptions {
  std::string leader_host = "127.0.0.1";
  std::uint16_t leader_port = 0;
  /// Session label of the fetch connection on the leader (diagnostics).
  std::string label = "replica";
  /// Bytes requested per fetch (server clamps to kMaxReplChunkBytes).
  std::uint32_t fetch_bytes = 256u << 10;
  /// Server-side long-poll per fetch when the journal has nothing new.
  std::chrono::milliseconds fetch_wait{200};
  /// Pacing while tail-chasing: when a chunk comes back *partial* (the
  /// follower is at the live tail, not catching up), wait this long
  /// before the next fetch instead of hammering the leader with a
  /// round trip per appended cycle — each fetch costs the leader's
  /// poll thread fixed work, and at the tail that fixed cost would
  /// otherwise dominate (measured in bench/replica_lag). Full chunks
  /// (catch-up, bandwidth-bound) are never paced. Bounds steady-state
  /// apply lag from below; 0 disables pacing.
  std::chrono::milliseconds fetch_interval{2};
  /// Backoff between reconnect attempts while the leader is unreachable.
  std::chrono::milliseconds reconnect_backoff{200};
  NetClientOptions client;
};

/// Pump-thread counters (snapshot; see also service().replication()).
struct ReplicaFollowerStats {
  std::uint64_t chunks_received = 0;
  std::uint64_t bytes_shipped = 0;     ///< journal bytes received
  std::uint64_t records_applied = 0;   ///< journal records replayed live
  std::uint64_t segments_completed = 0;
  std::uint64_t restarts = 0;          ///< full resyncs (leader GC'd past us)
  std::uint64_t fetch_errors = 0;      ///< failed fetches / reconnects
  std::uint64_t current_segment = 0;
  std::uint64_t shipped_offset = 0;    ///< bytes of current segment on disk
  Timestamp applied_cycle_ts = 0;
  Timestamp leader_cycle_ts = 0;
  bool connected = false;
  /// Steady-clock instant of the last *successful* fetch (including
  /// empty long-poll answers — they still prove the leader is alive).
  /// Zero (epoch of the steady clock) until the first success. The
  /// failover agent's liveness probe: a leader is presumed dead once
  /// this stalls past the election timeout.
  std::chrono::steady_clock::time_point last_fetch_ok{};

  /// Cycle-timestamp apply lag (leader progress minus ours) — the same
  /// staleness formula follower reads carry on the wire.
  Timestamp LagTs() const {
    ReplicationInfo info;
    info.applied_cycle_ts = applied_cycle_ts;
    info.leader_cycle_ts = leader_cycle_ts;
    return info.StaleBy();
  }
};

class ReplicaFollower {
 public:
  /// Builds the follower service (engine from `engine_factory`),
  /// bootstraps it from any journal already shipped into
  /// `service_options.journal.dir` (required non-empty — it is the local
  /// ship target), and starts the pump thread against the leader.
  static Result<std::unique_ptr<ReplicaFollower>> Open(
      const std::function<std::unique_ptr<MonitorEngine>()>& engine_factory,
      const ServiceOptions& service_options,
      const ReplicaFollowerOptions& options);

  ~ReplicaFollower();

  ReplicaFollower(const ReplicaFollower&) = delete;
  ReplicaFollower& operator=(const ReplicaFollower&) = delete;

  /// The follower-mode service: read it (FindSession, CurrentResult,
  /// delta polls) or front it with its own TcpServer for remote readers.
  MonitorService& service() { return *service_; }
  const MonitorService& service() const { return *service_; }

  ReplicaFollowerStats stats() const;

  /// Blocks until the follower has applied a cycle at or past `ts`, or
  /// `timeout` passes (FailedPrecondition). The test/ops barrier for
  /// "caught up to the leader's cycle X".
  Status WaitForCycleTs(Timestamp ts, std::chrono::milliseconds timeout);

  /// Stops the pump thread (idempotent; the service keeps serving reads
  /// at its last applied state).
  void Stop();

  /// Failover: stops the pump, then promotes the service to leader in
  /// place. After Ok, service() accepts writes and journals into the
  /// shipped directory. The follower object is done (pump stays stopped).
  Status Promote();

  /// Election promotion (v5): like Promote(), but names the new fencing
  /// epoch — must exceed every epoch this follower has observed from
  /// shipped chunks. The failover agent calls this with the epoch it
  /// won the election at.
  Status Promote(std::uint64_t new_epoch);

  /// Re-targets the pump at a different leader (v5 failover: a sibling
  /// follower won the election). The current connection is abandoned
  /// and the next fetch goes to `host:port`; the service's
  /// redirect-to-leader endpoint is updated in the same breath. Safe
  /// from any thread, including while the pump is mid-fetch.
  void SetLeader(const std::string& host, std::uint16_t port);

  /// Where the pump currently fetches from ("host:port").
  std::string leader_endpoint() const;

 private:
  ReplicaFollower(std::unique_ptr<MonitorService> service,
                  ReplicaFollowerOptions options, std::string journal_dir);

  /// Replays any locally shipped journal into the fresh service and
  /// positions the ship cursor; called once before the pump starts.
  Status Bootstrap();

  void PumpLoop();
  /// Applies every complete frame buffered for the current segment.
  /// Returns false on corruption (caller resyncs).
  bool ApplyBuffered(std::string* error);
  /// Appends chunk bytes to the current local segment file.
  Status PersistChunk(const std::string& data);
  void CloseSegmentFile(bool sync);
  /// Deletes every local segment except `keep` (default: delete all).
  void WipeLocalSegments(std::uint64_t keep = ~std::uint64_t{0});
  /// Full resync: wipe local state and restart shipping at `segment`.
  Status ResyncFrom(std::uint64_t segment);
  /// Interruptible sleep (wakes early on Stop).
  void Backoff(std::chrono::milliseconds wait);

  /// Bridges pump counters + apply lag into the service's metric scrape
  /// (registered by Open, removed by Stop).
  void SampleReplicaMetrics(MetricSink& sink) const;
  /// The "replica" section the service's stats() / /statusz carries.
  std::vector<std::pair<std::string, std::string>> StatsSection() const;

  std::unique_ptr<MonitorService> service_;
  const ReplicaFollowerOptions options_;
  const std::string journal_dir_;

  // Re-targetable leader endpoint (guarded by mu_). retarget_ tells the
  // pump its current connection points at a deposed leader.
  std::string leader_host_;
  std::uint16_t leader_port_ = 0;
  bool retarget_ = false;

  // Pump-thread state (only touched by the pump and, before it starts,
  // by Bootstrap).
  std::unique_ptr<MonitorClient> client_;
  std::uint64_t segment_ = 0;        ///< segment being shipped
  std::uint64_t shipped_ = 0;        ///< bytes of it on local disk
  std::string buffer_;               ///< received, not yet applied
  bool header_done_ = false;         ///< 16-byte segment header consumed
  bool anchor_done_ = false;         ///< leading snapshot record consumed
  bool apply_anchor_ = true;         ///< apply (bootstrap/resync) vs skip
  /// Set when Bootstrap resumed from pre-existing local bytes; armed
  /// until the first successful connect. Bytes this process shipped
  /// itself are always a prefix of the elected leader's journal, but
  /// bytes inherited from disk may have been written by a deposed
  /// leader past the ship point — same (segment, offset) coordinates,
  /// different content. If the first leader we reach serves a fencing
  /// epoch newer than the one our journal dir was written under, the
  /// local tail is suspect and we full-resync instead of continuing
  /// byte-wise (the shipper cannot detect divergence at offsets that
  /// still fit inside its segment).
  bool resumed_from_disk_ = false;
  int segment_fd_ = -1;

  mutable std::mutex mu_;
  std::condition_variable stop_cv_;
  ReplicaFollowerStats stats_;
  std::atomic<bool> stop_{false};
  bool stopped_ = false;  ///< pump joined
  /// Admin-plane registrations on the owned service (0 = none).
  /// Removed by the first Stop(), outside mu_ — the sampler/provider
  /// take mu_ themselves, so removing under it would deadlock.
  std::uint64_t sampler_id_ = 0;
  std::uint64_t section_id_ = 0;
  std::thread pump_;
};

}  // namespace topkmon

#endif  // TOPKMON_REPLICA_FOLLOWER_H_
