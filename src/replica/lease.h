// Leader lease + fencing-epoch primitives for automatic failover.
//
// The replication tier's failure model (docs/REPLICATION.md): one
// journaled leader, N followers pulling journal bytes over ReplFetch.
// The lease rides that existing traffic — every fetch a follower makes
// IS a lease renewal, so a leader that can still reach its followers
// keeps its lease without any extra protocol, and a leader cut off from
// all of them watches the lease run out and fences itself. Elections
// are follower-driven (src/replica/failover.h); the epoch is the
// fencing token that makes the handoff safe:
//
//   - Every leadership term has a fencing epoch, monotone across
//     failovers, persisted in an EPOCH file next to the journal
//     segments (the journal byte format itself is untouched).
//   - A promoting follower bumps the epoch; the old leader — paused,
//     partitioned, or restarted — refuses every write with FENCED the
//     moment its lease lapses or it observes a higher epoch, whichever
//     comes first. Observation is sticky: once deposed, always deposed.
//
// Timing uses the same injectable clock as MonitorService
// (SetClockForTesting), so lease-expiry tests are deterministic.

#ifndef TOPKMON_REPLICA_LEASE_H_
#define TOPKMON_REPLICA_LEASE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace topkmon {

/// Leader-lease configuration (ServiceOptions::lease). Leases are
/// opt-in: a default-constructed options struct disables them and the
/// service behaves exactly as before v5 (epoch pinned at 0, writes
/// never fenced).
struct LeaseOptions {
  /// Master switch. When false the service neither tracks renewals nor
  /// fences writes.
  bool enabled = false;
  /// Seconds of follower silence after which the leader self-fences.
  /// An electing follower must wait strictly longer than this before
  /// self-promoting (FailoverOptions::election_timeout_seconds), so the
  /// old leader is provably fenced before the new one accepts a write.
  double duration_seconds = 2.0;
};

/// Thread-safe renewal clock for a leader's lease. The server's poll
/// loops renew it on every follower fetch; the write path checks
/// Expired() against the service clock. No internal locking beyond the
/// atomics — callers never need a consistent multi-field view.
class FencingLease {
 public:
  explicit FencingLease(double duration_seconds)
      : duration_seconds_(duration_seconds) {}

  /// Arms the lease: the grace period starts at `now`, so a freshly
  /// promoted or restarted leader is not instantly expired while its
  /// followers re-target.
  void Start(double now) {
    last_renewal_.store(now, std::memory_order_relaxed);
  }

  /// Records follower contact (a ReplFetch served). Monotone: a stale
  /// renewal never moves the clock backwards.
  void Renew(double now) {
    double prev = last_renewal_.load(std::memory_order_relaxed);
    while (prev < now && !last_renewal_.compare_exchange_weak(
                             prev, now, std::memory_order_relaxed)) {
    }
  }

  bool Expired(double now) const {
    return now - last_renewal_.load(std::memory_order_relaxed) >
           duration_seconds_;
  }

  double duration_seconds() const { return duration_seconds_; }

 private:
  const double duration_seconds_;
  std::atomic<double> last_renewal_{0.0};
};

// ---- epoch minting ----------------------------------------------------
//
// Minted epochs are node-unique by construction: the low byte of every
// epoch is the minting node's rank, the high bits a monotone
// generation. Two candidates that cannot see each other (symmetric
// partition, probe timeouts) may both win their own election round —
// with a bare max+1 mint they would settle on the SAME epoch, and the
// strictly-greater-than arbitration everywhere (ObserveFencingEpoch,
// router re-resolution, election leader adoption) could then never pick
// between them: an undetectable, unhealing split brain. Distinct ranks
// make the minted epochs distinct, so the split stays inside the
// documented lease-window tradeoff and heals the moment arbitration
// sees both terms. Ranks come from the statically configured membership
// (FailoverOptions::self_endpoint + peers, sorted), so they are stable
// across rounds and identical on every node as long as every node is
// configured with the same member set.

/// Bits of a fencing epoch that carry the minting node's rank.
inline constexpr unsigned kFencingRankBits = 8;

/// Reserved rank for operator-driven promotions (MonitorService::
/// Promote() with no epoch). Election agents clamp their ranks below
/// this, so a manual promotion can never collide with an automatic one.
inline constexpr std::uint8_t kOperatorFencingRank = 0xFF;

/// The generation (monotone failover counter) of an epoch.
constexpr std::uint64_t FencingEpochGeneration(std::uint64_t epoch) {
  return epoch >> kFencingRankBits;
}

/// Mints the epoch of the next generation after `observed`, tagged with
/// the minter's rank. Strictly greater than `observed` for any rank, so
/// Promote()'s monotonicity check always passes; distinct ranks yield
/// distinct epochs no matter what each minter observed.
constexpr std::uint64_t MintFencingEpoch(std::uint64_t observed,
                                         std::uint8_t rank) {
  return ((FencingEpochGeneration(observed) + 1) << kFencingRankBits) |
         rank;
}

/// Reads the persisted fencing epoch from `dir`'s EPOCH file. A missing
/// file is epoch 0 (a group that never failed over); a present but
/// unparsable file is an error — better to refuse startup than to
/// resurrect a deposed leader at a stale epoch.
Result<std::uint64_t> ReadFencingEpoch(const std::string& dir);

/// Durably persists `epoch` into `dir`/EPOCH (write-temp, fsync,
/// rename, fsync dir) — the same crash discipline as journal sealing.
/// Must complete before a promoted leader accepts its first write.
Status WriteFencingEpoch(const std::string& dir, std::uint64_t epoch);

}  // namespace topkmon

#endif  // TOPKMON_REPLICA_LEASE_H_
