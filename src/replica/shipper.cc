#include "replica/shipper.h"

#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>

#include "journal/format.h"
#include "journal/journal_reader.h"
#include "util/fs.h"

namespace topkmon {

Result<ShipChunk> JournalShipper::Read(std::uint64_t segment,
                                       std::uint64_t offset,
                                       std::uint32_t max_bytes) const {
  ShipChunk chunk;
  chunk.segment = segment;
  chunk.offset = offset;

  auto segments = ListSegments(dir_);
  if (!segments.ok()) return segments.status();
  if (segments->empty()) return chunk;  // nothing journaled yet

  bool have_requested = false;
  bool have_newer = false;
  std::uint64_t next_after = 0;
  for (const SegmentInfo& info : *segments) {
    if (info.index == segment) have_requested = true;
    if (info.index > segment && (!have_newer || info.index < next_after)) {
      have_newer = true;
      next_after = info.index;
    }
  }
  if (!have_requested) {
    // The requested segment is gone (GC past a slow follower) or never
    // existed here (journal replaced / follower ahead). Either way the
    // only sound resume point is the oldest segment we do have — its
    // anchor snapshot makes the restart a complete catch-up.
    chunk.restart = true;
    chunk.next_segment = segments->front().index;
    return chunk;
  }

  const std::string path = dir_ + "/" + SegmentFileName(segment);
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      // Deleted between the listing and the open: same as not listed.
      chunk.restart = true;
      chunk.next_segment = have_newer ? next_after : segment;
      return chunk;
    }
    return fs::ErrnoStatus("open " + path, errno);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status err = fs::ErrnoStatus("fstat " + path, errno);
    ::close(fd);
    return err;
  }
  const std::uint64_t size = static_cast<std::uint64_t>(st.st_size);
  if (offset > size) {
    // The follower believes it has more of this segment than exists —
    // the journal was replaced under the same index. Full restart.
    ::close(fd);
    chunk.restart = true;
    chunk.next_segment = segments->front().index;
    return chunk;
  }
  const std::uint32_t want = std::min<std::uint32_t>(
      max_bytes, static_cast<std::uint32_t>(
                     std::min<std::uint64_t>(size - offset, 1u << 30)));
  if (want > 0) {
    chunk.data.resize(want);
    std::size_t got = 0;
    while (got < want) {
      const ssize_t n =
          ::pread(fd, &chunk.data[got], want - got,
                  static_cast<off_t>(offset + got));
      if (n < 0) {
        if (errno == EINTR) continue;
        const Status err = fs::ErrnoStatus("pread " + path, errno);
        ::close(fd);
        return err;
      }
      if (n == 0) break;  // concurrently truncated? serve what we got
      got += static_cast<std::size_t>(n);
    }
    chunk.data.resize(got);
  }
  ::close(fd);
  // A higher-indexed segment seals this one: no append will ever land
  // here again, so reaching `size` means the follower can move on.
  if (have_newer && offset + chunk.data.size() == size) {
    chunk.sealed = true;
    chunk.next_segment = next_after;
  }
  return chunk;
}

Status JournalShipper::End(std::uint64_t* segment,
                           std::uint64_t* offset) const {
  *segment = 0;
  *offset = 0;
  auto segments = ListSegments(dir_);
  if (!segments.ok()) return segments.status();
  if (segments->empty()) return Status::Ok();
  const SegmentInfo& last = segments->back();
  const std::string path = dir_ + "/" + SegmentFileName(last.index);
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    // Rotated away between the listing and the stat; report the new
    // segment at zero — the caller only needs a monotone lower bound.
    if (errno == ENOENT) {
      *segment = last.index;
      return Status::Ok();
    }
    return fs::ErrnoStatus("stat " + path, errno);
  }
  *segment = last.index;
  *offset = static_cast<std::uint64_t>(st.st_size);
  return Status::Ok();
}

}  // namespace topkmon
