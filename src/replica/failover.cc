#include "replica/failover.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "replica/lease.h"

namespace topkmon {
namespace {

/// Splits "host:port"; returns false on anything unparsable.
bool SplitEndpoint(const std::string& endpoint, std::string* host,
                   std::uint16_t* port) {
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= endpoint.size()) {
    return false;
  }
  char* end = nullptr;
  const unsigned long value =
      std::strtoul(endpoint.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || value == 0 || value > 65535) {
    return false;
  }
  *host = endpoint.substr(0, colon);
  *port = static_cast<std::uint16_t>(value);
  return true;
}

}  // namespace

FailoverAgent::FailoverAgent(ReplicaFollower* follower,
                             FailoverOptions options)
    : follower_(follower), options_(std::move(options)) {
  // Admin plane: election counters join the follower service's scrape
  // and /statusz until Stop deregisters them.
  sampler_id_ = follower_->service().metrics().AddSampler(
      [this](MetricSink& sink) { SampleFailoverMetrics(sink); });
  section_id_ = follower_->service().AddStatsSection(
      "failover", [this] { return StatsSection(); });
  thread_ = std::thread([this] { Loop(); });
}

FailoverAgent::~FailoverAgent() { Stop(); }

void FailoverAgent::Stop() {
  std::thread joinable;
  {
    // The store must happen under mu_: SleepFor evaluates its predicate
    // under the same lock, so a waiter that just saw stop_ false is
    // still inside wait_for and cannot miss the notify — storing
    // outside the lock could slip the notification between its
    // predicate check and its block, stalling Stop() a full backoff.
    std::lock_guard<std::mutex> lock(mu_);
    stop_.store(true, std::memory_order_release);
    stop_cv_.notify_all();
    if (joined_) return;
    joined_ = true;
    joinable = std::move(thread_);
  }
  if (joinable.joinable()) joinable.join();
  // First Stop only (later calls returned above). Outside mu_: the
  // sampler/provider take mu_, and both removals block until any
  // in-flight scrape is done with this object.
  if (sampler_id_ != 0) {
    follower_->service().metrics().RemoveSampler(sampler_id_);
    sampler_id_ = 0;
  }
  if (section_id_ != 0) {
    follower_->service().RemoveStatsSection(section_id_);
    section_id_ = 0;
  }
}

void FailoverAgent::SampleFailoverMetrics(MetricSink& sink) const {
  const FailoverStats s = stats();
  sink.AddCounter("topkmon_failover_elections_started_total",
                  "Monitor-loop trips into an election",
                  static_cast<double>(s.elections_started));
  sink.AddCounter("topkmon_failover_rounds_total",
                  "Election probe rounds run",
                  static_cast<double>(s.rounds));
  sink.AddCounter("topkmon_failover_probes_failed_total",
                  "Unreachable peers across all probe rounds",
                  static_cast<double>(s.probes_failed));
  sink.AddCounter("topkmon_failover_leaders_adopted_total",
                  "Pump re-targets to a sibling election winner",
                  static_cast<double>(s.leaders_adopted));
  sink.AddGauge("topkmon_failover_promoted",
                "1 once this node won an election and leads",
                s.promoted ? 1.0 : 0.0);
}

std::vector<std::pair<std::string, std::string>>
FailoverAgent::StatsSection() const {
  const FailoverStats s = stats();
  std::vector<std::pair<std::string, std::string>> rows;
  rows.emplace_back("elections_started",
                    std::to_string(s.elections_started));
  rows.emplace_back("rounds", std::to_string(s.rounds));
  rows.emplace_back("probes_failed", std::to_string(s.probes_failed));
  rows.emplace_back("leaders_adopted",
                    std::to_string(s.leaders_adopted));
  rows.emplace_back("promoted", s.promoted ? "1" : "0");
  return rows;
}

FailoverStats FailoverAgent::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

bool FailoverAgent::promoted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.promoted;
}

bool FailoverAgent::SleepFor(std::chrono::milliseconds wait) {
  std::unique_lock<std::mutex> lock(mu_);
  stop_cv_.wait_for(lock, wait, [this] { return stop_.load(); });
  return !stop_.load(std::memory_order_acquire);
}

std::uint8_t FailoverAgent::SelfRank() const {
  // Position of self in the sorted full membership (self + peers). The
  // configuration is static and — when symmetric across nodes — yields
  // a distinct rank per node, which is what makes minted epochs
  // node-unique (see lease.h): two candidates that failed to probe each
  // other may both promote, but never at the same epoch.
  std::vector<std::string> members = options_.peers;
  members.push_back(options_.self_endpoint);
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()),
                members.end());
  const auto it =
      std::find(members.begin(), members.end(), options_.self_endpoint);
  const auto index = static_cast<std::size_t>(it - members.begin());
  return static_cast<std::uint8_t>(std::min<std::size_t>(
      index, kOperatorFencingRank - 1));
}

bool FailoverAgent::Outranks(const Candidate& a, const Candidate& b) {
  if (a.applied_cycle_ts != b.applied_cycle_ts) {
    return a.applied_cycle_ts > b.applied_cycle_ts;
  }
  if (a.journal_segment != b.journal_segment) {
    return a.journal_segment > b.journal_segment;
  }
  if (a.journal_offset != b.journal_offset) {
    return a.journal_offset > b.journal_offset;
  }
  // Frontier tie: the smallest endpoint wins. Every agent computes the
  // same order from the same probe answers, so at most one candidate
  // believes it is the winner.
  return a.endpoint < b.endpoint;
}

void FailoverAgent::Loop() {
  // The silence clock starts now: a follower booted against an already
  // dead leader should still wait a full election_timeout before its
  // first election, not fire instantly off a zero last_fetch_ok.
  auto baseline = std::chrono::steady_clock::now();
  while (SleepFor(options_.poll_interval)) {
    if (follower_->service().role() == ServiceRole::kLeader) {
      // Promoted out from under us (operator Promote, or our own win
      // last round). Nothing left to monitor.
      return;
    }
    const ReplicaFollowerStats st = follower_->stats();
    const auto last = std::max(st.last_fetch_ok, baseline);
    if (std::chrono::steady_clock::now() - last <
        options_.election_timeout) {
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.elections_started;
    }
    if (!RunElection()) return;  // stopped mid-election
    if (promoted()) return;
    // A sibling won and the pump was re-targeted; give the new leader a
    // fresh silence window before judging it.
    baseline = std::chrono::steady_clock::now();
  }
}

bool FailoverAgent::RunElection() {
  NetClientOptions probe_client;
  probe_client.io_timeout = options_.probe_timeout;
  while (!stop_.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.rounds;
    }
    // Our own candidacy, sampled once per round. The leader is dead, so
    // nobody's frontier moves mid-round and every agent ranks the same
    // snapshot.
    const ReplicaFollowerStats self_stats = follower_->stats();
    Candidate self;
    self.endpoint = options_.self_endpoint;
    self.applied_cycle_ts = self_stats.applied_cycle_ts;
    self.journal_segment = self_stats.current_segment;
    self.journal_offset = self_stats.shipped_offset;

    std::uint64_t max_epoch = follower_->service().fencing_epoch();
    Candidate winner = self;
    std::string leader_endpoint;
    std::uint64_t leader_epoch = 0;
    for (const std::string& peer : options_.peers) {
      std::string host;
      std::uint16_t port = 0;
      if (!SplitEndpoint(peer, &host, &port)) continue;
      auto client = MonitorClient::Connect(
          host, port, "failover:" + options_.self_endpoint,
          /*resume=*/true, probe_client);
      if (!client.ok()) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.probes_failed;
        continue;
      }
      const auto status = (*client)->GetStatus();
      (void)(*client)->Close(/*close_session=*/false);
      if (!status.ok()) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.probes_failed;
        continue;
      }
      max_epoch = std::max(max_epoch, status->fencing_epoch);
      if (status->fenced) {
        // A fenced leader is a deposed one: it refuses writes, cannot
        // promote again, and must be neither adopted as a leader nor
        // ranked as a candidate. Its epoch still raised max_epoch
        // above, so our mint outranks its dead term.
        continue;
      }
      if (status->role == static_cast<std::uint8_t>(ServiceRole::kLeader)) {
        // Someone already won (or the probed node was a leader all
        // along). Prefer the highest-epoch leader if several answer —
        // stale deposed leaders lose to the freshest term.
        if (leader_endpoint.empty() || status->fencing_epoch > leader_epoch) {
          leader_endpoint = peer;
          leader_epoch = status->fencing_epoch;
        }
        continue;
      }
      Candidate c;
      c.endpoint = peer;
      c.applied_cycle_ts = status->applied_cycle_ts;
      c.journal_segment = status->journal_segment;
      c.journal_offset = status->journal_offset;
      if (Outranks(c, winner)) winner = c;
    }

    if (!leader_endpoint.empty()) {
      std::string host;
      std::uint16_t port = 0;
      SplitEndpoint(leader_endpoint, &host, &port);
      follower_->SetLeader(host, port);
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.leaders_adopted;
      return true;
    }

    if (winner.endpoint == options_.self_endpoint) {
      const Status st =
          follower_->Promote(MintFencingEpoch(max_epoch, SelfRank()));
      if (st.ok()) {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.promoted = true;
        return true;
      }
      // Promotion failed locally (journal I/O, epoch raced higher).
      // Re-probe after a backoff — by then either the racing winner
      // answers as a leader or our retry gets a fresh epoch.
      if (!SleepFor(options_.takeover_backoff)) return false;
      continue;
    }

    // We lost this round: wait for the winner to answer probes as a
    // leader. If it died mid-election it stops answering entirely,
    // drops out of the next round's candidate set, and the ranking
    // falls to the next follower — no round ends leaderless while any
    // candidate survives.
    if (!SleepFor(options_.takeover_backoff)) return false;
  }
  return false;
}

}  // namespace topkmon
