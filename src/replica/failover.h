// FailoverAgent — unattended, follower-driven leader election.
//
// One agent rides along each ReplicaFollower and turns the manual
// Promote() runbook step into a closed loop (docs/OPERATIONS.md):
//
//   monitor:  the pump's successful fetches double as leader liveness
//             (every answered ReplFetch proves the leader was alive);
//             once they stall past election_timeout the leader is
//             presumed dead and an election round starts.
//   elect:    probe every peer follower's Status (applied cycle
//             frontier, journal end, fencing epoch). The candidate with
//             the longest *applied* journal wins — primary key
//             applied_cycle_ts, then journal (segment, offset), then
//             the lexicographically smallest endpoint as the
//             deterministic tie-break. Probes also discover an already
//             promoted sibling, which short-circuits the round.
//   promote:  the winner self-promotes through ReplicaFollower::Promote
//             with a fencing epoch minted from the highest epoch
//             observed anywhere (MintFencingEpoch in lease.h: next
//             generation, low byte = this node's rank in the sorted
//             configured membership). The rank makes minted epochs
//             node-unique: two candidates that fail to probe each other
//             (symmetric partition, probe timeout) may both promote,
//             but at DIFFERENT epochs, so the strict greater-than
//             arbitration everywhere still settles on one of them and
//             the split heals. This requires every node to be
//             configured with the same member set (self + peers).
//   adopt:    losers back off and re-probe; when the winner shows up as
//             a leader they re-target their pump at it (SetLeader). A
//             winner that died mid-election simply stops answering
//             probes, drops out of the next round's candidate set, and
//             the second-ranked follower takes over — an election
//             round always converges on *some* leader among the
//             followers still alive.
//
// Safety note (docs/REPLICATION.md): election_timeout MUST exceed the
// leader's lease duration. The lease is renewed by follower fetches, so
// "fetches stalled for election_timeout" implies "the leader has seen
// no contact from *this* follower for longer than its lease" — with a
// single follower that proves the old leader fenced itself before the
// new one accepts a write. With several followers a partitioned subset
// can elect while the old leader still hears the rest; the fencing
// epoch then settles who wins (clients follow the highest epoch), but
// writes accepted by the old leader in that window survive only if it
// later rejoins as a follower of itself — this agent is lease-based,
// not quorum-based, and trades that window for zero extra write-path
// coordination.

#ifndef TOPKMON_REPLICA_FAILOVER_H_
#define TOPKMON_REPLICA_FAILOVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "replica/follower.h"

namespace topkmon {

struct FailoverOptions {
  /// How peers reach *this* node's TCP server ("host:port") — the
  /// agent's identity in the candidate ranking and what its siblings
  /// SetLeader to if it wins.
  std::string self_endpoint;
  /// The sibling followers' TCP servers ("host:port" each; not the
  /// leader, not self). Probed every election round.
  std::vector<std::string> peers;
  /// Leader silence (no successful fetch on the pump) after which an
  /// election starts. MUST be strictly greater than the leader's
  /// LeaseOptions::duration_seconds — see the header comment.
  std::chrono::milliseconds election_timeout{3000};
  /// Liveness-check cadence of the monitor loop.
  std::chrono::milliseconds poll_interval{100};
  /// Socket I/O timeout of one peer Status probe.
  std::chrono::milliseconds probe_timeout{1000};
  /// How long a losing candidate waits for the winner to show up as a
  /// leader before re-running the round (the dead-winner takeover
  /// path). Several times smaller than election_timeout is sensible.
  std::chrono::milliseconds takeover_backoff{300};
};

struct FailoverStats {
  std::uint64_t elections_started = 0;  ///< monitor-loop trips into elect
  std::uint64_t rounds = 0;             ///< probe rounds run in total
  std::uint64_t probes_failed = 0;      ///< unreachable peers (cumulative)
  std::uint64_t leaders_adopted = 0;    ///< re-targets to a sibling winner
  bool promoted = false;                ///< this node won and is the leader
};

/// Background failover driver for one ReplicaFollower. Construction
/// starts the monitor thread; Stop() (or destruction) joins it. The
/// follower must outlive the agent.
class FailoverAgent {
 public:
  FailoverAgent(ReplicaFollower* follower, FailoverOptions options);
  ~FailoverAgent();

  FailoverAgent(const FailoverAgent&) = delete;
  FailoverAgent& operator=(const FailoverAgent&) = delete;

  /// Stops the monitor thread (idempotent). A promotion already in
  /// flight completes; one not yet started never will.
  void Stop();

  FailoverStats stats() const;
  /// True once this agent promoted its follower. The service then
  /// accepts writes; the agent's monitor loop has ended.
  bool promoted() const;

 private:
  /// One peer's (or our own) claim in an election round.
  struct Candidate {
    std::string endpoint;
    Timestamp applied_cycle_ts = 0;
    std::uint64_t journal_segment = 0;
    std::uint64_t journal_offset = 0;
  };

  void Loop();
  /// Runs probe rounds until a leader exists (self or adopted) or the
  /// agent is stopped. Returns true when a leader was established.
  bool RunElection();
  /// Ranks `a` above `b`: longer applied journal first, then journal
  /// position, then smallest endpoint. Total order — every candidate
  /// set has exactly one winner, no matter who computes it.
  static bool Outranks(const Candidate& a, const Candidate& b);
  /// This node's position in the sorted configured membership (self +
  /// peers) — the node-unique low byte of every epoch this agent mints.
  std::uint8_t SelfRank() const;
  /// Interruptible sleep; returns false if stopped meanwhile.
  bool SleepFor(std::chrono::milliseconds wait);

  /// Bridges election counters into the follower service's metric
  /// scrape (registered at construction, removed by Stop).
  void SampleFailoverMetrics(MetricSink& sink) const;
  /// The "failover" section the service's stats() / /statusz carries.
  std::vector<std::pair<std::string, std::string>> StatsSection() const;

  ReplicaFollower* const follower_;
  const FailoverOptions options_;

  mutable std::mutex mu_;
  std::condition_variable stop_cv_;
  FailoverStats stats_;
  std::atomic<bool> stop_{false};
  bool joined_ = false;
  /// Admin-plane registrations on the follower's service (0 = none).
  /// Removed by the first Stop(), outside mu_ (the sampler/provider
  /// take mu_ — removing under it would deadlock).
  std::uint64_t sampler_id_ = 0;
  std::uint64_t section_id_ = 0;
  std::thread thread_;
};

}  // namespace topkmon

#endif  // TOPKMON_REPLICA_FAILOVER_H_
