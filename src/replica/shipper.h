// JournalShipper — leader-side read path of journal-shipping replication.
//
// A follower replicates by pulling raw byte ranges of the leader's
// journal segment files (docs/REPLICATION.md): journal bytes go on the
// wire exactly as they sit on disk, so the follower's local files are
// byte-identical prefixes of the leader's and every byte stays under the
// journal's own CRC-32C framing. The shipper is the stateless reader
// behind the ReplFetch request: given (segment, offset) — the next
// unshipped byte — it answers with the bytes that exist right now plus
// the metadata the follower needs to keep its cursor straight:
//
//   * sealed       — the requested segment is complete (a higher-indexed
//                    segment exists, so no byte will ever be appended to
//                    it again) and this chunk reaches its end; continue
//                    at (next_segment, 0).
//   * restart      — the requested segment no longer exists (the leader
//                    rotated and garbage-collected past a slow follower,
//                    or the journal was replaced). The follower must
//                    discard its local copy and re-ship from
//                    (next_segment, 0); every segment starts with a full
//                    snapshot anchor, so a restart is a complete
//                    catch-up, not an error.
//
// Reading races appends harmlessly: the size observed by fstat is a
// consistent lower bound of an append-only file, and a chunk that ends
// mid-frame simply completes in the next fetch. Nothing here blocks on
// or synchronizes with the writer — a slow follower can never stall
// leader ingest.

#ifndef TOPKMON_REPLICA_SHIPPER_H_
#define TOPKMON_REPLICA_SHIPPER_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace topkmon {

/// One answered fetch (mirrors the ReplChunk wire message).
struct ShipChunk {
  std::uint64_t segment = 0;  ///< segment the bytes belong to
  std::uint64_t offset = 0;   ///< file offset the bytes start at
  bool sealed = false;
  bool restart = false;
  std::uint64_t next_segment = 0;  ///< valid when sealed or restart
  std::string data;                ///< raw journal-file bytes (may be empty)
};

/// Stateless chunk reader over a leader's journal directory.
class JournalShipper {
 public:
  explicit JournalShipper(std::string dir) : dir_(std::move(dir)) {}

  /// Reads up to `max_bytes` of segment `segment` starting at `offset`.
  /// An empty chunk with neither flag set means "nothing new yet" (the
  /// caller long-polls). Fails only on real I/O errors.
  Result<ShipChunk> Read(std::uint64_t segment, std::uint64_t offset,
                         std::uint32_t max_bytes) const;

  /// Current end of the journal: the highest segment index and its byte
  /// size. (0, 0) when nothing is journaled yet. Electing followers
  /// compare this (via StatusInfo) to break ties between candidates
  /// whose applied cycle frontiers are equal.
  Status End(std::uint64_t* segment, std::uint64_t* offset) const;

  const std::string& dir() const { return dir_; }

 private:
  const std::string dir_;
};

}  // namespace topkmon

#endif  // TOPKMON_REPLICA_SHIPPER_H_
