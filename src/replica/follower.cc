#include "replica/follower.h"

#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "journal/format.h"
#include "journal/journal_reader.h"
#include "util/fs.h"

namespace topkmon {

using fs::ErrnoStatus;

ReplicaFollower::ReplicaFollower(std::unique_ptr<MonitorService> service,
                                 ReplicaFollowerOptions options,
                                 std::string journal_dir)
    : service_(std::move(service)),
      options_(std::move(options)),
      journal_dir_(std::move(journal_dir)),
      leader_host_(options_.leader_host),
      leader_port_(options_.leader_port) {}

ReplicaFollower::~ReplicaFollower() { Stop(); }

Result<std::unique_ptr<ReplicaFollower>> ReplicaFollower::Open(
    const std::function<std::unique_ptr<MonitorEngine>()>& engine_factory,
    const ServiceOptions& service_options,
    const ReplicaFollowerOptions& options) {
  if (service_options.journal.dir.empty()) {
    return Status::InvalidArgument(
        "a follower needs options.journal.dir — the local directory the "
        "leader's journal is shipped into");
  }
  auto service = MonitorService::OpenFollower(
      engine_factory, service_options,
      options.leader_host + ":" + std::to_string(options.leader_port));
  if (!service.ok()) return service.status();
  std::unique_ptr<ReplicaFollower> follower(new ReplicaFollower(
      std::move(*service), options, service_options.journal.dir));
  TOPKMON_RETURN_IF_ERROR(follower->Bootstrap());
  // Admin plane: the pump's counters and apply lag join the follower
  // service's scrape and /statusz for as long as the pump can run
  // (Stop deregisters both).
  ReplicaFollower* raw = follower.get();
  follower->sampler_id_ = raw->service_->metrics().AddSampler(
      [raw](MetricSink& sink) { raw->SampleReplicaMetrics(sink); });
  follower->section_id_ = raw->service_->AddStatsSection(
      "replica", [raw] { return raw->StatsSection(); });
  follower->pump_ = std::thread([raw] { raw->PumpLoop(); });
  return follower;
}

Status ReplicaFollower::Bootstrap() {
  TOPKMON_RETURN_IF_ERROR(fs::MakeDirs(journal_dir_));
  auto segments = ListSegments(journal_dir_);
  if (!segments.ok()) return segments.status();

  // Resume from the newest locally shipped segment whose anchor snapshot
  // is intact — the same selection rule RecoveryDriver uses. Newer
  // segments without a usable anchor (ship stopped mid-anchor) and all
  // older segments are deleted; they are only ever prefixes of what the
  // leader still has or superseded history.
  std::unique_ptr<CycleJournalReader> reader;
  std::string chosen_path;
  std::uint64_t chosen_index = 0;
  JournalSnapshot anchor;
  for (auto it = segments->rbegin(); it != segments->rend(); ++it) {
    auto candidate = CycleJournalReader::Open(it->path);
    if (!candidate.ok()) continue;
    CycleJournalReader::Outcome first = (*candidate)->Next();
    if (first.kind != CycleJournalReader::Kind::kRecord ||
        first.record.type != JournalRecordType::kSnapshot) {
      continue;
    }
    reader = std::move(*candidate);
    chosen_path = it->path;
    chosen_index = it->index;
    anchor = std::move(first.record.snapshot);
    break;
  }
  if (reader == nullptr) {
    // Nothing usable on disk: clean slate; the first fetch (segment 0)
    // either hits the leader's live segment 0 or draws a restart
    // pointing at the leader's oldest segment.
    WipeLocalSegments();
    segment_ = 0;
    shipped_ = 0;
    header_done_ = false;
    anchor_done_ = false;
    apply_anchor_ = true;
    return Status::Ok();
  }

  TOPKMON_RETURN_IF_ERROR(service_->ApplyReplicatedAnchor(std::move(anchor)));
  bool corrupt = false;
  while (true) {
    CycleJournalReader::Outcome outcome = reader->Next();
    if (outcome.kind == CycleJournalReader::Kind::kEnd ||
        outcome.kind == CycleJournalReader::Kind::kTorn) {
      break;  // a torn tail is just an unfinished ship — truncate below
    }
    if (outcome.kind == CycleJournalReader::Kind::kIoError) {
      return Status::Internal("I/O error reading " + chosen_path + ": " +
                              outcome.detail);
    }
    if (outcome.kind == CycleJournalReader::Kind::kCorrupt) {
      corrupt = true;
      break;
    }
    TOPKMON_RETURN_IF_ERROR(service_->ApplyReplicated(outcome.record));
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.records_applied;
    }
  }
  const std::uint64_t good_end = reader->offset();
  reader.reset();
  if (corrupt) {
    // Locally damaged bytes: drop everything and resync from the leader
    // (the pump's first fetch of segment 0 resolves the real start).
    TOPKMON_RETURN_IF_ERROR(service_->ResetFollowerState());
    WipeLocalSegments();
    segment_ = 0;
    shipped_ = 0;
    header_done_ = false;
    anchor_done_ = false;
    apply_anchor_ = true;
    return Status::Ok();
  }
  WipeLocalSegments(chosen_index);
  if (::truncate(chosen_path.c_str(), static_cast<off_t>(good_end)) != 0) {
    return ErrnoStatus("truncate " + chosen_path, errno);
  }
  segment_ = chosen_index;
  shipped_ = good_end;
  header_done_ = true;
  anchor_done_ = true;
  apply_anchor_ = false;
  // These bytes predate this process — they may include a deposed
  // leader's unshipped tail. The first connect verifies the leader's
  // fencing epoch before fetching past them (see PumpLoop).
  resumed_from_disk_ = true;
  std::lock_guard<std::mutex> lock(mu_);
  stats_.current_segment = segment_;
  stats_.shipped_offset = shipped_;
  return Status::Ok();
}

void ReplicaFollower::WipeLocalSegments(std::uint64_t keep) {
  auto segments = ListSegments(journal_dir_);
  if (!segments.ok()) return;  // best-effort
  for (const SegmentInfo& info : *segments) {
    if (info.index == keep) continue;
    ::unlink(info.path.c_str());
  }
}

Status ReplicaFollower::PersistChunk(const std::string& data) {
  if (segment_fd_ < 0) {
    const std::string path =
        journal_dir_ + "/" + SegmentFileName(segment_);
    // Shipping a segment from offset 0 starts its local file fresh:
    // truncation (not append) makes resync immune to a same-index file
    // a best-effort wipe failed to unlink.
    const int fresh = shipped_ == 0 ? O_TRUNC : O_APPEND;
    segment_fd_ = ::open(path.c_str(),
                         O_CREAT | O_WRONLY | fresh | O_CLOEXEC, 0666);
    if (segment_fd_ < 0) return ErrnoStatus("open " + path, errno);
  }
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::write(segment_fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      // Discard any partial bytes this chunk managed to land: the retry
      // re-appends the whole chunk at shipped_, and the local file must
      // stay a byte-identical leader prefix.
      (void)::ftruncate(segment_fd_, static_cast<off_t>(shipped_));
      return ErrnoStatus("write shipped segment", err);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

void ReplicaFollower::CloseSegmentFile(bool sync) {
  if (segment_fd_ < 0) return;
  if (sync) ::fdatasync(segment_fd_);
  ::close(segment_fd_);
  segment_fd_ = -1;
}

Status ReplicaFollower::ResyncFrom(std::uint64_t segment) {
  // Reset the service first: if the fresh engine cannot be built,
  // nothing has been wiped and the cursor is unchanged — the caller
  // backs off and the next chunk triggers the resync again, instead of
  // fetching mid-segment bytes into a dir that lost its files.
  TOPKMON_RETURN_IF_ERROR(service_->ResetFollowerState());
  CloseSegmentFile(/*sync=*/false);
  WipeLocalSegments();
  segment_ = segment;
  shipped_ = 0;
  buffer_.clear();
  header_done_ = false;
  anchor_done_ = false;
  apply_anchor_ = true;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.restarts;
  stats_.current_segment = segment_;
  stats_.shipped_offset = 0;
  return Status::Ok();
}

bool ReplicaFollower::ApplyBuffered(std::string* error) {
  std::size_t off = 0;
  bool ok = true;
  while (true) {
    if (!header_done_) {
      if (buffer_.size() - off < kSegmentHeaderBytes) break;
      const Status st =
          DecodeSegmentHeader(buffer_.data() + off, kSegmentHeaderBytes);
      if (!st.ok()) {
        *error = st.message();
        ok = false;
        break;
      }
      off += kSegmentHeaderBytes;
      header_done_ = true;
    }
    const char* body = nullptr;
    std::size_t body_len = 0;
    std::size_t consumed = 0;
    std::string detail;
    const JournalFrameParse parse =
        TryParseJournalFrame(buffer_.data() + off, buffer_.size() - off,
                             &body, &body_len, &consumed, &detail);
    if (parse == JournalFrameParse::kNeedMore) break;
    if (parse == JournalFrameParse::kBad) {
      *error = detail;
      ok = false;
      break;
    }
    JournalRecord record;
    Status st = DecodeBody(body, body_len, &record);
    if (!st.ok()) {
      *error = st.message();
      ok = false;
      break;
    }
    if (!anchor_done_) {
      if (record.type != JournalRecordType::kSnapshot) {
        *error = "segment does not start with a snapshot record";
        ok = false;
        break;
      }
      if (apply_anchor_) {
        st = service_->ApplyReplicatedAnchor(std::move(record.snapshot));
        if (!st.ok()) {
          *error = st.message();
          ok = false;
          break;
        }
      }
      // A skipped anchor describes exactly the state continuous replay
      // already reached crossing the segment boundary.
      anchor_done_ = true;
    } else {
      st = service_->ApplyReplicated(record);
      if (!st.ok()) {
        // Divergence (the engine refused a replicated cycle): the only
        // safe recovery is a full resync from a leader snapshot.
        *error = st.message();
        ok = false;
        break;
      }
    }
    off += consumed;
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.records_applied;
  }
  buffer_.erase(0, off);
  return ok;
}

void ReplicaFollower::Backoff(std::chrono::milliseconds wait) {
  std::unique_lock<std::mutex> lock(mu_);
  stop_cv_.wait_for(lock, wait,
                    [this] { return stop_.load() || retarget_; });
}

void ReplicaFollower::PumpLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    std::string host;
    std::uint16_t port = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      host = leader_host_;
      port = leader_port_;
      if (retarget_) {
        // The connection in hand points at a deposed leader; drop it
        // and fetch from the new one. The ship cursor survives — the
        // new leader's journal is a byte-superset of everything this
        // follower applied (it was elected for being longest), so the
        // fetch either continues in place or draws a restart.
        retarget_ = false;
        client_.reset();
      }
    }
    if (client_ == nullptr) {
      // Resume by label: reconnects (and follower restarts) re-adopt the
      // one leader-side session this follower owns instead of leaking a
      // fresh session per attempt into the leader's session limit.
      auto connected = MonitorClient::Connect(
          host, port, options_.label,
          /*resume=*/true, options_.client);
      if (!connected.ok()) {
        std::unique_lock<std::mutex> lock(mu_);
        ++stats_.fetch_errors;
        stats_.connected = false;
        lock.unlock();
        Backoff(options_.reconnect_backoff);
        continue;
      }
      client_ = std::move(*connected);
      {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.connected = true;
      }
      if (resumed_from_disk_) {
        resumed_from_disk_ = false;
        if (client_->fencing_epoch() > service_->fencing_epoch()) {
          // The journal we resumed from was written under an older
          // fencing epoch than the leader serves — a deposed leader's
          // directory rejoining after a failover. Its unshipped tail
          // occupies the same (segment, offset) coordinates the new
          // leader filled with its own term's records, so continuing
          // byte-wise could silently splice two histories. Wipe and
          // re-ship from scratch; the leader's oldest anchor is a
          // complete catch-up.
          if (const Status st = ResyncFrom(0); !st.ok()) {
            // Nothing was wiped (ResyncFrom resets the service first);
            // re-arm the guard and retry — fetching suspect bytes is
            // never an acceptable fallback.
            resumed_from_disk_ = true;
            client_.reset();
            std::unique_lock<std::mutex> lock(mu_);
            ++stats_.fetch_errors;
            stats_.connected = false;
            lock.unlock();
            Backoff(options_.reconnect_backoff);
            continue;
          }
        }
      }
    }
    auto chunk = client_->ReplFetch(segment_, shipped_,
                                    options_.fetch_bytes,
                                    options_.fetch_wait);
    if (!chunk.ok()) {
      // Leader unreachable (or restarting): keep serving reads, retry.
      client_.reset();
      std::unique_lock<std::mutex> lock(mu_);
      ++stats_.fetch_errors;
      stats_.connected = false;
      lock.unlock();
      Backoff(options_.reconnect_backoff);
      continue;
    }
    service_->SetLeaderProgress(client_->leader_cycle_ts());
    // Adopt the chunk's fencing epoch (v5): this is how a follower
    // learns a failover happened, and how a restarted old leader —
    // rejoining as a follower — durably records that its own old term
    // is over. A failed persist is treated like a fetch error: backing
    // off and retrying is safer than applying bytes whose epoch we
    // could not record.
    if (const Status st =
            service_->ObserveFencingEpoch(client_->fencing_epoch());
        !st.ok()) {
      std::unique_lock<std::mutex> lock(mu_);
      ++stats_.fetch_errors;
      lock.unlock();
      Backoff(options_.reconnect_backoff);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.chunks_received;
      stats_.bytes_shipped += chunk->data.size();
      stats_.last_fetch_ok = std::chrono::steady_clock::now();
    }
    if (chunk->restart) {
      // The leader garbage-collected past us (or the journal was
      // replaced): wipe and catch up from a fresh snapshot anchor.
      if (!ResyncFrom(chunk->next_segment).ok()) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.fetch_errors;
        }
        Backoff(options_.reconnect_backoff);
      }
      continue;
    }
    if (!chunk->data.empty()) {
      // Persist before apply: a follower restart resumes from its disk.
      if (const Status st = PersistChunk(chunk->data); !st.ok()) {
        std::unique_lock<std::mutex> lock(mu_);
        ++stats_.fetch_errors;
        lock.unlock();
        Backoff(options_.reconnect_backoff);
        continue;
      }
      shipped_ += chunk->data.size();
      // Chained replication: a follower of *this* follower parks its
      // fetches against our service's progress counter.
      service_->NoteJournalGrowth();
      buffer_.append(chunk->data);
      std::string error;
      if (!ApplyBuffered(&error)) {
        // Damaged or diverged shipped bytes: full resync from the start
        // of this segment (its anchor makes that complete). A failed
        // resync mutated nothing — the next apply failure re-triggers
        // it after the backoff.
        if (!ResyncFrom(segment_).ok()) {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.fetch_errors;
        }
        Backoff(options_.reconnect_backoff);
        continue;
      }
    }
    const bool tail_chasing =
        !chunk->sealed && chunk->data.size() < options_.fetch_bytes;
    if (chunk->sealed) {
      if (!buffer_.empty() || !anchor_done_) {
        // A sealed segment must end on a frame boundary; a dangling
        // partial frame means the shipped copy is damaged.
        if (!ResyncFrom(segment_).ok()) {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.fetch_errors;
        }
        Backoff(options_.reconnect_backoff);
        continue;
      }
      // Segment complete: sync it (it is now a local recovery anchor),
      // drop the ones before it, and continue into the next. Its anchor
      // snapshot is skipped — replay already holds that exact state.
      CloseSegmentFile(/*sync=*/true);
      const std::uint64_t finished = segment_;
      segment_ = chunk->next_segment;
      shipped_ = 0;
      header_done_ = false;
      anchor_done_ = false;
      apply_anchor_ = false;
      WipeLocalSegments(finished);
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.segments_completed;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.current_segment = segment_;
      stats_.shipped_offset = shipped_;
    }
    if (tail_chasing && options_.fetch_interval.count() > 0) {
      Backoff(options_.fetch_interval);
    }
  }
  CloseSegmentFile(/*sync=*/true);
  client_.reset();
}

ReplicaFollowerStats ReplicaFollower::stats() const {
  ReplicaFollowerStats out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = stats_;
  }
  const ReplicationInfo info = service_->replication();
  out.applied_cycle_ts = info.applied_cycle_ts;
  out.leader_cycle_ts = info.leader_cycle_ts;
  return out;
}

void ReplicaFollower::SampleReplicaMetrics(MetricSink& sink) const {
  const ReplicaFollowerStats s = stats();
  sink.AddCounter("topkmon_replica_chunks_received_total",
                  "Replication chunks received from the leader",
                  static_cast<double>(s.chunks_received));
  sink.AddCounter("topkmon_replica_bytes_shipped_total",
                  "Journal bytes shipped from the leader",
                  static_cast<double>(s.bytes_shipped));
  sink.AddCounter("topkmon_replica_records_applied_total",
                  "Journal records replayed into the local engine",
                  static_cast<double>(s.records_applied));
  sink.AddCounter("topkmon_replica_segments_completed_total",
                  "Shipped segments sealed and advanced past",
                  static_cast<double>(s.segments_completed));
  sink.AddCounter("topkmon_replica_restarts_total",
                  "Full resyncs (leader garbage-collected past us)",
                  static_cast<double>(s.restarts));
  sink.AddCounter("topkmon_replica_fetch_errors_total",
                  "Failed fetches and reconnect attempts",
                  static_cast<double>(s.fetch_errors));
  sink.AddGauge("topkmon_replica_connected",
                "1 while the pump holds a live leader connection",
                s.connected ? 1.0 : 0.0);
  sink.AddGauge("topkmon_replica_current_segment",
                "Journal segment currently being shipped",
                static_cast<double>(s.current_segment));
  sink.AddGauge("topkmon_replica_shipped_offset",
                "Bytes of the current segment on local disk",
                static_cast<double>(s.shipped_offset));
  sink.AddGauge("topkmon_replica_apply_lag",
                "Leader cycle timestamp minus applied cycle timestamp",
                static_cast<double>(s.LagTs()));
}

std::vector<std::pair<std::string, std::string>>
ReplicaFollower::StatsSection() const {
  const ReplicaFollowerStats s = stats();
  std::vector<std::pair<std::string, std::string>> rows;
  rows.emplace_back("connected", s.connected ? "1" : "0");
  rows.emplace_back("apply_lag", std::to_string(s.LagTs()));
  rows.emplace_back("applied_cycle_ts",
                    std::to_string(s.applied_cycle_ts));
  rows.emplace_back("leader_cycle_ts", std::to_string(s.leader_cycle_ts));
  rows.emplace_back("current_segment",
                    std::to_string(s.current_segment));
  rows.emplace_back("shipped_offset", std::to_string(s.shipped_offset));
  rows.emplace_back("chunks_received",
                    std::to_string(s.chunks_received));
  rows.emplace_back("restarts", std::to_string(s.restarts));
  rows.emplace_back("fetch_errors", std::to_string(s.fetch_errors));
  rows.emplace_back("leader", leader_endpoint());
  return rows;
}

Status ReplicaFollower::WaitForCycleTs(Timestamp ts,
                                       std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (service_->replication().applied_cycle_ts < ts) {
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::FailedPrecondition(
          "follower did not reach cycle ts " + std::to_string(ts) +
          " within the timeout (applied ts " +
          std::to_string(service_->replication().applied_cycle_ts) + ")");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return Status::Ok();
}

void ReplicaFollower::Stop() {
  stop_.store(true, std::memory_order_release);
  stop_cv_.notify_all();
  std::thread pump;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    pump = std::move(pump_);
  }
  if (pump.joinable()) pump.join();
  // First Stop only (later calls returned above). Outside mu_: the
  // sampler/provider take mu_, and both removals block until any
  // in-flight scrape is done with this object.
  if (sampler_id_ != 0) {
    service_->metrics().RemoveSampler(sampler_id_);
    sampler_id_ = 0;
  }
  if (section_id_ != 0) {
    service_->RemoveStatsSection(section_id_);
    section_id_ = 0;
  }
}

Status ReplicaFollower::Promote() {
  Stop();
  // Any partial frame in buffer_ is simply un-applied prefix bytes; the
  // promotion snapshot anchors a fresh segment, so the torn local tail
  // is superseded, exactly like a crash tail on recovery.
  return service_->Promote();
}

Status ReplicaFollower::Promote(std::uint64_t new_epoch) {
  Stop();
  return service_->Promote(new_epoch);
}

void ReplicaFollower::SetLeader(const std::string& host,
                                std::uint16_t port) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (host == leader_host_ && port == leader_port_) return;
    leader_host_ = host;
    leader_port_ = port;
    retarget_ = true;
  }
  service_->SetLeaderEndpoint(host + ":" + std::to_string(port));
  // Wake the pump if it is backing off between reconnect attempts; an
  // in-flight long-poll fetch is not interrupted, so the re-target
  // takes effect within one fetch_wait at most.
  stop_cv_.notify_all();
}

std::string ReplicaFollower::leader_endpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  return leader_host_ + ":" + std::to_string(leader_port_);
}

}  // namespace topkmon
