#include "replica/lease.h"

#include <errno.h>
#include <fcntl.h>
#include <stdio.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cstring>

#include "util/fs.h"

namespace topkmon {
namespace {

constexpr const char* kEpochFile = "EPOCH";

std::string EpochPath(const std::string& dir) {
  return dir + "/" + kEpochFile;
}

}  // namespace

Result<std::uint64_t> ReadFencingEpoch(const std::string& dir) {
  const std::string path = EpochPath(dir);
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    if (errno == ENOENT) return std::uint64_t{0};
    return fs::ErrnoStatus("open " + path, errno);
  }
  char buf[32];
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, file);
  std::fclose(file);
  buf[n] = '\0';
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(buf, &end, 10);
  if (errno != 0 || end == buf || (*end != '\0' && *end != '\n')) {
    return Status::Internal("corrupt fencing-epoch file " + path);
  }
  return static_cast<std::uint64_t>(value);
}

Status WriteFencingEpoch(const std::string& dir, std::uint64_t epoch) {
  TOPKMON_RETURN_IF_ERROR(fs::MakeDirs(dir));
  const std::string path = EpochPath(dir);
  const std::string tmp = path + ".tmp";
  const std::string body = std::to_string(epoch) + "\n";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return fs::ErrnoStatus("open " + tmp, errno);
  const char* p = body.data();
  std::size_t left = body.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return fs::ErrnoStatus("write " + tmp, err);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return fs::ErrnoStatus("fsync " + tmp, err);
  }
  if (::close(fd) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    return fs::ErrnoStatus("close " + tmp, err);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    return fs::ErrnoStatus("rename " + tmp, err);
  }
  // Make the rename itself durable, as the journal does when sealing.
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) return fs::ErrnoStatus("open " + dir, errno);
  const int rc = ::fsync(dfd);
  const int err = errno;
  ::close(dfd);
  if (rc != 0) return fs::ErrnoStatus("fsync " + dir, err);
  return Status::Ok();
}

}  // namespace topkmon
