#include "net/protocol.h"

#include "common/geometry.h"
#include "journal/format.h"
#include "journal/wire.h"

namespace topkmon {
namespace {

using wire::ByteReader;

void PutType(NetMessageType type, std::string* out) {
  wire::PutU8(static_cast<std::uint8_t>(type), out);
}

void PutEntries(const std::vector<ResultEntry>& entries, std::string* out) {
  wire::PutU32(static_cast<std::uint32_t>(entries.size()), out);
  for (const ResultEntry& e : entries) {
    wire::PutU64(e.id, out);
    wire::PutF64(e.score, out);
  }
}

/// One result entry costs 16 bytes; a count prefix that promises more
/// entries than the remaining bytes could hold is a malformed message,
/// not an allocation request.
Status GetEntries(ByteReader& in, std::vector<ResultEntry>* out) {
  const std::uint32_t count = in.GetU32();
  if (!in.ok() || count > in.remaining() / 16) {
    return Status::InvalidArgument("entry count exceeds body size");
  }
  out->reserve(out->size() + count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ResultEntry e;
    e.id = in.GetU64();
    e.score = in.GetF64();
    out->push_back(e);
  }
  if (!in.ok()) return Status::InvalidArgument("truncated entry list");
  return Status::Ok();
}

}  // namespace

std::uint8_t NetEncodeStatusCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return 0;
    case StatusCode::kInvalidArgument: return 1;
    case StatusCode::kNotFound: return 2;
    case StatusCode::kAlreadyExists: return 3;
    case StatusCode::kOutOfRange: return 4;
    case StatusCode::kFailedPrecondition: return 5;
    case StatusCode::kUnimplemented: return 6;
    case StatusCode::kInternal: return 7;
    case StatusCode::kResourceExhausted: return 8;
    case StatusCode::kUnavailable: return 9;
    case StatusCode::kFenced: return 10;
  }
  return 7;
}

StatusCode NetDecodeStatusCode(std::uint8_t wire_value) {
  switch (wire_value) {
    case 0: return StatusCode::kOk;
    case 1: return StatusCode::kInvalidArgument;
    case 2: return StatusCode::kNotFound;
    case 3: return StatusCode::kAlreadyExists;
    case 4: return StatusCode::kOutOfRange;
    case 5: return StatusCode::kFailedPrecondition;
    case 6: return StatusCode::kUnimplemented;
    case 8: return StatusCode::kResourceExhausted;
    case 9: return StatusCode::kUnavailable;
    case 10: return StatusCode::kFenced;
    default: return StatusCode::kInternal;
  }
}

void EncodeHello(bool resume, const std::string& label, std::string* out) {
  PutType(NetMessageType::kHello, out);
  wire::PutU32(kNetMagic, out);
  wire::PutU32(kNetProtocolVersion, out);
  wire::PutU8(resume ? 1 : 0, out);
  wire::PutString(label, out);
}

void EncodeWelcome(SessionId session, bool resumed, std::uint8_t role,
                   std::uint32_t server_tag, std::uint64_t fencing_epoch,
                   std::uint32_t wire_version, std::string* out) {
  PutType(NetMessageType::kWelcome, out);
  wire::PutU64(session, out);
  wire::PutU8(resumed ? 1 : 0, out);
  // Echo the negotiated version, not ours: a v4 client reads back the
  // dialect this connection actually speaks.
  wire::PutU32(wire_version, out);
  wire::PutU8(role, out);
  wire::PutU32(server_tag, out);
  if (wire_version >= 5) wire::PutU64(fencing_epoch, out);
}

void EncodeIngest(const std::vector<Record>& tuples, std::string* out) {
  std::size_t bytes = out->size() + 1 + 4;
  if (!tuples.empty()) {
    bytes +=
        wire::RecordSpanMaxBytes(tuples.size(), tuples[0].position.dim());
  }
  out->reserve(bytes);
  PutType(NetMessageType::kIngest, out);
  wire::PutU32(static_cast<std::uint32_t>(tuples.size()), out);
  if (!tuples.empty()) {
    wire::PutRecordSpan(tuples.data(), tuples.size(), out);
  }
}

void EncodeIngestAck(std::uint32_t accepted, std::uint32_t rejected,
                     const Status& first_error, std::uint8_t queue_hint,
                     std::uint64_t fencing_epoch,
                     std::uint32_t wire_version, std::string* out) {
  PutType(NetMessageType::kIngestAck, out);
  wire::PutU32(accepted, out);
  wire::PutU32(rejected, out);
  wire::PutU8(NetEncodeStatusCode(first_error.code()), out);
  wire::PutString(first_error.message(), out);
  wire::PutU8(queue_hint, out);
  if (wire_version >= 5) wire::PutU64(fencing_epoch, out);
}

Status EncodeRegister(const QuerySpec& spec, std::string* out) {
  const std::size_t mark = out->size();
  PutType(NetMessageType::kRegister, out);
  const Status st = wire::PutQuerySpec(spec, out);
  if (!st.ok()) out->resize(mark);
  return st;
}

void EncodeRegisterAck(QueryId query, std::string* out) {
  PutType(NetMessageType::kRegisterAck, out);
  wire::PutU32(query, out);
}

void EncodeUnregister(QueryId query, std::string* out) {
  PutType(NetMessageType::kUnregister, out);
  wire::PutU32(query, out);
}

void EncodeUnregisterAck(std::string* out) {
  PutType(NetMessageType::kUnregisterAck, out);
}

void EncodeSnapshotRequest(QueryId query, std::string* out) {
  PutType(NetMessageType::kSnapshot, out);
  wire::PutU32(query, out);
}

void EncodeSnapshotResult(const std::vector<ResultEntry>& entries,
                          Timestamp as_of, Timestamp stale_by,
                          std::string* out) {
  PutType(NetMessageType::kSnapshotResult, out);
  wire::PutI64(as_of, out);
  wire::PutI64(stale_by, out);
  PutEntries(entries, out);
}

void EncodePoll(std::uint32_t max_events, std::uint32_t timeout_ms,
                std::string* out) {
  PutType(NetMessageType::kPoll, out);
  wire::PutU32(max_events, out);
  wire::PutU32(timeout_ms, out);
}

void EncodeDeltas(const std::vector<DeltaEvent>& events, Timestamp as_of,
                  bool truncated, std::string* out) {
  PutType(NetMessageType::kDeltas, out);
  wire::PutI64(as_of, out);
  wire::PutU8(truncated ? 1 : 0, out);
  wire::PutU32(static_cast<std::uint32_t>(events.size()), out);
  for (const DeltaEvent& e : events) {
    wire::PutU64(e.seq, out);
    wire::PutU32(e.delta.query, out);
    wire::PutI64(e.delta.when, out);
    PutEntries(e.delta.added, out);
    PutEntries(e.delta.removed, out);
  }
}

void EncodeClose(bool close_session, std::string* out) {
  PutType(NetMessageType::kClose, out);
  wire::PutU8(close_session ? 1 : 0, out);
}

void EncodeCloseAck(std::string* out) {
  PutType(NetMessageType::kCloseAck, out);
}

void EncodeError(const Status& status, std::string* out) {
  PutType(NetMessageType::kError, out);
  wire::PutU8(NetEncodeStatusCode(status.code()), out);
  wire::PutString(status.message(), out);
}

Status EncodeRegisterBatch(const std::vector<QuerySpec>& specs,
                           std::string* out) {
  if (specs.empty() || specs.size() > kMaxRegisterBatch) {
    return Status::InvalidArgument(
        "RegisterBatch carries 1.." + std::to_string(kMaxRegisterBatch) +
        " specs, not " + std::to_string(specs.size()));
  }
  const std::size_t mark = out->size();
  PutType(NetMessageType::kRegisterBatch, out);
  wire::PutU32(static_cast<std::uint32_t>(specs.size()), out);
  for (const QuerySpec& spec : specs) {
    const Status st = wire::PutQuerySpec(spec, out);
    if (!st.ok()) {
      out->resize(mark);
      return st;
    }
  }
  return Status::Ok();
}

void EncodeRegisterBatchAck(const std::vector<RegisterOutcome>& outcomes,
                            std::string* out) {
  PutType(NetMessageType::kRegisterBatchAck, out);
  wire::PutU32(static_cast<std::uint32_t>(outcomes.size()), out);
  for (const RegisterOutcome& o : outcomes) {
    wire::PutU8(NetEncodeStatusCode(o.code), out);
    wire::PutU32(o.query, out);
    wire::PutString(o.message, out);
  }
}

void EncodeReplFetch(std::uint64_t segment, std::uint64_t offset,
                     std::uint32_t max_bytes, std::uint32_t wait_ms,
                     std::string* out) {
  PutType(NetMessageType::kReplFetch, out);
  wire::PutU64(segment, out);
  wire::PutU64(offset, out);
  wire::PutU32(max_bytes, out);
  wire::PutU32(wait_ms, out);
}

void EncodeReplChunk(std::uint64_t segment, std::uint64_t offset,
                     bool sealed, bool restart, std::uint64_t next_segment,
                     Timestamp leader_cycle_ts, const std::string& data,
                     std::uint64_t fencing_epoch,
                     std::uint32_t wire_version, std::string* out) {
  out->reserve(out->size() + 48 + data.size());
  PutType(NetMessageType::kReplChunk, out);
  wire::PutU64(segment, out);
  wire::PutU64(offset, out);
  wire::PutU8(static_cast<std::uint8_t>((sealed ? 1 : 0) |
                                        (restart ? 2 : 0)),
              out);
  wire::PutU64(next_segment, out);
  wire::PutI64(leader_cycle_ts, out);
  wire::PutU32(static_cast<std::uint32_t>(data.size()), out);
  out->append(data);
  if (wire_version >= 5) wire::PutU64(fencing_epoch, out);
}

void EncodeStatusRequest(std::string* out) {
  PutType(NetMessageType::kStatus, out);
}

void EncodeStatusInfo(std::uint8_t role, std::uint64_t fencing_epoch,
                      Timestamp applied_cycle_ts, std::uint64_t segment,
                      std::uint64_t offset, bool fenced, std::string* out) {
  PutType(NetMessageType::kStatusInfo, out);
  wire::PutU8(role, out);
  wire::PutU64(fencing_epoch, out);
  wire::PutI64(applied_cycle_ts, out);
  wire::PutU64(segment, out);
  wire::PutU64(offset, out);
  wire::PutU8(fenced ? 1 : 0, out);
}

void EncodeNetFrame(const std::string& body, std::string* out) {
  wire::PutU32(static_cast<std::uint32_t>(body.size()), out);
  wire::PutU32(Crc32(body.data(), body.size()), out);
  out->append(body);
}

Status DecodeNetBody(const char* data, std::size_t n, NetMessage* out) {
  ByteReader in(data, n);
  const std::uint8_t type = in.GetU8();
  if (!in.ok()) return Status::InvalidArgument("empty message body");
  // Trailing bytes after a well-formed payload are a dialect mismatch;
  // every case below ends by falling through to this check.
  auto done = [&in]() -> Status {
    if (!in.ok() || in.remaining() != 0) {
      return Status::InvalidArgument("malformed message payload");
    }
    return Status::Ok();
  };
  switch (static_cast<NetMessageType>(type)) {
    case NetMessageType::kHello:
      out->type = NetMessageType::kHello;
      out->magic = in.GetU32();
      out->version = in.GetU32();
      out->resume = in.GetU8() == 1;
      out->label = in.GetString();
      return done();
    case NetMessageType::kWelcome:
      out->type = NetMessageType::kWelcome;
      out->session = in.GetU64();
      out->resumed = in.GetU8() == 1;
      out->version = in.GetU32();
      out->role = in.GetU8();
      out->server_tag = in.GetU32();
      // Trailing epoch appeared in v5; a v4 Welcome simply ends here.
      out->fencing_epoch = 0;
      if (in.ok() && in.remaining() > 0) out->fencing_epoch = in.GetU64();
      return done();
    case NetMessageType::kIngest: {
      out->type = NetMessageType::kIngest;
      const std::uint32_t count = in.GetU32();
      if (!in.ok()) return Status::InvalidArgument("truncated ingest header");
      out->tuples.clear();
      if (count > 0) {
        TOPKMON_RETURN_IF_ERROR(
            wire::GetRecordSpan(in, count, &out->tuples));
      }
      return done();
    }
    case NetMessageType::kIngestAck:
      out->type = NetMessageType::kIngestAck;
      out->accepted = in.GetU32();
      out->rejected = in.GetU32();
      out->code = NetDecodeStatusCode(in.GetU8());
      out->message = in.GetString();
      out->queue_hint = in.GetU8();
      // Trailing epoch appeared in v5; a v4 ack simply ends here.
      out->fencing_epoch = 0;
      if (in.ok() && in.remaining() > 0) out->fencing_epoch = in.GetU64();
      return done();
    case NetMessageType::kRegister:
      out->type = NetMessageType::kRegister;
      TOPKMON_RETURN_IF_ERROR(wire::GetQuerySpec(in, &out->spec));
      return done();
    case NetMessageType::kRegisterAck:
      out->type = NetMessageType::kRegisterAck;
      out->query = in.GetU32();
      return done();
    case NetMessageType::kUnregister:
      out->type = NetMessageType::kUnregister;
      out->query = in.GetU32();
      return done();
    case NetMessageType::kUnregisterAck:
      out->type = NetMessageType::kUnregisterAck;
      return done();
    case NetMessageType::kSnapshot:
      out->type = NetMessageType::kSnapshot;
      out->query = in.GetU32();
      return done();
    case NetMessageType::kSnapshotResult:
      out->type = NetMessageType::kSnapshotResult;
      out->as_of = in.GetI64();
      out->stale_by = in.GetI64();
      out->entries.clear();
      TOPKMON_RETURN_IF_ERROR(GetEntries(in, &out->entries));
      return done();
    case NetMessageType::kPoll:
      out->type = NetMessageType::kPoll;
      out->max_events = in.GetU32();
      out->timeout_ms = in.GetU32();
      return done();
    case NetMessageType::kDeltas: {
      out->type = NetMessageType::kDeltas;
      out->as_of = in.GetI64();
      const std::uint8_t truncated = in.GetU8();
      if (!in.ok() || truncated > 1) {
        return Status::InvalidArgument("bad deltas truncated flag");
      }
      out->truncated = truncated == 1;
      const std::uint32_t count = in.GetU32();
      // An event is at least seq + query + when + two empty entry lists.
      if (!in.ok() || count > in.remaining() / 28) {
        return Status::InvalidArgument("event count exceeds body size");
      }
      out->events.clear();
      out->events.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        DeltaEvent e;
        e.seq = in.GetU64();
        e.delta.query = in.GetU32();
        e.delta.when = in.GetI64();
        TOPKMON_RETURN_IF_ERROR(GetEntries(in, &e.delta.added));
        TOPKMON_RETURN_IF_ERROR(GetEntries(in, &e.delta.removed));
        out->events.push_back(std::move(e));
      }
      return done();
    }
    case NetMessageType::kClose: {
      out->type = NetMessageType::kClose;
      const std::uint8_t flag = in.GetU8();
      if (flag > 1) {
        return Status::InvalidArgument("bad close-session flag");
      }
      out->close_session = flag == 1;
      return done();
    }
    case NetMessageType::kCloseAck:
      out->type = NetMessageType::kCloseAck;
      return done();
    case NetMessageType::kError:
      out->type = NetMessageType::kError;
      out->code = NetDecodeStatusCode(in.GetU8());
      out->message = in.GetString();
      return done();
    case NetMessageType::kRegisterBatch: {
      out->type = NetMessageType::kRegisterBatch;
      const std::uint32_t count = in.GetU32();
      // A spec is at least id + k + function header + constraint flag (11
      // bytes); a count promising more is malformed, not an allocation.
      if (!in.ok() || count == 0 || count > kMaxRegisterBatch ||
          count > in.remaining() / 11) {
        return Status::InvalidArgument("bad register-batch count");
      }
      out->specs.clear();
      out->specs.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        QuerySpec spec;
        TOPKMON_RETURN_IF_ERROR(wire::GetQuerySpec(in, &spec));
        out->specs.push_back(std::move(spec));
      }
      return done();
    }
    case NetMessageType::kRegisterBatchAck: {
      out->type = NetMessageType::kRegisterBatchAck;
      const std::uint32_t count = in.GetU32();
      // An outcome is at least code + query + empty string (7 bytes).
      if (!in.ok() || count > in.remaining() / 7) {
        return Status::InvalidArgument("bad register-batch-ack count");
      }
      out->outcomes.clear();
      out->outcomes.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        RegisterOutcome o;
        o.code = NetDecodeStatusCode(in.GetU8());
        o.query = in.GetU32();
        o.message = in.GetString();
        out->outcomes.push_back(std::move(o));
      }
      return done();
    }
    case NetMessageType::kReplFetch:
      out->type = NetMessageType::kReplFetch;
      out->segment = in.GetU64();
      out->offset = in.GetU64();
      out->max_bytes = in.GetU32();
      out->timeout_ms = in.GetU32();
      return done();
    case NetMessageType::kReplChunk: {
      out->type = NetMessageType::kReplChunk;
      out->segment = in.GetU64();
      out->offset = in.GetU64();
      const std::uint8_t flags = in.GetU8();
      if (flags > 3) return Status::InvalidArgument("bad chunk flags");
      out->sealed = (flags & 1) != 0;
      out->restart = (flags & 2) != 0;
      out->next_segment = in.GetU64();
      out->leader_cycle_ts = in.GetI64();
      const std::uint32_t len = in.GetU32();
      if (!in.ok() || len > in.remaining()) {
        return Status::InvalidArgument("chunk length exceeds body size");
      }
      out->data = in.GetBytes(len);
      // Trailing epoch appeared in v5; a v4 chunk simply ends here.
      out->fencing_epoch = 0;
      if (in.ok() && in.remaining() > 0) out->fencing_epoch = in.GetU64();
      return done();
    }
    case NetMessageType::kStatus:
      out->type = NetMessageType::kStatus;
      return done();
    case NetMessageType::kStatusInfo: {
      out->type = NetMessageType::kStatusInfo;
      out->role = in.GetU8();
      out->fencing_epoch = in.GetU64();
      out->as_of = in.GetI64();
      out->segment = in.GetU64();
      out->offset = in.GetU64();
      const std::uint8_t fenced = in.GetU8();
      if (!in.ok() || fenced > 1) {
        return Status::InvalidArgument("bad status fenced flag");
      }
      out->fenced = fenced == 1;
      return done();
    }
  }
  return Status::InvalidArgument("unknown message type " +
                                 std::to_string(type));
}

Status DecodeIngestBodyToArena(const char* data, std::size_t n, int dim,
                               RecordArena& arena, IngestFrameView* out) {
  out->records = nullptr;
  out->count = 0;
  out->invalid.clear();
  out->first_invalid = Status::Ok();
  ByteReader in(data, n);
  const std::uint8_t type = in.GetU8();
  if (!in.ok() ||
      static_cast<NetMessageType>(type) != NetMessageType::kIngest) {
    return Status::InvalidArgument("not an ingest body");
  }
  const std::uint32_t count = in.GetU32();
  if (!in.ok()) return Status::InvalidArgument("truncated ingest header");
  if (count == 0) {
    if (in.remaining() != 0) {
      return Status::InvalidArgument("trailing bytes after message");
    }
    return Status::Ok();
  }
  // Coarse pre-allocation bound: the cheapest conceivable entry (dim 1)
  // still costs ~10 bytes, so a count prefix promising more is hostile
  // and must be refused BEFORE it sizes an arena allocation.
  // GetRecordSpanInto re-checks with the exact per-dim entry size.
  if (count > in.remaining() / 10 + 1) {
    return Status::InvalidArgument("record count exceeds body size");
  }
  Record* records = arena.Allocate(count);
  Status st = wire::GetRecordSpanInto(in, count, records);
  if (st.ok() && in.remaining() != 0) {
    st = Status::InvalidArgument("trailing bytes after message");
  }
  if (!st.ok()) {
    arena.Release(records, count);
    return st;
  }
  // Frame-boundary validation — the ONE place wire records are checked
  // against the engine's unit space; downstream stages trust the view.
  for (std::uint32_t i = 0; i < count; ++i) {
    const Record& r = records[i];
    Status v = ValidatePoint(r.position, dim);
    if (v.ok() && (r.arrival < 0 || r.arrival > kMaxWireArrival)) {
      v = Status::OutOfRange("arrival timestamp outside the wire range");
    }
    if (!v.ok()) {
      if (out->invalid.empty()) out->first_invalid = v;
      out->invalid.push_back(i);
    }
  }
  out->records = records;
  out->count = count;
  return Status::Ok();
}

FrameParse TryParseNetFrame(const char* data, std::size_t n,
                            std::size_t max_body, const char** body,
                            std::size_t* body_len, std::size_t* consumed,
                            Status* error) {
  if (n < kNetFrameHeaderBytes) return FrameParse::kNeedMore;
  ByteReader in(data, n);
  const std::uint32_t len = in.GetU32();
  const std::uint32_t crc = in.GetU32();
  if (len > max_body) {
    *error = Status::InvalidArgument(
        "frame length " + std::to_string(len) + " exceeds the " +
        std::to_string(max_body) + "-byte limit");
    return FrameParse::kBad;
  }
  if (n - kNetFrameHeaderBytes < len) return FrameParse::kNeedMore;
  const char* payload = data + kNetFrameHeaderBytes;
  if (Crc32(payload, len) != crc) {
    *error = Status::InvalidArgument("frame CRC mismatch");
    return FrameParse::kBad;
  }
  *body = payload;
  *body_len = len;
  *consumed = kNetFrameHeaderBytes + len;
  return FrameParse::kFrame;
}

}  // namespace topkmon
