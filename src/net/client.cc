#include "net/client.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

namespace topkmon {
namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

void SetRecvTimeout(int fd, std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void SetSendTimeout(int fd, std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

Result<std::unique_ptr<MonitorClient>> MonitorClient::Connect(
    const std::string& host, std::uint16_t port, const std::string& label,
    bool resume, const NetClientOptions& options) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    // Not a dotted quad: resolve it (e.g. "localhost").
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* found = nullptr;
    if (::getaddrinfo(host.c_str(), nullptr, &hints, &found) != 0 ||
        found == nullptr) {
      return Status::InvalidArgument("cannot resolve host '" + host + "'");
    }
    addr.sin_addr =
        reinterpret_cast<sockaddr_in*>(found->ai_addr)->sin_addr;
    ::freeaddrinfo(found);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status st = Errno("connect to " + host + ":" +
                            std::to_string(port));
    ::close(fd);
    return st;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  SetRecvTimeout(fd, options.io_timeout);
  // Sends time out too: a wedged server with a full socket buffer must
  // surface as an error (the send path then poisons the connection),
  // never as an indefinite hang inside a batched Ingest.
  SetSendTimeout(fd, options.io_timeout);

  std::unique_ptr<MonitorClient> client(new MonitorClient(fd, options));
  std::string body;
  EncodeHello(resume, label, &body);
  auto welcome = client->RoundTrip(body, NetMessageType::kWelcome);
  if (!welcome.ok()) return welcome.status();
  client->session_ = welcome->session;
  client->resumed_ = welcome->resumed;
  client->server_role_ = welcome->role;
  client->server_tag_ = welcome->server_tag;
  client->fencing_epoch_ = welcome->fencing_epoch;
  return client;
}

MonitorClient::~MonitorClient() {
  if (fd_ >= 0) ::close(fd_);
}

Status MonitorClient::SendFrame(const std::string& body) {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  std::string frame;
  frame.reserve(kNetFrameHeaderBytes + body.size());
  EncodeNetFrame(body, &frame);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    // A failed (possibly partial) send poisons the connection, same as
    // a failed read: retrying another request would splice its frame
    // into the middle of this one and desync the stream.
    const Status st = Errno("send");
    ::close(fd_);
    fd_ = -1;
    inbuf_.clear();
    return st;
  }
  return Status::Ok();
}

Result<NetMessage> MonitorClient::RecvMessage(
    std::chrono::milliseconds extra_wait) {
  if (extra_wait.count() > 0) {
    SetRecvTimeout(fd_, options_.io_timeout + extra_wait);
  }
  char buf[65536];
  while (true) {
    const char* body = nullptr;
    std::size_t body_len = 0;
    std::size_t consumed = 0;
    Status error;
    const FrameParse parse =
        TryParseNetFrame(inbuf_.data(), inbuf_.size(), kMaxNetFrameBytes,
                         &body, &body_len, &consumed, &error);
    if (parse == FrameParse::kBad) {
      // After a framing error the stream cannot be re-synchronized.
      ::close(fd_);
      fd_ = -1;
      inbuf_.clear();
      return Status(error.code(), "server frame rejected: " +
                                      error.message());
    }
    if (parse == FrameParse::kFrame) {
      NetMessage msg;
      const Status st = DecodeNetBody(body, body_len, &msg);
      inbuf_.erase(0, consumed);
      if (extra_wait.count() > 0) SetRecvTimeout(fd_, options_.io_timeout);
      if (!st.ok()) return st;
      return msg;
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      inbuf_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    // Any failed read poisons the connection: with a request already on
    // the wire, a later retry would otherwise consume *this* request's
    // late response as its own and desync the dialog permanently.
    const Status st = n == 0
                          ? Status::FailedPrecondition(
                                "server closed the connection")
                          : (errno == EAGAIN || errno == EWOULDBLOCK)
                                ? Status::FailedPrecondition(
                                      "timed out waiting for the server")
                                : Errno("recv");
    ::close(fd_);
    fd_ = -1;
    inbuf_.clear();
    return st;
  }
}

Result<NetMessage> MonitorClient::RoundTrip(
    const std::string& body, NetMessageType want,
    std::chrono::milliseconds extra_wait) {
  TOPKMON_RETURN_IF_ERROR(SendFrame(body));
  Result<NetMessage> response = RecvMessage(extra_wait);
  if (!response.ok()) return response.status();
  if (response->type == NetMessageType::kError) {
    return Status(response->code, response->message);
  }
  if (response->type != want) {
    return Status::Internal(
        "unexpected response type " +
        std::to_string(static_cast<int>(response->type)) + " (wanted " +
        std::to_string(static_cast<int>(want)) + ")");
  }
  return response;
}

Result<MonitorClient::IngestAck> MonitorClient::Ingest(
    std::vector<Record> tuples) {
  if (tuples.empty()) return IngestAck{};
  const int dim = tuples[0].position.dim();
  for (const Record& r : tuples) {
    if (r.position.dim() != dim) {
      return Status::InvalidArgument(
          "ingest batch mixes dimensionalities");
    }
  }
  // The span encoding needs non-decreasing arrivals and strictly
  // increasing ids; arrival order with a 0..n-1 ramp satisfies both.
  std::stable_sort(tuples.begin(), tuples.end(),
                   [](const Record& a, const Record& b) {
                     return a.arrival < b.arrival;
                   });
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    tuples[i].id = static_cast<RecordId>(i);
  }
  std::string body;
  EncodeIngest(tuples, &body);
  auto ack = RoundTrip(body, NetMessageType::kIngestAck);
  if (!ack.ok()) return ack.status();
  IngestAck out;
  out.accepted = ack->accepted;
  out.rejected = ack->rejected;
  out.queue_hint = ack->queue_hint;
  last_ingest_hint_ = ack->queue_hint;
  fencing_epoch_ = std::max(fencing_epoch_, ack->fencing_epoch);
  if (ack->code != StatusCode::kOk) {
    out.first_error = Status(ack->code, ack->message);
  }
  return out;
}

Result<QueryId> MonitorClient::Register(const QuerySpec& spec) {
  std::string body;
  TOPKMON_RETURN_IF_ERROR(EncodeRegister(spec, &body));
  auto ack = RoundTrip(body, NetMessageType::kRegisterAck);
  if (!ack.ok()) return ack.status();
  return ack->query;
}

Status MonitorClient::Unregister(QueryId query) {
  std::string body;
  EncodeUnregister(query, &body);
  return RoundTrip(body, NetMessageType::kUnregisterAck).status();
}

Result<std::vector<RegisterOutcome>> MonitorClient::RegisterBatch(
    const std::vector<QuerySpec>& specs) {
  std::string body;
  TOPKMON_RETURN_IF_ERROR(EncodeRegisterBatch(specs, &body));
  auto ack = RoundTrip(body, NetMessageType::kRegisterBatchAck);
  if (!ack.ok()) return ack.status();
  if (ack->outcomes.size() != specs.size()) {
    return Status::Internal("register-batch ack carries " +
                            std::to_string(ack->outcomes.size()) +
                            " outcomes for " +
                            std::to_string(specs.size()) + " specs");
  }
  return std::move(ack->outcomes);
}

Result<std::vector<ResultEntry>> MonitorClient::CurrentResult(
    QueryId query) {
  std::string body;
  EncodeSnapshotRequest(query, &body);
  auto result = RoundTrip(body, NetMessageType::kSnapshotResult);
  if (!result.ok()) return result.status();
  snapshot_as_of_ = result->as_of;
  snapshot_stale_by_ = result->stale_by;
  return std::move(result->entries);
}

Result<ShipChunk> MonitorClient::ReplFetch(std::uint64_t segment,
                                           std::uint64_t offset,
                                           std::uint32_t max_bytes,
                                           std::chrono::milliseconds wait) {
  std::string body;
  EncodeReplFetch(segment, offset, max_bytes,
                  static_cast<std::uint32_t>(std::max<std::int64_t>(
                      0, std::min<std::int64_t>(wait.count(), 0xFFFFFFFF))),
                  &body);
  auto reply = RoundTrip(body, NetMessageType::kReplChunk, wait);
  if (!reply.ok()) return reply.status();
  leader_cycle_ts_ = std::max(leader_cycle_ts_, reply->leader_cycle_ts);
  fencing_epoch_ = std::max(fencing_epoch_, reply->fencing_epoch);
  ShipChunk chunk;
  chunk.segment = reply->segment;
  chunk.offset = reply->offset;
  chunk.sealed = reply->sealed;
  chunk.restart = reply->restart;
  chunk.next_segment = reply->next_segment;
  chunk.data = std::move(reply->data);
  return chunk;
}

Result<std::vector<DeltaEvent>> MonitorClient::PollDeltas(
    std::uint32_t max_events, std::chrono::milliseconds timeout) {
  std::string body;
  EncodePoll(max_events,
             static_cast<std::uint32_t>(std::max<std::int64_t>(
                 0, std::min<std::int64_t>(timeout.count(), 0xFFFFFFFF))),
             &body);
  auto deltas = RoundTrip(body, NetMessageType::kDeltas, timeout);
  if (!deltas.ok()) return deltas.status();
  deltas_as_of_ = deltas->as_of;
  deltas_truncated_ = deltas->truncated;
  for (const DeltaEvent& e : deltas->events) {
    last_seq_ = std::max(last_seq_, e.seq);
  }
  return std::move(deltas->events);
}

Result<MonitorClient::ServerStatus> MonitorClient::GetStatus() {
  std::string body;
  EncodeStatusRequest(&body);
  auto info = RoundTrip(body, NetMessageType::kStatusInfo);
  if (!info.ok()) return info.status();
  fencing_epoch_ = std::max(fencing_epoch_, info->fencing_epoch);
  ServerStatus out;
  out.role = info->role;
  out.fencing_epoch = info->fencing_epoch;
  out.applied_cycle_ts = info->as_of;
  out.journal_segment = info->segment;
  out.journal_offset = info->offset;
  out.fenced = info->fenced;
  return out;
}

Status MonitorClient::WaitForAsOf(QueryId query, Timestamp target,
                                  std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    auto result = CurrentResult(query);
    if (!result.ok()) return result.status();
    if (snapshot_as_of_ >= target) return Status::Ok();
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::Unavailable(
          "server as-of frontier " + std::to_string(snapshot_as_of_) +
          " did not reach " + std::to_string(target) + " within " +
          std::to_string(timeout.count()) + "ms");
    }
    // The frontier advances one replication cycle at a time; a short
    // sleep keeps the poll from hammering the snapshot path.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

Status MonitorClient::Close(bool close_session) {
  if (fd_ < 0) return Status::Ok();
  std::string body;
  EncodeClose(close_session, &body);
  const Status st = RoundTrip(body, NetMessageType::kCloseAck).status();
  ::close(fd_);
  fd_ = -1;
  return st;
}

}  // namespace topkmon
