// Multi-threaded poll-based TCP front-end for MonitorService.
//
// The server is sharded into N independent poll(2) loops
// (NetServerOptions::server_threads; default min(4, hw_concurrency)).
// One *acceptor* thread owns the listening socket and hands accepted
// connections to the loops round-robin through per-loop handoff queues;
// from then on a connection's buffers, parked state and timeouts belong
// to exactly one loop — loops never touch each other's connections, so
// the data path needs no cross-loop locking (the shared pieces are
// control-plane only: the stats mutex, the handoff queues, and the
// resume-epoch map below).
//
// Each loop multiplexes its connections with poll(2): non-blocking
// reads into per-connection buffers, frame extraction
// (src/net/protocol.h), request dispatch into the service, and buffered
// non-blocking writes. Nothing a client sends can wedge its loop — and
// nothing it does can touch any *other* loop:
//   * a malformed frame (oversized length, CRC mismatch) or an
//     undecodable body fails only that connection — a best-effort error
//     frame is queued, the connection drains its output and closes, and
//     the violation is counted in stats().protocol_errors;
//   * a slow-loris peer that trickles bytes simply leaves a partial
//     frame in its buffer; no loop ever blocks on any single fd;
//   * long-polls never block a loop either — a Poll request with no
//     pending deltas is *parked* (connection remembers max + deadline)
//     and answered from its loop as soon as the session's subscription
//     buffer reports pending events (MonitorService::PendingDeltas) or
//     the deadline passes, whichever is first.
//
// Cross-loop wakeups: every loop owns a self-pipe that is part of its
// poll set. The acceptor writes it to deliver handoffs, and the server
// registers a MonitorService progress listener that writes it whenever
// the driver publishes deltas or the journal grows — so a parked
// long-poll or replication fetch is answered promptly even with a long
// poll_tick, from whichever loop owns the connection.
//
// Ingest backpressure (protocol v3): ingest is admitted with the
// non-blocking TryIngest — a full ingest queue can never stall a poll
// loop. When the queue fills mid-batch the remainder of the batch is
// refused with RESOURCE_EXHAUSTED, and every IngestAck carries the
// service's queue_hint byte (MonitorService::IngestPressure) so
// producers self-pace before hitting the wall.
//
// Session mapping: the Hello/Welcome handshake binds each connection to
// a MonitorService session — freshly opened, or adopted by label
// (FindSession) when the client asks to resume. Disconnects leave the
// session (and its buffered, sequence-numbered deltas) untouched, so a
// reconnecting client continues its delta stream gap-free; an explicit
// Close request with the close-session flag releases it. Resume
// eviction is epoch-based so it stays race-free across loops: resuming
// a session bumps its epoch *before* the Welcome is sent, a parked poll
// remembers the epoch it parked under, and a loop never answers a poll
// whose epoch is stale — the stale connection is failed instead, from
// its own loop, wherever it lives.
//
// Replication: when the service journals, the server also answers
// ReplFetch requests — raw journal byte ranges served through a
// JournalShipper (src/replica/shipper.h) — so any follower can attach to
// the same port clients use. With >= 2 loops the *last* loop is
// dedicated to replication: new client connections round-robin over the
// other loops only, and a connection that issues its first ReplFetch is
// migrated (fd, buffers, session binding and all) to the dedicated loop
// before the fetch is served. Raw journal reads and fetch parking
// therefore live on a loop that client-facing ingest never shares — a
// saturating follower cannot add a microsecond to another connection's
// poll loop. A parked fetch wakes on journal growth
// (MonitorService::JournalProgress) or its deadline, like a long-poll.

#ifndef TOPKMON_NET_SERVER_H_
#define TOPKMON_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/protocol.h"
#include "replica/shipper.h"
#include "service/monitor_service.h"

namespace topkmon {

struct NetServerOptions {
  /// IPv4 address to bind; the default serves loopback only.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back with port()).
  std::uint16_t port = 0;
  int listen_backlog = 64;
  /// Connections beyond this are accepted and immediately closed.
  std::size_t max_connections = 256;
  /// Independent poll loops serving connections (the acceptor thread is
  /// separate). 0 = min(4, hardware_concurrency). With >= 2 loops and a
  /// journaling service, the last loop is dedicated to replication
  /// fetches (see the file comment).
  std::size_t server_threads = 0;
  /// Largest accepted frame body (protocol violation beyond it).
  std::size_t max_frame_bytes = kMaxNetFrameBytes;
  /// Poll granularity: the upper bound on how long a parked long-poll
  /// or fetch waits past its wake condition when the wakeup pipe race
  /// loses (deadlines and idle reaping are also checked per tick).
  std::chrono::milliseconds poll_tick{5};
  /// Server-side clamp on client long-poll timeouts.
  std::chrono::milliseconds max_long_poll{10000};
  /// Server-side clamp on events returned per poll.
  std::size_t max_poll_events = 4096;
  /// Connections that send nothing for this long are reaped (slow-loris
  /// and abandoned sockets cannot hold slots forever). Must exceed
  /// max_long_poll — a healthy long-polling client transmits at least
  /// once per poll round. A *closing* connection gets the same budget to
  /// drain its final frames before it is force-closed. <= 0 disables
  /// reaping.
  std::chrono::milliseconds idle_timeout{60000};
  /// Cap on un-sent response bytes buffered per connection. A peer that
  /// requests faster than it reads (or never reads at all) would
  /// otherwise grow server memory without bound; past the cap the
  /// connection is dropped outright — its socket is not draining, so an
  /// error frame could not be delivered anyway.
  std::size_t max_output_bytes = std::size_t(4) << 20;
  /// Operator-assigned identity echoed in every Welcome (v4) — the
  /// cluster partition index, so a router can verify it dialed the
  /// partition it meant. kNoServerTag (the default) means standalone.
  std::uint32_t server_tag = 0xFFFFFFFFu;
};

/// Observable server counters (snapshot; aggregated across loops under
/// one stats mutex).
struct NetServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t connections_refused = 0;  ///< over max_connections
  std::uint64_t connections_migrated = 0;  ///< moved to the repl loop
  std::uint64_t frames_received = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t protocol_errors = 0;  ///< framing/decode violations
  std::uint64_t bytes_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t records_ingested = 0;  ///< tuples accepted over the wire
  std::uint64_t records_backpressured = 0;  ///< queue-full refusals
  std::uint64_t repl_chunks_sent = 0;  ///< answered replication fetches
  std::uint64_t repl_bytes_shipped = 0;  ///< journal bytes shipped
  std::size_t open_connections = 0;

  std::string ToString() const;
};

/// The TCP front-end. Does not own the service; the service must outlive
/// Stop() (which the destructor also runs).
class TcpServer {
 public:
  TcpServer(MonitorService& service, const NetServerOptions& options);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens and starts the acceptor + poll-loop threads.
  /// InvalidArgument for a bad bind address, FailedPrecondition if
  /// already started or the port is taken.
  Status Start();

  /// Closes the listener and every connection, then joins every thread.
  /// Idempotent. Sessions opened by connections stay open in the
  /// service (they are service state, not connection state).
  void Stop();

  /// The bound TCP port (after a successful Start).
  std::uint16_t port() const { return port_; }

  /// Poll loops actually running (after Start resolves server_threads).
  std::size_t loop_count() const { return loops_.size(); }

  /// Index of the loop dedicated to replication fetches; loop_count()
  /// when no loop is dedicated (single loop, or no journal to ship).
  std::size_t replication_loop() const { return repl_loop_; }

  NetServerStats stats() const;

 private:
  struct Connection {
    int fd = -1;
    std::string in;       ///< bytes received, not yet framed
    std::string out;      ///< bytes encoded, not yet sent
    SessionId session = 0;
    bool hello_done = false;
    /// Dialect negotiated at Hello: the client's version, clamped into
    /// [kMinNetProtocolVersion, kNetProtocolVersion]. Every reply on
    /// this connection is shaped for it.
    std::uint32_t wire_version = kNetProtocolVersion;
    /// Protocol violation or Close handled: flush `out`, then close.
    bool closing = false;
    /// First ReplFetch seen on a non-dedicated loop: move to repl_loop_.
    bool migrate = false;
    /// Peer half-closed while a migration was pending: the carried
    /// frames are still served after adoption, then the close runs.
    bool eof_pending = false;
    /// Parked long-poll (see file comment).
    bool poll_parked = false;
    std::size_t poll_max = 0;
    std::chrono::steady_clock::time_point poll_deadline{};
    /// Resume epoch of the session at park time; a bumped epoch means a
    /// newer connection resumed the session and this poll must never be
    /// answered (see ResumeEpoch).
    std::uint64_t poll_epoch = 0;
    /// Parked replication fetch: answered when the journal progress
    /// counter moves past fetch_progress or the deadline passes.
    bool fetch_parked = false;
    std::uint64_t fetch_segment = 0;
    std::uint64_t fetch_offset = 0;
    std::uint32_t fetch_max_bytes = 0;
    std::uint64_t fetch_progress = 0;
    std::chrono::steady_clock::time_point fetch_deadline{};
    /// Last instant bytes arrived (idle-timeout reaping).
    std::chrono::steady_clock::time_point last_activity{};
  };

  /// One poll loop: a thread, the connections it owns, a handoff queue
  /// fed by the acceptor (and by migrations), and a self-pipe wakeup.
  struct PollLoop {
    std::size_t index = 0;
    int wake_rd = -1;  ///< self-pipe read end, part of the poll set
    int wake_wr = -1;
    /// Collapses redundant pipe writes (cleared when the pipe drains).
    std::atomic<bool> wake_pending{false};
    std::mutex handoff_mu;
    std::vector<Connection> handoff;  ///< accepted / migrated, not yet owned
    std::list<Connection> connections;  ///< loop-thread private
    /// Admin-plane gauges, refreshed by the loop thread once per tick
    /// during the poll-set build (free — the iteration happens anyway)
    /// and read by the metrics sampler with {loop="i"} labels.
    std::atomic<std::size_t> gauge_connections{0};
    std::atomic<std::size_t> gauge_parked_polls{0};
    std::atomic<std::size_t> gauge_parked_fetches{0};
    std::thread thread;
  };

  void AcceptorLoop();
  void LoopRun(PollLoop& loop);
  /// Moves handed-off connections into the loop and processes any bytes
  /// a migration carried along.
  void AdoptHandoffs(PollLoop& loop);
  /// Writes the loop's wake pipe unless a wake is already pending.
  void Wake(PollLoop& loop);
  void WakeAll();
  /// Hands `conn` to `target`'s handoff queue and wakes it.
  void HandOff(PollLoop& target, Connection&& conn);

  /// Reads whatever is available; returns false when the peer is gone.
  bool ReadReady(PollLoop& loop, Connection& conn);
  /// Extracts and dispatches every complete frame in conn.in. Stops
  /// early (leaving the frame unconsumed) when the message must be
  /// served from the replication loop instead (conn.migrate).
  void DrainFrames(PollLoop& loop, Connection& conn);
  void HandleMessage(PollLoop& loop, Connection& conn,
                     const NetMessage& msg);
  void HandleHello(PollLoop& loop, Connection& conn, const NetMessage& msg);
  /// The zero-copy ingest path: DrainFrames routes kIngest frame bodies
  /// here directly (no DecodeNetBody, no NetMessage), decoding straight
  /// into the service's ingest arena and admitting maximal valid runs
  /// batch-at-a-time. Counts and the ack's first_error match what the
  /// per-record path produced.
  void HandleIngest(Connection& conn, const char* body,
                    std::size_t body_len);
  void HandleRegisterBatch(Connection& conn, const NetMessage& msg);
  void HandleReplFetch(Connection& conn, const NetMessage& msg);
  /// Answers a parked poll with whatever is pending (possibly nothing)
  /// — or, when the session's resume epoch moved past the one recorded
  /// at park time, evicts the connection instead of answering. The
  /// epoch re-check and the delta consumption are atomic with respect
  /// to BumpResumeEpoch (one resume_mu_ critical section), so a stale
  /// poll can never consume events once a resume's Welcome is queued.
  void AnswerPoll(Connection& conn);
  /// Error + close for a connection whose parked poll lost its session
  /// to a resume. Unlike FailConnection this is not counted as a
  /// protocol error — the evicted peer did nothing wrong.
  void EvictConnection(Connection& conn);
  /// Answers a parked replication fetch with whatever the journal holds.
  void AnswerFetch(Connection& conn);
  /// Queues one response frame built from `body`.
  void SendBody(Connection& conn, const std::string& body);
  /// Queues an error frame and schedules the connection for close.
  void FailConnection(Connection& conn, const Status& status);
  /// Flushes conn.out as far as the socket allows; false when broken.
  bool WriteReady(Connection& conn);
  void CloseConnection(PollLoop& loop, std::list<Connection>::iterator it);

  /// Bridges the aggregate NetServerStats counters and the per-loop
  /// gauges into a metrics scrape (registered on the service's registry
  /// by Start, removed by Stop).
  void SampleNetMetrics(MetricSink& sink) const;
  /// The "net" section one MonitorService::stats() / /statusz call
  /// carries (registered by Start, removed by Stop).
  std::vector<std::pair<std::string, std::string>> StatsSection() const;

  /// Current resume epoch of a session (0 until first resumed).
  std::uint64_t ResumeEpoch(SessionId session) const;
  /// Bumps the epoch — called by a resuming Hello *before* its Welcome
  /// is queued, so no stale parked poll can consume the stream after.
  void BumpResumeEpoch(SessionId session);
  void ForgetResumeEpoch(SessionId session);

  MonitorService& service_;
  const NetServerOptions options_;
  /// Serves ReplFetch when the service journals (null otherwise).
  std::unique_ptr<JournalShipper> shipper_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::thread acceptor_;

  std::vector<std::unique_ptr<PollLoop>> loops_;
  /// Loops accepting fresh client connections: [0, client_loops_).
  std::size_t client_loops_ = 0;
  /// Dedicated replication loop index, or loops_.size() if none.
  std::size_t repl_loop_ = 0;
  /// Round-robin cursor of the acceptor.
  std::size_t next_loop_ = 0;
  /// Progress-listener registration on the service (0 = none).
  std::uint64_t listener_id_ = 0;
  /// Admin-plane registrations on the service (0 = none). Removed
  /// before loops_ is torn down: RemoveSampler / RemoveStatsSection
  /// block until no in-flight scrape still reads this server.
  std::uint64_t sampler_id_ = 0;
  std::uint64_t section_id_ = 0;

  /// Resume epochs (see Connection::poll_epoch). Touched by every loop,
  /// but only on Hello-resume, park and the per-tick parked check.
  mutable std::mutex resume_mu_;
  std::unordered_map<SessionId, std::uint64_t> resume_epoch_;

  mutable std::mutex stats_mu_;
  NetServerStats stats_;
};

}  // namespace topkmon

#endif  // TOPKMON_NET_SERVER_H_
