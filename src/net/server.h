// Poll-based multi-client TCP front-end for MonitorService.
//
// One driver thread multiplexes every connection with poll(2): accepts,
// non-blocking reads into per-connection buffers, frame extraction
// (src/net/protocol.h), request dispatch into the service, and buffered
// non-blocking writes. Nothing a client sends can wedge the thread:
//   * a malformed frame (oversized length, CRC mismatch) or an
//     undecodable body fails only that connection — a best-effort error
//     frame is queued, the connection drains its output and closes, and
//     the violation is counted in stats().protocol_errors;
//   * a slow-loris peer that trickles bytes simply leaves a partial
//     frame in its buffer; the loop never blocks on any single fd;
//   * long-polls never block the thread either — a Poll request with no
//     pending deltas is *parked* (connection remembers max + deadline)
//     and answered from the loop as soon as the session's subscription
//     buffer reports pending events (MonitorService::PendingDeltas) or
//     the deadline passes, whichever is first.
//
// Session mapping: the Hello/Welcome handshake binds each connection to
// a MonitorService session — freshly opened, or adopted by label
// (FindSession) when the client asks to resume. Disconnects leave the
// session (and its buffered, sequence-numbered deltas) untouched, so a
// reconnecting client continues its delta stream gap-free; an explicit
// Close request with the close-session flag releases it.
//
// Replication: when the service journals, the server also answers
// ReplFetch requests — raw journal byte ranges served through a
// JournalShipper (src/replica/shipper.h) — so any follower can attach to
// the same port clients use. A fetch that finds nothing new is *parked*
// exactly like a long-poll and answered as soon as the service's journal
// progress counter moves (MonitorService::JournalProgress) or its
// deadline passes; shipping therefore adds no polling load and never
// blocks the driver thread on follower speed.

#ifndef TOPKMON_NET_SERVER_H_
#define TOPKMON_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "net/protocol.h"
#include "replica/shipper.h"
#include "service/monitor_service.h"

namespace topkmon {

struct NetServerOptions {
  /// IPv4 address to bind; the default serves loopback only.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back with port()).
  std::uint16_t port = 0;
  int listen_backlog = 64;
  /// Connections beyond this are accepted and immediately closed.
  std::size_t max_connections = 256;
  /// Largest accepted frame body (protocol violation beyond it).
  std::size_t max_frame_bytes = kMaxNetFrameBytes;
  /// Poll granularity: the upper bound on how long a ready parked
  /// long-poll waits before the loop notices its session has deltas.
  std::chrono::milliseconds poll_tick{5};
  /// Server-side clamp on client long-poll timeouts.
  std::chrono::milliseconds max_long_poll{10000};
  /// Server-side clamp on events returned per poll.
  std::size_t max_poll_events = 4096;
  /// Connections that send nothing for this long are reaped (slow-loris
  /// and abandoned sockets cannot hold slots forever). Must exceed
  /// max_long_poll — a healthy long-polling client transmits at least
  /// once per poll round. A *closing* connection gets the same budget to
  /// drain its final frames before it is force-closed. <= 0 disables
  /// reaping.
  std::chrono::milliseconds idle_timeout{60000};
  /// Cap on un-sent response bytes buffered per connection. A peer that
  /// requests faster than it reads (or never reads at all) would
  /// otherwise grow server memory without bound; past the cap the
  /// connection is dropped outright — its socket is not draining, so an
  /// error frame could not be delivered anyway.
  std::size_t max_output_bytes = std::size_t(4) << 20;
};

/// Observable server counters (snapshot; internally updated by the
/// driver thread only).
struct NetServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t connections_refused = 0;  ///< over max_connections
  std::uint64_t frames_received = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t protocol_errors = 0;  ///< framing/decode violations
  std::uint64_t bytes_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t records_ingested = 0;  ///< tuples accepted over the wire
  std::uint64_t repl_chunks_sent = 0;  ///< answered replication fetches
  std::uint64_t repl_bytes_shipped = 0;  ///< journal bytes shipped
  std::size_t open_connections = 0;

  std::string ToString() const;
};

/// The TCP front-end. Does not own the service; the service must outlive
/// Stop() (which the destructor also runs).
class TcpServer {
 public:
  TcpServer(MonitorService& service, const NetServerOptions& options);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens and starts the driver thread. InvalidArgument for a
  /// bad bind address, FailedPrecondition if already started or the port
  /// is taken.
  Status Start();

  /// Closes the listener and every connection, then joins the driver
  /// thread. Idempotent. Sessions opened by connections stay open in the
  /// service (they are service state, not connection state).
  void Stop();

  /// The bound TCP port (after a successful Start).
  std::uint16_t port() const { return port_; }

  NetServerStats stats() const;

 private:
  struct Connection {
    int fd = -1;
    std::string in;       ///< bytes received, not yet framed
    std::string out;      ///< bytes encoded, not yet sent
    SessionId session = 0;
    bool hello_done = false;
    /// Protocol violation or Close handled: flush `out`, then close.
    bool closing = false;
    /// Parked long-poll (see file comment).
    bool poll_parked = false;
    std::size_t poll_max = 0;
    std::chrono::steady_clock::time_point poll_deadline{};
    /// Parked replication fetch: answered when the journal progress
    /// counter moves past fetch_progress or the deadline passes.
    bool fetch_parked = false;
    std::uint64_t fetch_segment = 0;
    std::uint64_t fetch_offset = 0;
    std::uint32_t fetch_max_bytes = 0;
    std::uint64_t fetch_progress = 0;
    std::chrono::steady_clock::time_point fetch_deadline{};
    /// Last instant bytes arrived (idle-timeout reaping).
    std::chrono::steady_clock::time_point last_activity{};
  };

  void Loop();
  void AcceptReady();
  /// Reads whatever is available; returns false when the peer is gone.
  bool ReadReady(Connection& conn);
  /// Extracts and dispatches every complete frame in conn.in.
  void DrainFrames(Connection& conn);
  void HandleMessage(Connection& conn, const NetMessage& msg);
  void HandleHello(Connection& conn, const NetMessage& msg);
  void HandleIngest(Connection& conn, const NetMessage& msg);
  void HandleRegisterBatch(Connection& conn, const NetMessage& msg);
  void HandleReplFetch(Connection& conn, const NetMessage& msg);
  /// Answers a parked poll with whatever is pending (possibly nothing).
  void AnswerPoll(Connection& conn);
  /// Answers a parked replication fetch with whatever the journal holds.
  void AnswerFetch(Connection& conn);
  /// Queues one response frame built from `body`.
  void SendBody(Connection& conn, const std::string& body);
  /// Queues an error frame and schedules the connection for close.
  void FailConnection(Connection& conn, const Status& status);
  /// Flushes conn.out as far as the socket allows; false when broken.
  bool WriteReady(Connection& conn);
  void CloseConnection(std::list<Connection>::iterator it);

  MonitorService& service_;
  const NetServerOptions options_;
  /// Serves ReplFetch when the service journals (null otherwise).
  std::unique_ptr<JournalShipper> shipper_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::thread driver_;

  std::list<Connection> connections_;

  mutable std::mutex stats_mu_;
  NetServerStats stats_;
};

}  // namespace topkmon

#endif  // TOPKMON_NET_SERVER_H_
