#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <vector>

namespace topkmon {
namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

std::string NetServerStats::ToString() const {
  std::ostringstream os;
  os << "connections=" << open_connections
     << " accepted=" << connections_accepted
     << " closed=" << connections_closed
     << " refused=" << connections_refused
     << " frames_in=" << frames_received << " frames_out=" << frames_sent
     << " bytes_in=" << bytes_received << " bytes_out=" << bytes_sent
     << " ingested=" << records_ingested
     << " protocol_errors=" << protocol_errors;
  if (records_backpressured > 0) {
    os << " backpressured=" << records_backpressured;
  }
  if (connections_migrated > 0) {
    os << " migrated=" << connections_migrated;
  }
  if (repl_chunks_sent > 0) {
    os << " repl_chunks=" << repl_chunks_sent
       << " repl_bytes=" << repl_bytes_shipped;
  }
  return os.str();
}

TcpServer::TcpServer(MonitorService& service,
                     const NetServerOptions& options)
    : service_(service), options_(options) {
  if (!service_.journal_dir().empty()) {
    shipper_ = std::make_unique<JournalShipper>(service_.journal_dir());
  }
}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  if (started_) {
    return Status::FailedPrecondition("server already started");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status st = errno == EADDRINUSE
                          ? Status::FailedPrecondition(
                                "port " + std::to_string(options_.port) +
                                " is already in use")
                          : Errno("bind");
    ::close(fd);
    return st;
  }
  if (::listen(fd, options_.listen_backlog) != 0 || !SetNonBlocking(fd)) {
    const Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const Status st = Errno("getsockname");
    ::close(fd);
    return st;
  }

  // Resolve the loop topology: N independent poll loops, and — when
  // there is a journal to ship and at least two loops — the last loop
  // dedicated to replication fetches.
  std::size_t threads = options_.server_threads;
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = std::min<std::size_t>(4, hw == 0 ? 1 : hw);
  }
  loops_.clear();
  for (std::size_t i = 0; i < threads; ++i) {
    auto loop = std::make_unique<PollLoop>();
    loop->index = i;
    int pipe_fds[2] = {-1, -1};
    if (::pipe(pipe_fds) != 0 || !SetNonBlocking(pipe_fds[0]) ||
        !SetNonBlocking(pipe_fds[1])) {
      const Status st = Errno("wakeup pipe");
      if (pipe_fds[0] >= 0) ::close(pipe_fds[0]);
      if (pipe_fds[1] >= 0) ::close(pipe_fds[1]);
      for (auto& l : loops_) {
        ::close(l->wake_rd);
        ::close(l->wake_wr);
      }
      loops_.clear();
      ::close(fd);
      return st;
    }
    loop->wake_rd = pipe_fds[0];
    loop->wake_wr = pipe_fds[1];
    loops_.push_back(std::move(loop));
  }
  const bool dedicate = shipper_ != nullptr && threads >= 2;
  client_loops_ = dedicate ? threads - 1 : threads;
  repl_loop_ = dedicate ? threads - 1 : threads;
  next_loop_ = 0;

  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  started_ = true;
  stop_.store(false);
  // Parked-wakeup path: the service pokes every loop's pipe whenever
  // deltas are published or the journal grows, so parked long-polls and
  // fetches are answered promptly regardless of which loop owns them.
  listener_id_ = service_.AddProgressListener([this] { WakeAll(); });
  // Admin plane: the server's counters and per-loop gauges join the
  // service's scrape and its /statusz document for as long as the
  // server runs (Stop deregisters both before touching loops_).
  sampler_id_ = service_.metrics().AddSampler(
      [this](MetricSink& sink) { SampleNetMetrics(sink); });
  section_id_ =
      service_.AddStatsSection("net", [this] { return StatsSection(); });
  for (auto& loop : loops_) {
    PollLoop* raw = loop.get();
    raw->thread = std::thread([this, raw] { LoopRun(*raw); });
  }
  acceptor_ = std::thread([this] { AcceptorLoop(); });
  return Status::Ok();
}

void TcpServer::Stop() {
  stop_.store(true);
  if (listener_id_ != 0) {
    service_.RemoveProgressListener(listener_id_);
    listener_id_ = 0;
  }
  // Deregister from the admin plane before any loop state is torn
  // down; both removals block until an in-flight scrape is done here.
  if (sampler_id_ != 0) {
    service_.metrics().RemoveSampler(sampler_id_);
    sampler_id_ = 0;
  }
  if (section_id_ != 0) {
    service_.RemoveStatsSection(section_id_);
    section_id_ = 0;
  }
  WakeAll();
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  // Handoffs that raced shutdown (acceptor -> loop, or a migration into
  // a loop that had already exited) are drained here, after every
  // thread is parked, so no fd can leak.
  for (auto& loop : loops_) {
    std::vector<Connection> leftover;
    {
      std::lock_guard<std::mutex> lock(loop->handoff_mu);
      leftover.swap(loop->handoff);
    }
    for (Connection& conn : leftover) {
      ::close(conn.fd);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections_closed;
      --stats_.open_connections;
    }
    if (loop->wake_rd >= 0) ::close(loop->wake_rd);
    if (loop->wake_wr >= 0) ::close(loop->wake_wr);
    loop->wake_rd = loop->wake_wr = -1;
  }
  loops_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  started_ = false;
}

NetServerStats TcpServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void TcpServer::SampleNetMetrics(MetricSink& sink) const {
  const NetServerStats s = stats();
  sink.AddCounter("topkmon_net_connections_accepted_total",
                  "Client connections accepted",
                  static_cast<double>(s.connections_accepted));
  sink.AddCounter("topkmon_net_connections_closed_total",
                  "Client connections closed",
                  static_cast<double>(s.connections_closed));
  sink.AddCounter("topkmon_net_connections_refused_total",
                  "Connections refused over max_connections",
                  static_cast<double>(s.connections_refused));
  sink.AddCounter("topkmon_net_connections_migrated_total",
                  "Connections migrated to the replication loop",
                  static_cast<double>(s.connections_migrated));
  sink.AddCounter("topkmon_net_frames_received_total",
                  "Protocol frames received",
                  static_cast<double>(s.frames_received));
  sink.AddCounter("topkmon_net_frames_sent_total", "Protocol frames sent",
                  static_cast<double>(s.frames_sent));
  sink.AddCounter("topkmon_net_protocol_errors_total",
                  "Framing/decode violations (each fails its connection)",
                  static_cast<double>(s.protocol_errors));
  sink.AddCounter("topkmon_net_bytes_received_total",
                  "Bytes received from clients",
                  static_cast<double>(s.bytes_received));
  sink.AddCounter("topkmon_net_bytes_sent_total", "Bytes sent to clients",
                  static_cast<double>(s.bytes_sent));
  sink.AddCounter("topkmon_net_records_ingested_total",
                  "Tuples accepted over the wire",
                  static_cast<double>(s.records_ingested));
  sink.AddCounter("topkmon_net_records_backpressured_total",
                  "Wire tuples refused with the ingest queue full",
                  static_cast<double>(s.records_backpressured));
  sink.AddCounter("topkmon_net_repl_chunks_sent_total",
                  "Replication fetches answered",
                  static_cast<double>(s.repl_chunks_sent));
  sink.AddCounter("topkmon_net_repl_bytes_shipped_total",
                  "Journal bytes shipped to followers",
                  static_cast<double>(s.repl_bytes_shipped));
  sink.AddGauge("topkmon_net_open_connections", "Open client connections",
                static_cast<double>(s.open_connections));
  for (const auto& loop : loops_) {
    const MetricLabels labels = {{"loop", std::to_string(loop->index)}};
    sink.AddGauge(
        "topkmon_net_loop_connections",
        "Connections owned by this poll loop",
        static_cast<double>(
            loop->gauge_connections.load(std::memory_order_relaxed)),
        labels);
    sink.AddGauge(
        "topkmon_net_loop_parked_polls",
        "Long-polls parked on this poll loop",
        static_cast<double>(
            loop->gauge_parked_polls.load(std::memory_order_relaxed)),
        labels);
    sink.AddGauge(
        "topkmon_net_loop_parked_fetches",
        "Replication fetches parked on this poll loop",
        static_cast<double>(
            loop->gauge_parked_fetches.load(std::memory_order_relaxed)),
        labels);
  }
}

std::vector<std::pair<std::string, std::string>> TcpServer::StatsSection()
    const {
  const NetServerStats s = stats();
  std::vector<std::pair<std::string, std::string>> rows;
  rows.emplace_back("open_connections",
                    std::to_string(s.open_connections));
  rows.emplace_back("accepted", std::to_string(s.connections_accepted));
  rows.emplace_back("refused", std::to_string(s.connections_refused));
  rows.emplace_back("migrated", std::to_string(s.connections_migrated));
  rows.emplace_back("frames_received", std::to_string(s.frames_received));
  rows.emplace_back("frames_sent", std::to_string(s.frames_sent));
  rows.emplace_back("protocol_errors",
                    std::to_string(s.protocol_errors));
  rows.emplace_back("records_ingested",
                    std::to_string(s.records_ingested));
  rows.emplace_back("records_backpressured",
                    std::to_string(s.records_backpressured));
  rows.emplace_back("repl_chunks_sent",
                    std::to_string(s.repl_chunks_sent));
  for (const auto& loop : loops_) {
    rows.emplace_back(
        "loop" + std::to_string(loop->index),
        "conns=" +
            std::to_string(
                loop->gauge_connections.load(std::memory_order_relaxed)) +
            " parked_polls=" +
            std::to_string(
                loop->gauge_parked_polls.load(std::memory_order_relaxed)) +
            " parked_fetches=" +
            std::to_string(loop->gauge_parked_fetches.load(
                std::memory_order_relaxed)));
  }
  return rows;
}

void TcpServer::Wake(PollLoop& loop) {
  bool expected = false;
  if (!loop.wake_pending.compare_exchange_strong(expected, true)) return;
  const char byte = 1;
  // A full pipe means a wake is already deliverable; the poll tick
  // bounds the delay of the (theoretical) lost-wake race either way.
  (void)!::write(loop.wake_wr, &byte, 1);
}

void TcpServer::WakeAll() {
  for (auto& loop : loops_) Wake(*loop);
}

void TcpServer::HandOff(PollLoop& target, Connection&& conn) {
  conn.migrate = false;
  {
    std::lock_guard<std::mutex> lock(target.handoff_mu);
    target.handoff.push_back(std::move(conn));
  }
  Wake(target);
}

void TcpServer::AcceptorLoop() {
  pollfd pfd{listen_fd_, POLLIN, 0};
  const int tick =
      static_cast<int>(std::max<std::int64_t>(1, options_.poll_tick.count()));
  while (!stop_.load()) {
    const int ready = ::poll(&pfd, 1, tick);
    if (stop_.load()) break;
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    while (true) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) break;  // EAGAIN (or transient error): next round
      std::size_t open = 0;
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        open = stats_.open_connections;
      }
      // Peers beyond the cap get an immediate accept-and-close (a clean
      // refusal) instead of hanging in the kernel backlog.
      if (open >= options_.max_connections || !SetNonBlocking(fd)) {
        ::close(fd);
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.connections_refused;
        continue;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      Connection conn;
      conn.fd = fd;
      conn.last_activity = std::chrono::steady_clock::now();
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.connections_accepted;
        ++stats_.open_connections;
      }
      // Fresh connections round-robin over the client-facing loops; the
      // dedicated replication loop (if any) only receives migrations.
      PollLoop& target = *loops_[next_loop_ % client_loops_];
      ++next_loop_;
      HandOff(target, std::move(conn));
    }
  }
}

void TcpServer::AdoptHandoffs(PollLoop& loop) {
  std::vector<Connection> adopted;
  {
    std::lock_guard<std::mutex> lock(loop.handoff_mu);
    if (loop.handoff.empty()) return;
    adopted.swap(loop.handoff);
  }
  for (Connection& handed : adopted) {
    loop.connections.push_back(std::move(handed));
    Connection& conn = loop.connections.back();
    // A migrated connection arrives carrying the unserved frame that
    // triggered the move (and possibly more pipelined after it).
    if (!conn.in.empty() && !conn.closing) {
      DrainFrames(loop, conn);
    }
    if (conn.eof_pending) {
      // The peer had half-closed behind the migration: its final
      // frames are handled now, so the closing path (flush, then
      // close) proceeds exactly as on an unmigrated connection.
      conn.eof_pending = false;
      conn.closing = true;
      conn.in.clear();
    }
  }
}

void TcpServer::LoopRun(PollLoop& loop) {
  std::vector<pollfd> fds;
  std::vector<std::list<Connection>::iterator> conn_of_fd;
  const int tick =
      static_cast<int>(std::max<std::int64_t>(1, options_.poll_tick.count()));
  while (!stop_.load()) {
    AdoptHandoffs(loop);
    fds.clear();
    conn_of_fd.clear();
    fds.push_back({loop.wake_rd, POLLIN, 0});
    std::size_t parked_polls = 0;
    std::size_t parked_fetches = 0;
    for (auto it = loop.connections.begin(); it != loop.connections.end();
         ++it) {
      short events = 0;
      if (!it->closing) events |= POLLIN;
      if (!it->out.empty()) events |= POLLOUT;
      fds.push_back({it->fd, events, 0});
      conn_of_fd.push_back(it);
      if (it->poll_parked) ++parked_polls;
      if (it->fetch_parked) ++parked_fetches;
    }
    // Per-loop admin gauges ride the poll-set build (no extra pass).
    loop.gauge_connections.store(loop.connections.size(),
                                 std::memory_order_relaxed);
    loop.gauge_parked_polls.store(parked_polls, std::memory_order_relaxed);
    loop.gauge_parked_fetches.store(parked_fetches,
                                    std::memory_order_relaxed);
    const int ready = ::poll(fds.data(), fds.size(), tick);
    if (stop_.load()) break;
    if (ready < 0 && errno != EINTR) break;
    if (fds[0].revents & POLLIN) {
      // Drain first, clear the flag after. A Wake racing the drain may
      // have its byte consumed here while its CAS left the flag set —
      // clearing afterwards guarantees the flag can never be left true
      // with an empty pipe (which would suppress every future wakeup);
      // the racer's work is picked up this very iteration (handoffs at
      // the top of the next one), so the race costs at most one tick.
      char buf[256];
      while (::read(loop.wake_rd, buf, sizeof(buf)) > 0) {
      }
      loop.wake_pending.store(false);
    }

    std::vector<std::list<Connection>::iterator> doomed;
    std::vector<std::list<Connection>::iterator> migrants;
    const auto now = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < conn_of_fd.size(); ++i) {
      auto it = conn_of_fd[i];
      Connection& conn = *it;
      const short revents = fds[i + 1].revents;
      bool alive = true;
      if (alive && (revents & (POLLIN | POLLHUP | POLLERR)) != 0 &&
          !conn.closing) {
        alive = ReadReady(loop, conn);
      }
      // A connection that issued its first ReplFetch moves to the
      // dedicated replication loop with its buffers; the frame itself
      // is still in conn.in and is served after adoption.
      if (alive && conn.migrate && !conn.closing) {
        migrants.push_back(it);
        continue;
      }
      // A closing connection must never have its parked poll answered:
      // PollDeltas would consume the session's events into a socket
      // whose peer is (typically) gone, losing them for the resumed
      // successor. Dropping the park leaves the events buffered.
      if (conn.closing && conn.poll_parked) conn.poll_parked = false;
      // A parked long-poll is answered as soon as the session's buffer
      // has something — or its deadline passed (an empty Deltas frame
      // is the long-poll timeout signal) — or a newer connection
      // resumed the session (possibly on another loop; the bumped
      // epoch makes AnswerPoll evict instead of answer, from here, the
      // holder's own loop — no cross-loop connection state is touched,
      // and the epoch re-check inside AnswerPoll is atomic with the
      // consumption).
      if (alive && conn.poll_parked &&
          (service_.PendingDeltas(conn.session) > 0 ||
           now >= conn.poll_deadline ||
           ResumeEpoch(conn.session) != conn.poll_epoch)) {
        AnswerPoll(conn);
      }
      // A parked replication fetch wakes on journal growth (any append
      // bumps JournalProgress) or its deadline — the empty chunk is the
      // fetch's long-poll timeout signal.
      if (conn.closing && conn.fetch_parked) conn.fetch_parked = false;
      if (alive && conn.fetch_parked &&
          (service_.JournalProgress() != conn.fetch_progress ||
           now >= conn.fetch_deadline)) {
        AnswerFetch(conn);
      }
      if (alive && options_.idle_timeout.count() > 0 &&
          now - conn.last_activity > options_.idle_timeout) {
        if (!conn.closing) {
          FailConnection(conn, Status::FailedPrecondition(
                                   "connection idle timeout"));
        } else {
          // The drain window for its final frames has expired too —
          // the peer is holding the socket open without reading.
          alive = false;
        }
      }
      // A peer that requests faster than it reads is not served into
      // unbounded memory; past the cap its socket is clearly not
      // draining, so no error frame could be delivered either.
      if (alive && conn.out.size() > options_.max_output_bytes) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.protocol_errors;
        alive = false;
      }
      if (alive && !conn.out.empty()) alive = WriteReady(conn);
      if (!alive || (conn.closing && conn.out.empty())) doomed.push_back(it);
    }
    for (auto it : doomed) CloseConnection(loop, it);
    for (auto it : migrants) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.connections_migrated;
      }
      HandOff(*loops_[repl_loop_], std::move(*it));
      loop.connections.erase(it);
    }
  }
  for (auto it = loop.connections.begin(); it != loop.connections.end();) {
    auto next = std::next(it);
    CloseConnection(loop, it);
    it = next;
  }
}

bool TcpServer::ReadReady(PollLoop& loop, Connection& conn) {
  // Per-connection read budget per tick: a peer that can fill the
  // socket faster than we parse must not pin its poll loop in this
  // inner loop (starving the loop's other connections) or grow conn.in
  // without bound — poll() re-reports readiness next tick, which
  // round-robins the remainder fairly.
  std::size_t budget = std::size_t(1) << 20;
  char buf[65536];
  bool peer_eof = false;
  while (budget > 0) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.in.append(buf, static_cast<std::size_t>(n));
      conn.last_activity = std::chrono::steady_clock::now();
      budget -= std::min<std::size_t>(budget,
                                      static_cast<std::size_t>(n));
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.bytes_received += static_cast<std::uint64_t>(n);
      if (n < static_cast<ssize_t>(sizeof(buf))) break;
      continue;
    }
    if (n == 0) {
      // Half-close: the peer is done sending but may still be reading.
      // Its final buffered requests are processed below and the
      // responses flushed via the closing path — a client that sends
      // Close and shutdown(SHUT_WR) still gets its CloseAck.
      peer_eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  DrainFrames(loop, conn);
  if (peer_eof) {
    // A half-close racing a pending migration must not drop the carried
    // frame: the close is deferred until the target loop served it.
    if (conn.migrate) {
      conn.eof_pending = true;
    } else {
      conn.closing = true;
    }
  }
  return true;
}

void TcpServer::DrainFrames(PollLoop& loop, Connection& conn) {
  std::size_t off = 0;
  while (!conn.closing && !conn.migrate) {
    const char* body = nullptr;
    std::size_t body_len = 0;
    std::size_t consumed = 0;
    Status error;
    const FrameParse parse = TryParseNetFrame(
        conn.in.data() + off, conn.in.size() - off, options_.max_frame_bytes,
        &body, &body_len, &consumed, &error);
    if (parse == FrameParse::kNeedMore) break;
    if (parse == FrameParse::kBad) {
      FailConnection(conn, error);
      break;
    }
    // Ingest frames bypass DecodeNetBody entirely: the body is decoded
    // straight into the service's record arena (no per-record copy, no
    // NetMessage materialization). Pre-handshake frames fall through so
    // the "first frame must be Hello" check still fires.
    if (conn.hello_done &&
        PeekNetMessageType(body, body_len) == NetMessageType::kIngest) {
      off += consumed;
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.frames_received;
      }
      HandleIngest(conn, body, body_len);
      continue;
    }
    NetMessage msg;
    const Status st = DecodeNetBody(body, body_len, &msg);
    if (!st.ok()) {
      FailConnection(conn, st);
      break;
    }
    // Replication fetches are served from the dedicated loop: leave the
    // frame unconsumed and flag the connection for migration — the
    // target loop re-parses it after adoption.
    if (msg.type == NetMessageType::kReplFetch && conn.hello_done &&
        repl_loop_ < loops_.size() && loop.index != repl_loop_) {
      conn.migrate = true;
      break;
    }
    off += consumed;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.frames_received;
    }
    HandleMessage(loop, conn, msg);
  }
  conn.in.erase(0, off);
  if (conn.closing) conn.in.clear();
}

void TcpServer::HandleMessage(PollLoop& loop, Connection& conn,
                              const NetMessage& msg) {
  // A pipelined request while a long-poll is parked would interleave its
  // response with the eventual Deltas frame; answering the poll first
  // (with whatever is pending, possibly nothing) keeps the dialog a
  // strict one-response-per-request sequence. Parked fetches likewise.
  // An evicted poll (stale resume epoch) is never answered — AnswerPoll
  // closes the whole connection instead, and the new request dies with
  // it.
  if (conn.poll_parked) {
    AnswerPoll(conn);
    if (conn.closing) return;
  }
  if (conn.fetch_parked) AnswerFetch(conn);

  if (!conn.hello_done && msg.type != NetMessageType::kHello) {
    FailConnection(conn, Status::FailedPrecondition(
                             "the first frame must be Hello"));
    return;
  }
  switch (msg.type) {
    case NetMessageType::kHello:
      HandleHello(loop, conn, msg);
      return;
    case NetMessageType::kRegister: {
      const Result<QueryId> id = service_.Register(conn.session, msg.spec);
      std::string body;
      if (id.ok()) {
        EncodeRegisterAck(*id, &body);
      } else {
        EncodeError(id.status(), &body);
      }
      SendBody(conn, body);
      return;
    }
    case NetMessageType::kUnregister: {
      const Status st = service_.Unregister(conn.session, msg.query);
      std::string body;
      if (st.ok()) {
        EncodeUnregisterAck(&body);
      } else {
        EncodeError(st, &body);
      }
      SendBody(conn, body);
      return;
    }
    case NetMessageType::kSnapshot: {
      // Scoped to the connection's session, like Unregister: another
      // session's query ids draw the same NotFound as unknown ids, so
      // nothing about foreign queries leaks.
      const auto owner = service_.QueryOwner(msg.query);
      std::string body;
      if (!owner.ok() || *owner != conn.session) {
        EncodeError(Status::NotFound("no query " +
                                     std::to_string(msg.query) +
                                     " in this session"),
                    &body);
      } else if (const auto result = service_.CurrentResult(msg.query);
                 result.ok()) {
        // The as-of timestamp and staleness bound make follower reads
        // honest: a replica answers with how far it may lag the leader.
        const ReplicationInfo repl = service_.replication();
        EncodeSnapshotResult(*result, repl.applied_cycle_ts,
                             repl.StaleBy(), &body);
      } else {
        EncodeError(result.status(), &body);
      }
      SendBody(conn, body);
      return;
    }
    case NetMessageType::kRegisterBatch:
      HandleRegisterBatch(conn, msg);
      return;
    case NetMessageType::kReplFetch:
      HandleReplFetch(conn, msg);
      return;
    case NetMessageType::kPoll: {
      std::size_t max = msg.max_events == 0
                            ? options_.max_poll_events
                            : std::min<std::size_t>(msg.max_events,
                                                    options_.max_poll_events);
      // The as_of frontier must be sampled BEFORE draining the buffer:
      // a cycle completing between the drain and a later sample would
      // advance the frontier past events that are not in this answer,
      // and a delta multiplexer trusting it would merge prematurely.
      const Timestamp as_of = service_.replication().applied_cycle_ts;
      std::vector<DeltaEvent> events;
      service_.PollDeltas(conn.session, max, &events);
      if (!events.empty() || msg.timeout_ms == 0) {
        // Sampled after the drain: anything still buffered is an event
        // this answer could not carry, so the client's frontier must
        // not run ahead of the delivered tail. (Events arriving between
        // the drain and this probe flag a spurious truncation, which
        // only delays a multiplexer's merge by one poll — safe.)
        const bool truncated = service_.PendingDeltas(conn.session) > 0;
        std::string body;
        EncodeDeltas(events, as_of, truncated, &body);
        SendBody(conn, body);
        return;
      }
      const auto timeout = std::min<std::chrono::milliseconds>(
          std::chrono::milliseconds(msg.timeout_ms), options_.max_long_poll);
      conn.poll_parked = true;
      conn.poll_max = max;
      conn.poll_deadline = std::chrono::steady_clock::now() + timeout;
      conn.poll_epoch = ResumeEpoch(conn.session);
      return;
    }
    case NetMessageType::kStatus: {
      // Election probe (v5): role, fencing epoch, applied frontier and
      // the local journal end, so a candidate follower can compare how
      // caught-up its peers are without replaying anything.
      const ReplicationInfo repl = service_.replication();
      std::uint64_t segment = 0;
      std::uint64_t offset = 0;
      if (shipper_ != nullptr) {
        // Best effort: an unreadable journal dir answers (0, 0) rather
        // than failing the probe — the applied frontier still carries
        // the election.
        (void)shipper_->End(&segment, &offset);
      }
      std::string body;
      // The fenced latch rides along because `repl.role` alone lies
      // about a deposed leader: it still says kLeader after a higher
      // epoch fenced it. Probing followers must not adopt such a node.
      EncodeStatusInfo(static_cast<std::uint8_t>(repl.role),
                       repl.fencing_epoch, repl.applied_cycle_ts, segment,
                       offset, service_.IsFenced(), &body);
      SendBody(conn, body);
      return;
    }
    case NetMessageType::kClose: {
      if (msg.close_session && conn.session != 0) {
        service_.CloseSession(conn.session);
        ForgetResumeEpoch(conn.session);
      }
      std::string body;
      EncodeCloseAck(&body);
      SendBody(conn, body);
      conn.closing = true;
      return;
    }
    // Unreachable: post-handshake ingest frames are routed to
    // HandleIngest by DrainFrames before DecodeNetBody ever runs, and a
    // pre-handshake one already failed the Hello check above.
    case NetMessageType::kIngest:
    // Response types have no business arriving at the server.
    case NetMessageType::kWelcome:
    case NetMessageType::kIngestAck:
    case NetMessageType::kRegisterAck:
    case NetMessageType::kUnregisterAck:
    case NetMessageType::kSnapshotResult:
    case NetMessageType::kDeltas:
    case NetMessageType::kCloseAck:
    case NetMessageType::kError:
    case NetMessageType::kRegisterBatchAck:
    case NetMessageType::kReplChunk:
    case NetMessageType::kStatusInfo:
      break;
  }
  FailConnection(conn,
                 Status::InvalidArgument(
                     "message type " +
                     std::to_string(static_cast<int>(msg.type)) +
                     " is not a request"));
}

void TcpServer::HandleHello(PollLoop& loop, Connection& conn,
                            const NetMessage& msg) {
  (void)loop;
  if (conn.hello_done) {
    FailConnection(conn, Status::FailedPrecondition("duplicate Hello"));
    return;
  }
  if (msg.magic != kNetMagic) {
    FailConnection(conn,
                   Status::InvalidArgument("bad protocol magic — not a "
                                           "topkmon client"));
    return;
  }
  if (msg.version < kMinNetProtocolVersion ||
      msg.version > kNetProtocolVersion) {
    FailConnection(conn, Status::Unimplemented(
                             "protocol version " +
                             std::to_string(msg.version) +
                             " is not supported (server speaks versions " +
                             std::to_string(kMinNetProtocolVersion) + ".." +
                             std::to_string(kNetProtocolVersion) + ")"));
    return;
  }
  // Rolling-upgrade path: a v4 peer gets v4-shaped replies (no trailing
  // fencing epochs) for the life of this connection.
  conn.wire_version = msg.version;
  SessionId session = 0;
  bool resumed = false;
  if (msg.resume) {
    const Result<SessionId> adopted = service_.FindSession(msg.label);
    if (adopted.ok()) {
      session = *adopted;
      resumed = true;
    }
  }
  if (session == 0) {
    Result<SessionId> opened = service_.OpenSession(msg.label);
    if (!opened.ok()) {
      FailConnection(conn, opened.status());
      return;
    }
    session = *opened;
  }
  if (resumed) {
    // Evict any other connection holding a *parked long-poll* on this
    // session — e.g. a half-open predecessor that died without a FIN.
    // Left alone, that poll would keep consuming the session's delta
    // events into a socket buffer nobody reads, and the resumed client
    // would see a sequence gap the drop counters can't explain. The
    // eviction is epoch-based so it works across loops without touching
    // another loop's connections: the epoch is bumped *before* this
    // Welcome is queued, every loop refuses to answer a parked poll
    // whose recorded epoch is stale, and each stale holder is failed by
    // its own loop at its next tick (the WakeAll makes that prompt).
    // Connections sharing the session *without* an outstanding poll (a
    // producer feeding it, say) are deliberately left alone.
    BumpResumeEpoch(session);
    WakeAll();
  }
  conn.session = session;
  conn.hello_done = true;
  std::string body;
  EncodeWelcome(session, resumed,
                static_cast<std::uint8_t>(service_.role()),
                options_.server_tag, service_.fencing_epoch(),
                conn.wire_version, &body);
  SendBody(conn, body);
}

void TcpServer::HandleRegisterBatch(Connection& conn,
                                    const NetMessage& msg) {
  // Per-query outcomes, not a transaction: each spec is admitted
  // independently, exactly as if it had arrived in its own Register.
  std::vector<RegisterOutcome> outcomes;
  outcomes.reserve(msg.specs.size());
  for (const QuerySpec& spec : msg.specs) {
    RegisterOutcome o;
    const Result<QueryId> id = service_.Register(conn.session, spec);
    if (id.ok()) {
      o.query = *id;
    } else {
      o.code = id.status().code();
      o.message = id.status().message();
    }
    outcomes.push_back(std::move(o));
  }
  std::string body;
  EncodeRegisterBatchAck(outcomes, &body);
  SendBody(conn, body);
}

void TcpServer::HandleReplFetch(Connection& conn, const NetMessage& msg) {
  // A follower pulling journal bytes IS the leader's lease renewal —
  // no separate heartbeat message exists. Renewed on arrival, not on
  // answer: a parked empty fetch still proves the follower is alive.
  service_.NoteFollowerContact();
  if (service_.IsFenced()) {
    // A deposed leader must not keep feeding a follower whose pump
    // would otherwise never stall: the refusal makes the follower's
    // fetches fail, its election timer fires, and it finds the real
    // leader. Serving stale journal here would pin the follower to a
    // node whose epoch has already lost.
    std::string body;
    EncodeError(Status::Fenced("leader fenced by a higher epoch; "
                               "re-resolve the leader"),
                &body);
    SendBody(conn, body);
    return;
  }
  if (shipper_ == nullptr) {
    std::string body;
    EncodeError(Status::FailedPrecondition(
                    "this server does not journal; nothing to replicate"),
                &body);
    SendBody(conn, body);
    return;
  }
  const std::uint64_t progress = service_.JournalProgress();
  const std::uint32_t max_bytes =
      std::min<std::uint32_t>(msg.max_bytes == 0 ? kMaxReplChunkBytes
                                                 : msg.max_bytes,
                              kMaxReplChunkBytes);
  auto chunk = shipper_->Read(msg.segment, msg.offset, max_bytes);
  if (!chunk.ok()) {
    std::string body;
    EncodeError(chunk.status(), &body);
    SendBody(conn, body);
    return;
  }
  if (chunk->data.empty() && !chunk->sealed && !chunk->restart &&
      msg.timeout_ms > 0) {
    // Nothing new: park like a long-poll, wake on journal growth.
    const auto timeout = std::min<std::chrono::milliseconds>(
        std::chrono::milliseconds(msg.timeout_ms), options_.max_long_poll);
    conn.fetch_parked = true;
    conn.fetch_segment = msg.segment;
    conn.fetch_offset = msg.offset;
    conn.fetch_max_bytes = max_bytes;
    conn.fetch_progress = progress;
    conn.fetch_deadline = std::chrono::steady_clock::now() + timeout;
    return;
  }
  std::string body;
  EncodeReplChunk(chunk->segment, chunk->offset, chunk->sealed,
                  chunk->restart, chunk->next_segment,
                  service_.replication().applied_cycle_ts, chunk->data,
                  service_.fencing_epoch(), conn.wire_version, &body);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.repl_chunks_sent;
    stats_.repl_bytes_shipped += chunk->data.size();
  }
  SendBody(conn, body);
}

void TcpServer::AnswerFetch(Connection& conn) {
  conn.fetch_parked = false;
  std::string body;
  if (service_.IsFenced()) {
    // Fenced while this fetch was parked — same refusal as the
    // immediate path in HandleReplFetch.
    EncodeError(Status::Fenced("leader fenced by a higher epoch; "
                               "re-resolve the leader"),
                &body);
    SendBody(conn, body);
    return;
  }
  auto chunk =
      shipper_->Read(conn.fetch_segment, conn.fetch_offset,
                     conn.fetch_max_bytes);
  if (!chunk.ok()) {
    EncodeError(chunk.status(), &body);
  } else {
    EncodeReplChunk(chunk->segment, chunk->offset, chunk->sealed,
                    chunk->restart, chunk->next_segment,
                    service_.replication().applied_cycle_ts, chunk->data,
                    service_.fencing_epoch(), conn.wire_version, &body);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.repl_chunks_sent;
    stats_.repl_bytes_shipped += chunk->data.size();
  }
  SendBody(conn, body);
}

void TcpServer::HandleIngest(Connection& conn, const char* body,
                             std::size_t body_len) {
  // Same parked-request discipline as HandleMessage: a pipelined ingest
  // while a long-poll is parked answers the poll first, keeping the
  // dialog a strict one-response-per-request sequence.
  if (conn.poll_parked) {
    AnswerPoll(conn);
    if (conn.closing) return;
  }
  if (conn.fetch_parked) AnswerFetch(conn);

  RecordArena& arena = service_.ingest_arena();
  IngestFrameView view;
  const Status decode = DecodeIngestBodyToArena(
      body, body_len, service_.dim(), arena, &view);
  if (!decode.ok()) {
    FailConnection(conn, decode);
    return;
  }

  std::uint32_t accepted = 0;
  std::uint32_t rejected = 0;
  std::uint64_t backpressured = 0;
  Status first_error;
  // Walk the frame in record order, admitting each maximal run of valid
  // records in one batch call and interleaving the decode-time refusals
  // where they sit, so counts and first_error come out exactly as the
  // per-record path produced them.
  std::size_t i = 0;
  std::size_t inv = 0;
  while (i < view.count) {
    if (inv < view.invalid.size() && view.invalid[inv] == i) {
      ++rejected;
      if (first_error.ok()) first_error = view.first_invalid;
      arena.Release(view.records + i, 1);
      ++inv;
      ++i;
      continue;
    }
    const std::size_t end =
        inv < view.invalid.size() ? view.invalid[inv] : view.count;
    const std::size_t run = end - i;
    // Non-blocking admission: a full ingest queue must never stall this
    // poll loop (every other connection on it would stall too). The
    // refusal is RESOURCE_EXHAUSTED and the ack's queue_hint tells the
    // producer to self-pace; rate-limit refusals stay per-record.
    Status err;
    const std::size_t pushed =
        service_.TryIngestBatch(conn.session, view.records + i, run, &err);
    accepted += static_cast<std::uint32_t>(pushed);
    if (pushed == run) {
      i = end;
      continue;
    }
    if (first_error.ok()) first_error = err;
    if (err.code() == StatusCode::kResourceExhausted) {
      // The queue filled mid-batch: everything later in the frame would
      // bounce off the same wall (admission is in arrival order), so
      // hand the whole unadmitted tail back and report it rejected
      // wholesale.
      const std::size_t remaining = view.count - (i + pushed);
      rejected += static_cast<std::uint32_t>(remaining);
      backpressured += remaining;
      arena.Release(view.records + i + pushed, remaining);
      i = view.count;
      break;
    }
    // Rate-limit / closed / follower / fenced refusal: this run's
    // remainder is refused, later records are still examined (a later
    // invalid record must draw its own validation rejection).
    rejected += static_cast<std::uint32_t>(run - pushed);
    arena.Release(view.records + i + pushed, run - pushed);
    i = end;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.records_ingested += accepted;
    stats_.records_backpressured += backpressured;
  }
  std::string ack;
  EncodeIngestAck(accepted, rejected, first_error,
                  service_.IngestPressure(), service_.fencing_epoch(),
                  conn.wire_version, &ack);
  SendBody(conn, ack);
}

void TcpServer::AnswerPoll(Connection& conn) {
  // The epoch re-check and the delta consumption are one critical
  // section with BumpResumeEpoch: once a resuming Hello has bumped the
  // epoch (which it does before its Welcome is queued), no stale
  // parked poll can reach PollDeltas — checking outside the lock would
  // leave a window where a concurrent resume loses buffered events to
  // the dead predecessor.
  std::vector<DeltaEvent> events;
  bool evicted = false;
  // Sampled before the drain — see the kPoll immediate path.
  const Timestamp as_of = service_.replication().applied_cycle_ts;
  {
    std::lock_guard<std::mutex> lock(resume_mu_);
    const auto it = resume_epoch_.find(conn.session);
    const std::uint64_t epoch =
        it == resume_epoch_.end() ? 0 : it->second;
    if (epoch != conn.poll_epoch) {
      evicted = true;
    } else {
      service_.PollDeltas(conn.session, conn.poll_max, &events);
    }
  }
  conn.poll_parked = false;
  if (evicted) {
    EvictConnection(conn);
    return;
  }
  // Post-drain probe — see the kPoll immediate path for why a spurious
  // true (a racing publish) is safe.
  const bool truncated = service_.PendingDeltas(conn.session) > 0;
  std::string body;
  EncodeDeltas(events, as_of, truncated, &body);
  SendBody(conn, body);
}

void TcpServer::EvictConnection(Connection& conn) {
  // Not a protocol violation (the peer did nothing wrong — a newer
  // connection adopted its session), so stats().protocol_errors stays
  // untouched, unlike FailConnection.
  conn.poll_parked = false;
  conn.fetch_parked = false;
  std::string body;
  EncodeError(Status::FailedPrecondition(
                  "session was resumed by a new connection"),
              &body);
  SendBody(conn, body);
  conn.closing = true;
}

void TcpServer::SendBody(Connection& conn, const std::string& body) {
  EncodeNetFrame(body, &conn.out);
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.frames_sent;
}

void TcpServer::FailConnection(Connection& conn, const Status& status) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.protocol_errors;
  }
  if (conn.poll_parked) conn.poll_parked = false;
  if (conn.fetch_parked) conn.fetch_parked = false;
  std::string body;
  EncodeError(status, &body);
  SendBody(conn, body);
  conn.closing = true;
}

bool TcpServer::WriteReady(Connection& conn) {
  while (!conn.out.empty()) {
    const ssize_t n = ::send(conn.fd, conn.out.data(), conn.out.size(),
                             MSG_NOSIGNAL);
    if (n > 0) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.bytes_sent += static_cast<std::uint64_t>(n);
      }
      conn.out.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;
  }
  return true;
}

void TcpServer::CloseConnection(PollLoop& loop,
                                std::list<Connection>::iterator it) {
  ::close(it->fd);
  loop.connections.erase(it);
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.connections_closed;
  --stats_.open_connections;
}

std::uint64_t TcpServer::ResumeEpoch(SessionId session) const {
  std::lock_guard<std::mutex> lock(resume_mu_);
  const auto it = resume_epoch_.find(session);
  return it == resume_epoch_.end() ? 0 : it->second;
}

void TcpServer::BumpResumeEpoch(SessionId session) {
  std::lock_guard<std::mutex> lock(resume_mu_);
  ++resume_epoch_[session];
}

void TcpServer::ForgetResumeEpoch(SessionId session) {
  std::lock_guard<std::mutex> lock(resume_mu_);
  resume_epoch_.erase(session);
}

}  // namespace topkmon
