// Wire format of the binary TCP protocol in front of MonitorService.
//
// The protocol is a framed request/response dialog designed for batched
// ingest from day one: the ingest message reuses the journal's
// delta-compressed record-span encoding (src/journal/wire.h), so a batch
// of stream tuples costs ~2 + 8·dim bytes per tuple on the wire — the
// same bytes the server would journal. The byte-level layout is
// specified in docs/PROTOCOL.md, kept in lockstep with this header by CI
// (tools/check_docs.py fails when kNetProtocolVersion diverges).
//
// Layout summary (all integers little-endian, fixed width):
//   frame := body_len:u32 crc32c(body):u32 body
//   body  := type:u8 payload
// Each direction of a connection is a plain stream of frames; there is
// no stream-level header. Versioning rides in the Hello/Welcome exchange
// that must open every connection: the client's Hello carries a protocol
// magic + version, the server's Welcome answers with the session it
// bound. After the handshake the client sends one request frame at a
// time and reads exactly one response frame per request (the long-poll
// request blocks server-side until deltas arrive or the poll times out).
//
// Session model: Hello carries a client-chosen label. With the resume
// flag set, the server first tries to adopt the oldest open session with
// that label (MonitorService::FindSession) — the same label adoption the
// journal recovery path uses — so a reconnecting client keeps its
// session's queries and its gap-free, sequence-numbered delta buffer.
// Connections do NOT close their session on disconnect (that is what
// makes resume work); an explicit Close request with the close-session
// flag releases it.

#ifndef TOPKMON_NET_PROTOCOL_H_
#define TOPKMON_NET_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/record.h"
#include "common/status.h"
#include "core/query.h"
#include "service/subscription_hub.h"
#include "stream/record_arena.h"

namespace topkmon {

/// First four bytes of every Hello payload: "TKMP" in wire order.
inline constexpr std::uint32_t kNetMagic = 0x504D4B54u;

/// Version of the message encodings below. Bump on any incompatible
/// layout change and document the migration in docs/PROTOCOL.md (CI
/// checks that the spec's version matches this constant).
///
/// v2: Welcome carries the server's role (leader/follower), SnapshotResult
/// carries the as-of cycle timestamp and a staleness bound, and the
/// replication (ReplFetch/ReplChunk) and batched-registration
/// (RegisterBatch/RegisterBatchAck) messages were added — see
/// docs/REPLICATION.md.
///
/// v3: IngestAck carries a trailing queue_hint byte — the server's
/// backpressure signal (0 healthy, 1..255 = ingest-queue fullness past
/// the high-water mark) — and the RESOURCE_EXHAUSTED status code (wire
/// value 8) was added for queue-full refusals, which no longer block
/// the server's poll loop. See docs/OPERATIONS.md for producer pacing.
///
/// v4 (the cluster tier, docs/CLUSTER.md): Welcome carries a trailing
/// server_tag (the operator-assigned partition index, kNoServerTag when
/// unset) so a router can verify it dialed the partition it meant;
/// Deltas carries a leading as_of timestamp — the answering engine's
/// applied-cycle frontier sampled BEFORE the delta buffer was drained —
/// plus a truncated flag (events remained buffered after the answer was
/// cut at the poll's cap), which together are what let a delta
/// multiplexer merge N per-partition streams without gaps without
/// guessing the server's cap; the UNAVAILABLE status code (wire value
/// 9) was added
/// for requests routed to an unreachable partition; and the piecewise
/// scoring-function family (wire tag 4) became encodable in
/// Register/RegisterBatch specs.
///
/// v5 (automatic failover, docs/REPLICATION.md): Welcome, IngestAck and
/// ReplChunk carry a trailing fencing_epoch (u64) — the monotone lease
/// epoch of the answering server's replication group — so clients and
/// the cluster router can detect a deposed leader the moment it answers;
/// the FENCED status code (wire value 10) was added for writes refused
/// by a server whose lease lapsed or that observed a higher epoch; and
/// the Status/StatusInfo message pair (types 20/21) was added so
/// followers can poll each other's role, epoch, fenced latch and
/// applied-journal position during a leader election.
///
/// v4 compatibility (rolling upgrades): the trailing fencing_epoch is
/// the ONLY layout difference between v4 and v5 bodies, so the decoder
/// accepts those three messages with the field absent (defaulting to
/// epoch 0) and the server accepts Hello version 4, answering that
/// connection with v4-shaped bodies (encoders take the negotiated
/// wire_version). Upgrade a replication group leader-first: a v5 leader
/// serves v4 followers until each is restarted on v5.
inline constexpr std::uint32_t kNetProtocolVersion = 5;

/// Oldest protocol version a v5 server still speaks (see above).
inline constexpr std::uint32_t kMinNetProtocolVersion = 4;

/// Welcome server_tag value meaning "no tag configured" (a standalone,
/// un-clustered server).
inline constexpr std::uint32_t kNoServerTag = 0xFFFFFFFFu;

/// Bytes of a frame prologue (body_len + crc32c).
inline constexpr std::size_t kNetFrameHeaderBytes = 8;

/// Upper bound on one frame body; a length prefix beyond this is treated
/// as a protocol violation rather than an allocation request.
inline constexpr std::uint32_t kMaxNetFrameBytes = 1u << 24;

/// Admissible arrival-timestamp range for wire ingest. Timestamps are
/// client-supplied, and the service's reordering frontier is shared
/// state: an absurd arrival (say INT64_MAX) would drag the frontier
/// forward for *every* session and overflow slack arithmetic. The
/// server rejects out-of-range tuples per record (OutOfRange in the
/// IngestAck) instead of admitting them.
inline constexpr Timestamp kMaxWireArrival = Timestamp{1} << 62;

/// Frame body type tags. Odd half: client -> server requests; the server
/// answers every request with exactly one response frame (the matching
/// ack type, or kError).
enum class NetMessageType : std::uint8_t {
  kHello = 1,         ///< open/resume a session (magic, version, label)
  kWelcome = 2,       ///< session bound (id, resumed flag)
  kIngest = 3,        ///< batched tuples (record-span encoded)
  kIngestAck = 4,     ///< per-batch accept/reject counts + first error
  kRegister = 5,      ///< register a continuous query (spec, id ignored)
  kRegisterAck = 6,   ///< the service-assigned query id
  kUnregister = 7,    ///< terminate a query
  kUnregisterAck = 8,
  kSnapshot = 9,      ///< read a query's current top-k
  kSnapshotResult = 10,
  kPoll = 11,         ///< long-poll the session's delta subscription
  kDeltas = 12,       ///< sequence-numbered delta events (may be empty)
  kClose = 13,        ///< end the dialog (optionally closing the session)
  kCloseAck = 14,
  kError = 15,        ///< request failed: status code + message
  kRegisterBatch = 16,     ///< register N queries in one frame
  kRegisterBatchAck = 17,  ///< per-query outcome (status + assigned id)
  kReplFetch = 18,    ///< replication: journal bytes at (segment, offset)
  kReplChunk = 19,    ///< raw journal bytes + shipping metadata
  kStatus = 20,       ///< v5: poll the server's role/epoch/progress
  kStatusInfo = 21,   ///< v5: role, fencing epoch, applied frontier,
                      ///< journal write position
};

/// Maximum queries in one RegisterBatch (bounds the work a single frame
/// can demand of the control plane).
inline constexpr std::uint32_t kMaxRegisterBatch = 1024;

/// Server-side clamp on bytes returned per ReplChunk.
inline constexpr std::uint32_t kMaxReplChunkBytes = 1u << 20;

/// One query's outcome inside a RegisterBatchAck.
struct RegisterOutcome {
  StatusCode code = StatusCode::kOk;
  QueryId query = 0;    ///< service-assigned id; valid iff code == kOk
  std::string message;  ///< refusal detail; empty on success
};

/// One decoded protocol message (tagged by `type`; only the members of
/// the matching message are meaningful — mirrors JournalRecord).
struct NetMessage {
  NetMessageType type = NetMessageType::kError;

  // kHello
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  bool resume = false;
  std::string label;

  // kWelcome
  SessionId session = 0;
  bool resumed = false;
  std::uint8_t role = 0;  ///< 0 leader, 1 read-only follower
  /// v4: operator-assigned identity of the answering server (the cluster
  /// partition index); kNoServerTag on a standalone server.
  std::uint32_t server_tag = kNoServerTag;

  // kIngest (record ids are a synthetic 0..n-1 ramp — the service
  // assigns real ids at admission; arrivals must be non-decreasing).
  std::vector<Record> tuples;

  // kIngestAck
  std::uint32_t accepted = 0;
  std::uint32_t rejected = 0;
  /// Backpressure hint (v3): 0 while the server's ingest queue is below
  /// its high-water mark, else fullness scaled into 1..255. Producers
  /// should self-pace when it rises (see docs/OPERATIONS.md).
  std::uint8_t queue_hint = 0;

  // kIngestAck (first rejection) and kError.
  StatusCode code = StatusCode::kOk;
  std::string message;

  // kRegister
  QuerySpec spec;

  // kRegisterAck / kUnregister / kSnapshot
  QueryId query = 0;

  // kSnapshotResult and kDeltas (v4). as_of is the timestamp of the last
  // cycle applied to the answering engine — for kDeltas, sampled before
  // the delta buffer was drained, so every event up to that frontier is
  // either in this answer or was delivered earlier; stale_by bounds how
  // far the engine lags the leader (always 0 from a leader).
  std::vector<ResultEntry> entries;
  Timestamp as_of = 0;
  Timestamp stale_by = 0;

  // kPoll
  std::uint32_t max_events = 0;
  std::uint32_t timeout_ms = 0;

  // kDeltas
  std::vector<DeltaEvent> events;
  /// v4: the answer was cut at the poll's effective cap with events
  /// still buffered server-side — the frontier must not advance past
  /// the last delivered event (see DeltaMultiplexer).
  bool truncated = false;

  // kClose
  bool close_session = false;

  // kRegisterBatch / kRegisterBatchAck
  std::vector<QuerySpec> specs;
  std::vector<RegisterOutcome> outcomes;

  // kReplFetch (segment/offset name the next unshipped journal byte;
  // max_bytes caps the reply; timeout_ms is the long-poll wait when the
  // journal has nothing new) and kReplChunk (raw journal-file bytes of
  // `segment` starting at `offset`; `sealed` marks the segment complete
  // with `next_segment` following it; `restart` means the requested
  // segment is gone — wipe and re-ship from `next_segment`;
  // leader_cycle_ts is the leader's apply progress for lag accounting).
  std::uint64_t segment = 0;
  std::uint64_t offset = 0;
  std::uint32_t max_bytes = 0;
  bool sealed = false;
  bool restart = false;
  std::uint64_t next_segment = 0;
  Timestamp leader_cycle_ts = 0;
  std::string data;

  // kWelcome / kIngestAck / kReplChunk / kStatusInfo (v5): the fencing
  // epoch of the answering server's replication group. Monotone across
  // failovers; a client that has seen epoch E treats any server
  // answering with a lower epoch as deposed. 0 on servers that never
  // enabled leases — and on v4 peers, whose bodies simply end before
  // the field (the decoder accepts both shapes).
  std::uint64_t fencing_epoch = 0;

  // kStatusInfo (v5) additionally reuses `role` (0 leader, 1 follower),
  // `as_of` (the applied-cycle frontier) and `segment`/`offset` (the
  // journal write position: on a leader the next unwritten byte, on a
  // follower the next unapplied shipped byte) — the election inputs.
  /// kStatusInfo (v5): the answering server's fenced latch. A fenced
  /// leader still reports role 0 (it never demotes in place), so this
  /// is what lets electing followers and the cluster router skip a
  /// deposed leader instead of adopting it.
  bool fenced = false;
};

// ---- status codes on the wire -----------------------------------------

/// Stable wire value of a StatusCode (the enum's numeric values are an
/// internal detail; the wire contract is pinned here and in the spec).
std::uint8_t NetEncodeStatusCode(StatusCode code);

/// Inverse of NetEncodeStatusCode; unknown values map to kInternal.
StatusCode NetDecodeStatusCode(std::uint8_t wire);

// ---- encoding (append one message body to *out) -----------------------

void EncodeHello(bool resume, const std::string& label, std::string* out);
/// `wire_version` is the version negotiated in the Hello/Welcome
/// exchange (the server echoes the client's accepted version): bodies
/// encoded for a v4 peer omit the trailing fencing_epoch.
void EncodeWelcome(SessionId session, bool resumed, std::uint8_t role,
                   std::uint32_t server_tag, std::uint64_t fencing_epoch,
                   std::uint32_t wire_version, std::string* out);
/// Requires tuples non-empty with uniform dimensionality, strictly
/// increasing ids and non-decreasing arrivals (use a 0..n-1 id ramp over
/// an arrival-sorted batch — see MonitorClient::Ingest).
void EncodeIngest(const std::vector<Record>& tuples, std::string* out);
void EncodeIngestAck(std::uint32_t accepted, std::uint32_t rejected,
                     const Status& first_error, std::uint8_t queue_hint,
                     std::uint64_t fencing_epoch,
                     std::uint32_t wire_version, std::string* out);
/// Fails with Unimplemented for scoring-function families without a wire
/// encoding; *out is unchanged on failure.
Status EncodeRegister(const QuerySpec& spec, std::string* out);
void EncodeRegisterAck(QueryId query, std::string* out);
void EncodeUnregister(QueryId query, std::string* out);
void EncodeUnregisterAck(std::string* out);
void EncodeSnapshotRequest(QueryId query, std::string* out);
void EncodeSnapshotResult(const std::vector<ResultEntry>& entries,
                          Timestamp as_of, Timestamp stale_by,
                          std::string* out);
void EncodePoll(std::uint32_t max_events, std::uint32_t timeout_ms,
                std::string* out);
/// `as_of` must be sampled from the answering engine BEFORE the events
/// were drained from the subscription buffer (see the NetMessage field
/// comment — the ordering is what makes the frontier trustworthy).
/// `truncated` must be true when events remained buffered after the
/// drain (the answer hit the poll's effective cap).
void EncodeDeltas(const std::vector<DeltaEvent>& events, Timestamp as_of,
                  bool truncated, std::string* out);
void EncodeClose(bool close_session, std::string* out);
void EncodeCloseAck(std::string* out);
void EncodeError(const Status& status, std::string* out);
/// Fails with Unimplemented when any spec's scoring function has no wire
/// encoding, or InvalidArgument on an empty/oversized batch; *out is
/// unchanged on failure.
Status EncodeRegisterBatch(const std::vector<QuerySpec>& specs,
                           std::string* out);
void EncodeRegisterBatchAck(const std::vector<RegisterOutcome>& outcomes,
                            std::string* out);
void EncodeReplFetch(std::uint64_t segment, std::uint64_t offset,
                     std::uint32_t max_bytes, std::uint32_t wait_ms,
                     std::string* out);
void EncodeReplChunk(std::uint64_t segment, std::uint64_t offset,
                     bool sealed, bool restart, std::uint64_t next_segment,
                     Timestamp leader_cycle_ts, const std::string& data,
                     std::uint64_t fencing_epoch,
                     std::uint32_t wire_version, std::string* out);
void EncodeStatusRequest(std::string* out);
void EncodeStatusInfo(std::uint8_t role, std::uint64_t fencing_epoch,
                      Timestamp applied_cycle_ts, std::uint64_t segment,
                      std::uint64_t offset, bool fenced, std::string* out);

/// Wraps a message body in a frame (length prefix + CRC-32C + body).
void EncodeNetFrame(const std::string& body, std::string* out);

// ---- decoding ---------------------------------------------------------

/// Decodes one frame body into *out. InvalidArgument on any malformed
/// content; the frame CRC already vouched for bit-level integrity, so a
/// decode failure is a peer speaking a different dialect, not line noise.
Status DecodeNetBody(const char* data, std::size_t n, NetMessage* out);

/// The message type tag of a frame body (its first byte), or kError for
/// an empty body. Lets the server route kIngest frames to the zero-copy
/// decoder without a full DecodeNetBody pass.
inline NetMessageType PeekNetMessageType(const char* data, std::size_t n) {
  if (n == 0) return NetMessageType::kError;
  return static_cast<NetMessageType>(static_cast<std::uint8_t>(data[0]));
}

/// One ingest frame decoded straight into a RecordArena (the zero-copy
/// hot path). `records[0..count)` live in the arena the decoder was
/// given; ownership is the caller's until every record is handed to
/// IngestQueue::PushBatch (which releases admitted storage after cycle
/// publish) or released back explicitly. Validation happens exactly
/// once, here at the frame boundary: dimensionality + unit-space
/// containment (ValidatePoint) and the wire arrival range. Indices of
/// records failing it are listed in `invalid` (ascending; normally
/// empty, so no allocation) with the first refusal in `first_invalid`.
struct IngestFrameView {
  Record* records = nullptr;
  std::size_t count = 0;
  std::vector<std::uint32_t> invalid;
  Status first_invalid;
};

/// Decodes a kIngest body into `arena` (see IngestFrameView). A
/// malformed body returns InvalidArgument with every allocation already
/// released — hostile bytes cannot leak arena storage. `dim` is the
/// engine dimensionality records are validated against.
Status DecodeIngestBodyToArena(const char* data, std::size_t n, int dim,
                               RecordArena& arena, IngestFrameView* out);

/// Outcome of scanning a receive buffer for one complete frame.
enum class FrameParse {
  kNeedMore,  ///< prefix of a valid frame; read more bytes
  kFrame,     ///< a complete, CRC-verified frame was extracted
  kBad,       ///< protocol violation (oversized length or CRC mismatch)
};

/// Tries to extract one frame from `data[0..n)`. On kFrame, *body /
/// *body_len reference the frame body inside `data` and *consumed is the
/// total frame size to discard. On kBad, *error describes the violation
/// (the connection should be failed: after a framing error the stream
/// can never be re-synchronized). `max_body` bounds the accepted body
/// length (pass kMaxNetFrameBytes).
FrameParse TryParseNetFrame(const char* data, std::size_t n,
                            std::size_t max_body, const char** body,
                            std::size_t* body_len, std::size_t* consumed,
                            Status* error);

}  // namespace topkmon

#endif  // TOPKMON_NET_PROTOCOL_H_
