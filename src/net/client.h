// Blocking C++ client for the topkmon binary TCP protocol.
//
// One MonitorClient is one connection plus the session the Hello
// handshake bound it to. The API mirrors the slice of MonitorService a
// remote client is allowed to drive — batched ingest, query
// registration, snapshot reads and long-polled delta subscriptions —
// with every call a strict send-one-frame / read-one-frame round trip
// (an Error response decodes back into the Status the service returned,
// so remote calls fail with the same codes local ones do).
//
// Reconnect/resume: a client constructed with resume=true adopts the
// oldest open session with its label, whose subscription buffer kept
// accumulating sequence-numbered deltas while the client was away —
// polling simply continues where the previous connection stopped, with
// the sequence numbers proving the stream is gap-free (last_seq() is
// maintained across calls for exactly that check).
//
// Thread model: a MonitorClient is NOT thread-safe; use one per thread
// (connections are cheap, and the server multiplexes them all onto one
// poll loop). Blocking reads carry a socket receive timeout
// (NetClientOptions::io_timeout, applied on top of any long-poll
// timeout) so a dead server surfaces as an error, not a hang.

#ifndef TOPKMON_NET_CLIENT_H_
#define TOPKMON_NET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "replica/shipper.h"
#include "service/subscription_hub.h"

namespace topkmon {

struct NetClientOptions {
  /// Per-read *and* per-send socket timeout beyond which the connection
  /// is declared dead (and poisoned — no call can desync the dialog
  /// afterwards). Long polls extend the read side by their own timeout
  /// automatically.
  std::chrono::milliseconds io_timeout{30000};
};

class MonitorClient {
 public:
  /// Connects, performs the Hello/Welcome handshake, and returns a
  /// client bound to a session. With resume=true an existing session
  /// with this label is adopted if the server has one (resumed() tells
  /// which happened).
  static Result<std::unique_ptr<MonitorClient>> Connect(
      const std::string& host, std::uint16_t port, const std::string& label,
      bool resume = true, const NetClientOptions& options = {});

  /// Closes the socket. The session stays open server-side (resume
  /// depends on it); call Close(true) first to release it explicitly.
  ~MonitorClient();

  MonitorClient(const MonitorClient&) = delete;
  MonitorClient& operator=(const MonitorClient&) = delete;

  SessionId session() const { return session_; }
  bool resumed() const { return resumed_; }
  /// True when the Welcome announced a read-only replication follower
  /// (writes will be refused with a redirect-to-leader status).
  bool server_is_follower() const { return server_role_ == 1; }
  /// The server's operator-assigned identity from the Welcome (v4): the
  /// cluster partition index, or kNoServerTag on a standalone server.
  /// The cluster router checks this against its partition map before
  /// trusting a connection.
  std::uint32_t server_tag() const { return server_tag_; }

  /// Highest fencing epoch this client has observed (v5) — carried on
  /// Welcome, IngestAck, ReplChunk and StatusInfo. A jump above the
  /// epoch a leader connection was established at means that leader has
  /// been deposed; routers re-resolve on the FENCED refusal itself, but
  /// this accessor lets them compare candidate leaders by term.
  std::uint64_t fencing_epoch() const { return fencing_epoch_; }

  /// False once a transport error (send/recv failure, timeout, framing
  /// error) has poisoned the connection — every later call fails until
  /// the caller re-Connects. Lets the cluster router tell a dead
  /// partition apart from an ordinary service refusal, which leaves the
  /// connection healthy.
  bool connected() const { return fd_ >= 0; }

  /// Per-batch ingest outcome. A batch is not transactional: tuples are
  /// admitted individually, so some may be accepted and others refused
  /// (rate limit, validation); first_error carries the first refusal.
  struct IngestAck {
    std::uint32_t accepted = 0;
    std::uint32_t rejected = 0;
    Status first_error;
    /// Server backpressure hint (protocol v3): 0 while the server's
    /// ingest queue is healthy, else its fullness scaled into 1..255.
    /// Producers should self-pace as it rises; a RESOURCE_EXHAUSTED
    /// first_error means the queue filled mid-batch — tuples are
    /// admitted in arrival order, so when every rejection in the ack is
    /// that refusal, the accepted tuples are exactly the sorted batch's
    /// prefix and the producer retries the suffix after backing off.
    std::uint8_t queue_hint = 0;
  };

  /// Ships one batch of (position, arrival) tuples. Record ids in
  /// `tuples` are ignored: the batch is stably sorted by arrival and
  /// re-identified with the 0..n-1 ramp the span encoding needs; the
  /// service assigns real record ids at admission. An empty batch is a
  /// no-op Ok.
  Result<IngestAck> Ingest(std::vector<Record> tuples);

  /// Registers a continuous query (spec.id is ignored) and returns the
  /// service-assigned id. Deltas for it flow into this session's
  /// subscription, starting with the initial result.
  Result<QueryId> Register(const QuerySpec& spec);

  Status Unregister(QueryId query);

  /// Registers several queries in one frame (one round trip instead of
  /// N) — how a batch of subscriptions is (re-)announced cheaply, e.g.
  /// after failing over to a promoted follower. Outcomes are per query:
  /// a refused spec does not fail its siblings.
  Result<std::vector<RegisterOutcome>> RegisterBatch(
      const std::vector<QuerySpec>& specs);

  /// Snapshot read of a query's current top-k. `snapshot_as_of()` /
  /// `snapshot_stale_by()` report the freshness of the last snapshot: a
  /// follower answers with the timestamp of its last applied cycle and a
  /// bound on how far that lags the leader (a leader reports 0 lag).
  Result<std::vector<ResultEntry>> CurrentResult(QueryId query);
  Timestamp snapshot_as_of() const { return snapshot_as_of_; }
  Timestamp snapshot_stale_by() const { return snapshot_stale_by_; }

  /// Replication fetch (follower internals; see docs/REPLICATION.md):
  /// raw journal bytes of `segment` from `offset`. Blocks server-side up
  /// to `wait` when the journal has nothing new. max_bytes==0 lets the
  /// server pick its cap.
  Result<ShipChunk> ReplFetch(std::uint64_t segment, std::uint64_t offset,
                              std::uint32_t max_bytes,
                              std::chrono::milliseconds wait);

  /// The leader's last applied cycle timestamp as of the last ReplFetch
  /// answer — the follower's staleness reference.
  Timestamp leader_cycle_ts() const { return leader_cycle_ts_; }

  /// One Status/StatusInfo probe answer (v5): the peer's role, fencing
  /// epoch, applied cycle frontier, and local journal end. Electing
  /// followers rank each other on (applied_cycle_ts, journal position);
  /// operators use it as a cheap liveness/role check.
  struct ServerStatus {
    std::uint8_t role = 0;  ///< 0 = leader, 1 = follower
    std::uint64_t fencing_epoch = 0;
    Timestamp applied_cycle_ts = 0;
    std::uint64_t journal_segment = 0;
    std::uint64_t journal_offset = 0;
    /// A deposed leader still reports role 0; this latch is the truth.
    /// Fenced peers must not be adopted as leaders or routed writes.
    bool fenced = false;
  };

  /// Probes the server's replication status (v5). Cheap and read-only:
  /// safe to call in election loops at sub-second cadence.
  Result<ServerStatus> GetStatus();

  /// Read-your-writes wait (v5): polls `query`'s snapshot until the
  /// server's as-of frontier reaches `target` (e.g. the leader frontier
  /// another client observed after its write) or `timeout` passes
  /// (DEADLINE_EXCEEDED). On Ok, the last CurrentResult this client
  /// issues here — and every later one against the same server — is
  /// guaranteed to reflect all cycles up to `target`.
  Status WaitForAsOf(QueryId query, Timestamp target,
                     std::chrono::milliseconds timeout);

  /// Long-polls the session's delta subscription: blocks server-side
  /// until events arrive or `timeout` expires (empty result = timeout).
  /// max_events==0 lets the server pick its cap.
  Result<std::vector<DeltaEvent>> PollDeltas(
      std::uint32_t max_events, std::chrono::milliseconds timeout);

  /// Highest delta sequence number seen by PollDeltas on this client.
  std::uint64_t last_seq() const { return last_seq_; }

  /// The as_of frontier of the last Deltas answer (v4): the server
  /// engine's applied-cycle timestamp sampled before that answer's
  /// events were drained, i.e. every event at or before this timestamp
  /// has now been delivered to this session — unless that answer was
  /// truncated (below; see DeltaMultiplexer for the truncation rule).
  Timestamp deltas_as_of() const { return deltas_as_of_; }

  /// True when the last Deltas answer was cut at the poll's effective
  /// cap with events still buffered server-side (v4 truncated flag —
  /// the server reports this, so it holds even when the server's own
  /// max_poll_events clamp was the binding cap).
  bool deltas_truncated() const { return deltas_truncated_; }

  /// The queue_hint of the most recent IngestAck — the server's standing
  /// backpressure signal for pacing loops that batch fire-and-forget.
  std::uint8_t last_ingest_hint() const { return last_ingest_hint_; }

  /// Graceful goodbye; with close_session the server also closes the
  /// session (releasing its queries and delta buffer — no resume after
  /// this). The socket is closed either way.
  Status Close(bool close_session = false);

 private:
  MonitorClient(int fd, const NetClientOptions& options)
      : fd_(fd), options_(options) {}

  Status SendFrame(const std::string& body);
  /// Reads exactly one frame and decodes it. `extra_wait` widens the
  /// socket timeout for long polls.
  Result<NetMessage> RecvMessage(std::chrono::milliseconds extra_wait);
  /// Send + receive; kError responses become their carried Status, any
  /// type other than `want` is an Internal error.
  Result<NetMessage> RoundTrip(const std::string& body, NetMessageType want,
                               std::chrono::milliseconds extra_wait =
                                   std::chrono::milliseconds(0));

  int fd_ = -1;
  const NetClientOptions options_;
  SessionId session_ = 0;
  bool resumed_ = false;
  std::uint8_t server_role_ = 0;
  std::uint32_t server_tag_ = kNoServerTag;
  std::uint64_t fencing_epoch_ = 0;
  std::uint64_t last_seq_ = 0;
  Timestamp deltas_as_of_ = 0;
  bool deltas_truncated_ = false;
  std::uint8_t last_ingest_hint_ = 0;
  Timestamp snapshot_as_of_ = 0;
  Timestamp snapshot_stale_by_ = 0;
  Timestamp leader_cycle_ts_ = 0;
  std::string inbuf_;
};

}  // namespace topkmon

#endif  // TOPKMON_NET_CLIENT_H_
