// Slab-allocated record storage for the update-stream model.
//
// Section 7 of the paper extends the framework to streams with explicit
// deletions, where records no longer expire in FIFO order; the contiguous
// deque of SlidingWindow does not apply. RecordPool stores live records in
// a slab with a free list and resolves record ids through a hash map,
// giving O(1) expected insert / erase / lookup.

#ifndef TOPKMON_STREAM_RECORD_POOL_H_
#define TOPKMON_STREAM_RECORD_POOL_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/record.h"
#include "common/status.h"

namespace topkmon {

/// Live-record store keyed by RecordId, with slab reuse of freed slots.
class RecordPool {
 public:
  RecordPool() = default;

  /// Inserts a record. Returns AlreadyExists if its id is live.
  Status Insert(const Record& record);

  /// Removes the record with this id. Returns NotFound if absent.
  Status Erase(RecordId id);

  /// True iff the id is live.
  bool Contains(RecordId id) const { return index_.count(id) > 0; }

  /// Looks up a live record; NotFound if absent.
  Result<Record> Find(RecordId id) const;

  /// Unchecked O(1) access. Requires Contains(id).
  const Record& Get(RecordId id) const {
    auto it = index_.find(id);
    assert(it != index_.end());
    return slots_[it->second];
  }

  std::size_t size() const { return index_.size(); }
  bool empty() const { return index_.empty(); }

  /// Invokes `fn(const Record&)` on every live record (arbitrary order).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [id, slot] : index_) fn(slots_[slot]);
  }

  /// Approximate heap footprint (slab + index).
  std::size_t MemoryBytes() const {
    return slots_.capacity() * sizeof(Record) +
           index_.size() * (sizeof(RecordId) + sizeof(std::size_t) +
                            2 * sizeof(void*));
  }

 private:
  std::vector<Record> slots_;
  std::vector<std::size_t> free_slots_;
  std::unordered_map<RecordId, std::size_t> index_;
};

}  // namespace topkmon

#endif  // TOPKMON_STREAM_RECORD_POOL_H_
