#include "stream/record_arena.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace topkmon {

RecordArena::RecordArena(const RecordArenaOptions& options)
    : options_(options) {
  assert(options_.chunk_records > 0);
}

RecordArena::~RecordArena() {
  for (Chunk& c : chunks_) delete[] c.slab;
  for (Chunk& c : free_chunks_) delete[] c.slab;
}

Record* RecordArena::Allocate(std::size_t n) {
  if (n == 0) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  Chunk* open = nullptr;
  if (!chunks_.empty() && !chunks_.back().sealed &&
      chunks_.back().capacity - chunks_.back().used >= n) {
    open = &chunks_.back();
  }
  if (open == nullptr) {
    if (!chunks_.empty()) chunks_.back().sealed = true;
    // Prefer a recycled slab big enough for the span; a span larger
    // than every free slab gets a fresh (possibly oversized) chunk.
    auto fit = std::find_if(
        free_chunks_.begin(), free_chunks_.end(),
        [n](const Chunk& c) { return c.capacity >= n; });
    if (fit != free_chunks_.end()) {
      chunks_.push_back(*fit);
      free_chunks_.erase(fit);
      ++stats_.chunks_recycled;
    } else {
      Chunk fresh;
      fresh.capacity = std::max(options_.chunk_records, n);
      fresh.slab = new Record[fresh.capacity];
      chunks_.push_back(fresh);
      ++stats_.chunks_created;
      stats_.resident_bytes += fresh.capacity * sizeof(Record);
      stats_.peak_resident_bytes =
          std::max(stats_.peak_resident_bytes, stats_.resident_bytes);
    }
    open = &chunks_.back();
    open->used = 0;
    open->released = 0;
    open->sealed = false;
  }
  Record* span = open->slab + open->used;
  open->used += n;
  open->last_epoch = epoch_;
  stats_.allocated_records += n;
  return span;
}

void RecordArena::Release(const Record* p, std::size_t n) {
  if (n == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (Chunk& c : chunks_) {
    if (p >= c.slab && p < c.slab + c.capacity) {
      assert(p + n <= c.slab + c.used);
      c.released += n;
      assert(c.released <= c.used);
      stats_.released_records += n;
      ReclaimLocked();
      return;
    }
  }
  assert(false && "Release of a span this arena never allocated");
}

std::uint64_t RecordArena::current_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

std::uint64_t RecordArena::AdvanceEpoch() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t sealed = epoch_++;
  if (!chunks_.empty() && !chunks_.back().sealed) {
    // An untouched open chunk stays open; one that allocated in the
    // sealed epoch is closed so the next span starts a fresh lifetime.
    if (chunks_.back().last_epoch == sealed && chunks_.back().used > 0) {
      chunks_.back().sealed = true;
    }
  }
  return sealed;
}

void RecordArena::RetireThrough(std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch <= retired_through_) return;
  retired_through_ = epoch;
  ReclaimLocked();
}

void RecordArena::PinEpoch(std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  ++pins_[epoch];
}

void RecordArena::UnpinEpoch(std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pins_.find(epoch);
  assert(it != pins_.end());
  if (it == pins_.end()) return;
  if (--it->second == 0) pins_.erase(it);
  ReclaimLocked();
}

std::size_t RecordArena::ResidentBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.resident_bytes;
}

RecordArenaStats RecordArena::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::uint64_t RecordArena::MinPinnedLocked() const {
  return pins_.empty() ? std::numeric_limits<std::uint64_t>::max()
                       : pins_.begin()->first;
}

void RecordArena::ReclaimLocked() {
  const std::uint64_t min_pinned = MinPinnedLocked();
  for (auto it = chunks_.begin(); it != chunks_.end();) {
    const bool reclaimable = it->sealed && it->released == it->used &&
                             it->last_epoch <= retired_through_ &&
                             it->last_epoch < min_pinned;
    if (!reclaimable) {
      ++it;
      continue;
    }
    if (free_chunks_.size() < options_.max_free_chunks) {
      Chunk recycled = *it;
      recycled.used = 0;
      recycled.released = 0;
      recycled.sealed = false;
      recycled.last_epoch = 0;
      free_chunks_.push_back(recycled);
    } else {
      stats_.resident_bytes -= it->capacity * sizeof(Record);
      delete[] it->slab;
      ++stats_.chunks_freed;
    }
    it = chunks_.erase(it);
  }
}

}  // namespace topkmon
