// Synthetic stream generators.
//
// Section 8 of the paper evaluates on two distributions over the unit
// workspace (Figure 13):
//   * IND — attribute values generated independently, uniform in [0,1];
//   * ANT — anti-correlated data generated as in the skyline benchmark of
//     Borzsonyi et al. [4]: points concentrate around the hyperplane
//     through (0.5,...,0.5) perpendicular to the main diagonal, so a large
//     value on one dimension implies small values on the others.
// A clustered (CLU) generator is included as an extra workload for
// examples and robustness tests.

#ifndef TOPKMON_STREAM_GENERATORS_H_
#define TOPKMON_STREAM_GENERATORS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/record.h"
#include "common/status.h"
#include "util/rng.h"

namespace topkmon {

/// Workload distribution identifiers.
enum class Distribution {
  kIndependent,     ///< IND
  kAntiCorrelated,  ///< ANT
  kClustered,       ///< CLU (extension; Gaussian clusters)
};

/// Short name used in bench output ("IND", "ANT", "CLU").
const char* DistributionName(Distribution dist);

/// Parses "ind" / "ant" / "clu" (case-insensitive) for CLI tools.
Result<Distribution> ParseDistribution(const std::string& name);

/// Stateful point source; each generator owns its RNG, so two generators
/// constructed with the same (distribution, dim, seed) emit identical
/// streams — required to feed the same workload to competing engines.
class StreamGenerator {
 public:
  virtual ~StreamGenerator() = default;

  int dim() const { return dim_; }

  /// Next point in [0,1]^d.
  virtual Point NextPoint() = 0;

 protected:
  StreamGenerator(int dim, std::uint64_t seed) : dim_(dim), rng_(seed) {}
  int dim_;
  Rng rng_;
};

/// IND: every attribute independently uniform in [0,1).
class IndependentGenerator final : public StreamGenerator {
 public:
  IndependentGenerator(int dim, std::uint64_t seed)
      : StreamGenerator(dim, seed) {}
  Point NextPoint() override;
};

/// ANT: anti-correlated points near the plane sum(x_i) = d * v, with the
/// plane offset v drawn from a clipped Gaussian around 0.5.
class AntiCorrelatedGenerator final : public StreamGenerator {
 public:
  AntiCorrelatedGenerator(int dim, std::uint64_t seed)
      : StreamGenerator(dim, seed) {}
  Point NextPoint() override;
};

/// CLU: points drawn from a mixture of axis-aligned Gaussian clusters with
/// centers re-drawn from the seed; coordinates clamped to [0,1].
class ClusteredGenerator final : public StreamGenerator {
 public:
  ClusteredGenerator(int dim, std::uint64_t seed, int num_clusters = 5,
                     double stddev = 0.05);
  Point NextPoint() override;

 private:
  std::vector<Point> centers_;
  double stddev_;
};

/// Factory for the distribution enum.
std::unique_ptr<StreamGenerator> MakeGenerator(Distribution dist, int dim,
                                               std::uint64_t seed);

/// Wraps a StreamGenerator into a record source that assigns increasing
/// ids and the caller-provided arrival timestamps, i.e. the tuple format
/// <p.id, p.x1..p.xd, p.t> of Section 4.1.
class RecordSource {
 public:
  RecordSource(std::unique_ptr<StreamGenerator> generator)
      : generator_(std::move(generator)) {}

  int dim() const { return generator_->dim(); }
  RecordId next_id() const { return next_id_; }

  /// Produces one record arriving at time `now`.
  Record Next(Timestamp now) {
    return Record(next_id_++, generator_->NextPoint(), now);
  }

  /// Produces `count` records arriving at time `now`.
  std::vector<Record> NextBatch(std::size_t count, Timestamp now) {
    std::vector<Record> batch;
    batch.reserve(count);
    for (std::size_t i = 0; i < count; ++i) batch.push_back(Next(now));
    return batch;
  }

 private:
  std::unique_ptr<StreamGenerator> generator_;
  RecordId next_id_ = 0;
};

}  // namespace topkmon

#endif  // TOPKMON_STREAM_GENERATORS_H_
