#include "stream/update_stream.h"

#include <cassert>

namespace topkmon {

UpdateStreamGenerator::UpdateStreamGenerator(
    std::unique_ptr<StreamGenerator> generator, double delete_fraction,
    std::uint64_t seed)
    : generator_(std::move(generator)),
      delete_fraction_(delete_fraction),
      rng_(seed) {
  assert(delete_fraction_ >= 0.0 && delete_fraction_ < 1.0);
}

UpdateOp UpdateStreamGenerator::Next(Timestamp now) {
  if (!live_ids_.empty() && rng_.Uniform() < delete_fraction_) {
    const std::size_t pos =
        static_cast<std::size_t>(rng_.UniformInt(live_ids_.size()));
    const RecordId victim = live_ids_[pos];
    // Swap-remove keeps deletion sampling O(1).
    live_ids_[pos] = live_ids_.back();
    live_pos_[live_ids_[pos]] = pos;
    live_ids_.pop_back();
    live_pos_.erase(victim);
    UpdateOp op;
    op.kind = UpdateOp::Kind::kDelete;
    op.record.id = victim;
    op.record.arrival = now;
    return op;
  }
  UpdateOp op;
  op.kind = UpdateOp::Kind::kInsert;
  op.record = Record(next_id_++, generator_->NextPoint(), now);
  live_pos_[op.record.id] = live_ids_.size();
  live_ids_.push_back(op.record.id);
  return op;
}

std::vector<UpdateOp> UpdateStreamGenerator::NextBatch(std::size_t count,
                                                       Timestamp now) {
  std::vector<UpdateOp> ops;
  ops.reserve(count);
  for (std::size_t i = 0; i < count; ++i) ops.push_back(Next(now));
  return ops;
}

}  // namespace topkmon
