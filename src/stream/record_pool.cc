#include "stream/record_pool.h"

namespace topkmon {

Status RecordPool::Insert(const Record& record) {
  if (record.id == kInvalidRecordId) {
    return Status::InvalidArgument("record has invalid id");
  }
  if (index_.count(record.id) > 0) {
    return Status::AlreadyExists("record id " + std::to_string(record.id) +
                                 " already live");
  }
  std::size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = record;
  } else {
    slot = slots_.size();
    slots_.push_back(record);
  }
  index_.emplace(record.id, slot);
  return Status::Ok();
}

Status RecordPool::Erase(RecordId id) {
  auto it = index_.find(id);
  if (it == index_.end()) {
    return Status::NotFound("record id " + std::to_string(id) + " not live");
  }
  free_slots_.push_back(it->second);
  index_.erase(it);
  return Status::Ok();
}

Result<Record> RecordPool::Find(RecordId id) const {
  auto it = index_.find(id);
  if (it == index_.end()) {
    return Status::NotFound("record id " + std::to_string(id) + " not live");
  }
  return slots_[it->second];
}

}  // namespace topkmon
