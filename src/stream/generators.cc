#include "stream/generators.h"

#include <algorithm>
#include <cctype>
#include <cmath>

namespace topkmon {

const char* DistributionName(Distribution dist) {
  switch (dist) {
    case Distribution::kIndependent:
      return "IND";
    case Distribution::kAntiCorrelated:
      return "ANT";
    case Distribution::kClustered:
      return "CLU";
  }
  return "?";
}

Result<Distribution> ParseDistribution(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "ind" || lower == "independent") {
    return Distribution::kIndependent;
  }
  if (lower == "ant" || lower == "anticorrelated") {
    return Distribution::kAntiCorrelated;
  }
  if (lower == "clu" || lower == "clustered") return Distribution::kClustered;
  return Status::InvalidArgument("unknown distribution: " + name);
}

Point IndependentGenerator::NextPoint() {
  Point p(dim_);
  for (int i = 0; i < dim_; ++i) p[i] = rng_.Uniform();
  return p;
}

Point AntiCorrelatedGenerator::NextPoint() {
  // Borzsonyi-style anti-correlated data: pick a hyperplane offset
  // v ~ N(0.5, 0.08) (clipped to (0,1)), then spread the point uniformly
  // over the simplex slice sum(x_i) = d * v via exponential (Dirichlet
  // alpha = 1) shares. Shares are re-drawn until every coordinate fits in
  // [0,1] — always feasible since the equal split x_i = v works — so the
  // v distribution itself is unbiased. The tight plane spread and the
  // full spread *along* the plane yield the Figure 13(b) shape: a thin
  // band around the anti-diagonal with strongly negative pairwise
  // correlation (a large value on one dimension forces small values on
  // the others).
  double v;
  do {
    v = rng_.Gaussian(0.5, 0.08);
  } while (v < 0.02 || v > 0.98);
  Point p(dim_);
  if (dim_ == 1) {
    p[0] = v;
    return p;
  }
  const double total = v * dim_;
  while (true) {
    double shares[kMaxDims];
    double share_sum = 0.0;
    for (int i = 0; i < dim_; ++i) {
      // Exponential share => Dirichlet(1,...,1): uniform on the simplex.
      double u;
      do {
        u = rng_.Uniform();
      } while (u <= 1e-300);
      shares[i] = -std::log(u);
      share_sum += shares[i];
    }
    bool ok = true;
    for (int i = 0; i < dim_; ++i) {
      p[i] = total * shares[i] / share_sum;
      if (p[i] > 1.0) {
        ok = false;
        break;
      }
    }
    if (ok) return p;
  }
}

ClusteredGenerator::ClusteredGenerator(int dim, std::uint64_t seed,
                                       int num_clusters, double stddev)
    : StreamGenerator(dim, seed), stddev_(stddev) {
  assert(num_clusters > 0);
  centers_.reserve(num_clusters);
  for (int c = 0; c < num_clusters; ++c) {
    Point center(dim);
    for (int i = 0; i < dim; ++i) center[i] = rng_.Uniform(0.1, 0.9);
    centers_.push_back(center);
  }
}

Point ClusteredGenerator::NextPoint() {
  const Point& center =
      centers_[static_cast<std::size_t>(rng_.UniformInt(centers_.size()))];
  Point p(dim_);
  for (int i = 0; i < dim_; ++i) {
    p[i] = std::clamp(center[i] + rng_.Gaussian(0.0, stddev_), 0.0, 1.0);
  }
  return p;
}

std::unique_ptr<StreamGenerator> MakeGenerator(Distribution dist, int dim,
                                               std::uint64_t seed) {
  switch (dist) {
    case Distribution::kIndependent:
      return std::make_unique<IndependentGenerator>(dim, seed);
    case Distribution::kAntiCorrelated:
      return std::make_unique<AntiCorrelatedGenerator>(dim, seed);
    case Distribution::kClustered:
      return std::make_unique<ClusteredGenerator>(dim, seed);
  }
  return nullptr;
}

}  // namespace topkmon
