#include "stream/sliding_window.h"

namespace topkmon {

SlidingWindow SlidingWindow::CountBased(std::size_t capacity) {
  assert(capacity > 0);
  return SlidingWindow(WindowKind::kCountBased, capacity, 0);
}

SlidingWindow SlidingWindow::TimeBased(Timestamp span) {
  assert(span > 0);
  return SlidingWindow(WindowKind::kTimeBased, 0, span);
}

Status SlidingWindow::Append(const Record& record) {
  if (record.id == kInvalidRecordId) {
    return Status::InvalidArgument("record has invalid id");
  }
  if (!records_.empty() && record.id != next_id_) {
    return Status::FailedPrecondition(
        "record ids must be contiguous and increasing: expected " +
        std::to_string(next_id_) + ", got " + std::to_string(record.id));
  }
  if (record.arrival < last_arrival_) {
    return Status::FailedPrecondition(
        "arrival timestamps must be non-decreasing");
  }
  if (records_.empty()) front_id_ = record.id;
  records_.push_back(record);
  next_id_ = record.id + 1;
  last_arrival_ = record.arrival;
  return Status::Ok();
}

std::vector<Record> SlidingWindow::EvictExpired(Timestamp now) {
  std::vector<Record> expired;
  if (kind_ == WindowKind::kCountBased) {
    while (records_.size() > capacity_) {
      expired.push_back(records_.front());
      records_.pop_front();
      ++front_id_;
    }
  } else {
    const Timestamp cutoff = now - span_;
    while (!records_.empty() && records_.front().arrival <= cutoff) {
      expired.push_back(records_.front());
      records_.pop_front();
      ++front_id_;
    }
  }
  return expired;
}

}  // namespace topkmon
