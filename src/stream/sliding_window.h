// Sliding windows over an append-only stream.
//
// The paper's data model (Section 1): tuples continuously stream into the
// system and are valid only while they belong to a sliding window W.
//   * count-based W: the N most recent records;
//   * time-based W: all records that arrived within the last T time units.
// In both versions eviction is strictly first-in-first-out (Section 4.1),
// so the valid records always form a contiguous range of arrival ids; the
// window stores them in a deque and locates any record by id in O(1).

#ifndef TOPKMON_STREAM_SLIDING_WINDOW_H_
#define TOPKMON_STREAM_SLIDING_WINDOW_H_

#include <cstddef>
#include <deque>
#include <vector>

#include "common/record.h"
#include "common/status.h"

namespace topkmon {

/// Which flavor of sliding window (Section 1).
enum class WindowKind {
  kCountBased,  ///< keep the most recent `capacity` tuples
  kTimeBased,   ///< keep tuples with arrival > now - span
};

/// Window configuration shared by all engines and monitors.
struct WindowSpec {
  WindowKind kind = WindowKind::kCountBased;
  std::size_t capacity = 0;  ///< count-based: N most recent tuples
  Timestamp span = 0;        ///< time-based: tuples younger than `span`

  static WindowSpec Count(std::size_t n) {
    return WindowSpec{WindowKind::kCountBased, n, 0};
  }
  static WindowSpec Time(Timestamp span) {
    return WindowSpec{WindowKind::kTimeBased, 0, span};
  }
};

/// FIFO sliding window storing the valid records of the stream.
///
/// Usage per processing cycle:
///   1. Append() each arriving record (ids must be strictly increasing);
///   2. EvictExpired(now) to obtain (and drop) the expired records.
/// Engines receive both lists and update their indexes accordingly.
class SlidingWindow {
 public:
  /// Window of the `capacity` most recent tuples. Requires capacity > 0.
  static SlidingWindow CountBased(std::size_t capacity);

  /// Window of tuples with arrival timestamp in (now - span, now].
  /// Requires span > 0.
  static SlidingWindow TimeBased(Timestamp span);

  WindowKind kind() const { return kind_; }
  std::size_t capacity() const { return capacity_; }
  Timestamp span() const { return span_; }

  /// Admits an arriving record. Ids must be strictly increasing across all
  /// appends (they encode arrival order); violations return
  /// FailedPrecondition. Arrival timestamps must be non-decreasing.
  Status Append(const Record& record);

  /// Removes and returns all records that are no longer valid:
  ///   count-based: the oldest records beyond `capacity`;
  ///   time-based: records with arrival <= now - span.
  /// Records are returned in expiration (arrival) order.
  std::vector<Record> EvictExpired(Timestamp now);

  /// True iff the record with this id is currently valid.
  bool Contains(RecordId id) const {
    return !records_.empty() && id >= front_id_ &&
           id < front_id_ + records_.size();
  }

  /// O(1) access to a valid record. Requires Contains(id).
  const Record& Get(RecordId id) const {
    assert(Contains(id));
    return records_[static_cast<std::size_t>(id - front_id_)];
  }

  /// Number of valid records.
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// Oldest (first to expire) valid record. Requires !empty().
  const Record& Oldest() const {
    assert(!empty());
    return records_.front();
  }

  /// Iteration over valid records in arrival order (for reference engines
  /// and tests).
  std::deque<Record>::const_iterator begin() const { return records_.begin(); }
  std::deque<Record>::const_iterator end() const { return records_.end(); }

  /// Approximate heap footprint of the stored records.
  std::size_t MemoryBytes() const { return records_.size() * sizeof(Record); }

 private:
  SlidingWindow(WindowKind kind, std::size_t capacity, Timestamp span)
      : kind_(kind), capacity_(capacity), span_(span) {}

  WindowKind kind_;
  std::size_t capacity_;  ///< meaningful iff kind == kCountBased
  Timestamp span_;        ///< meaningful iff kind == kTimeBased
  std::deque<Record> records_;
  RecordId front_id_ = 0;     ///< id of records_.front()
  RecordId next_id_ = 0;      ///< smallest id not yet seen
  Timestamp last_arrival_ = -1;
};

}  // namespace topkmon

#endif  // TOPKMON_STREAM_SLIDING_WINDOW_H_
