// Update-stream workload (Section 7).
//
// In the update-stream model, tuples do not expire in FIFO order: the
// stream interleaves insertions of new records with explicit deletions of
// arbitrary live records. This generator produces such a workload with a
// configurable deletion fraction, tracking the live set so that deletions
// always target existing records.

#ifndef TOPKMON_STREAM_UPDATE_STREAM_H_
#define TOPKMON_STREAM_UPDATE_STREAM_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/record.h"
#include "stream/generators.h"
#include "util/rng.h"

namespace topkmon {

/// One operation of an update stream.
struct UpdateOp {
  enum class Kind { kInsert, kDelete };
  Kind kind;
  Record record;  ///< full record for inserts; only `record.id` is
                  ///< meaningful for deletes
};

/// Generates an interleaved insert/delete workload over live records.
class UpdateStreamGenerator {
 public:
  /// `delete_fraction` in [0,1): probability that an operation is a
  /// deletion (when the live set is non-empty).
  UpdateStreamGenerator(std::unique_ptr<StreamGenerator> generator,
                        double delete_fraction, std::uint64_t seed);

  int dim() const { return generator_->dim(); }
  std::size_t live_count() const { return live_ids_.size(); }
  double delete_fraction() const { return delete_fraction_; }

  /// Changes the deletion probability mid-stream (e.g. an insert-only
  /// fill phase followed by churn). Requires 0 <= fraction < 1.
  void set_delete_fraction(double fraction) {
    assert(fraction >= 0.0 && fraction < 1.0);
    delete_fraction_ = fraction;
  }

  /// Next operation at timestamp `now`.
  UpdateOp Next(Timestamp now);

  /// Batch of `count` operations at timestamp `now`.
  std::vector<UpdateOp> NextBatch(std::size_t count, Timestamp now);

 private:
  std::unique_ptr<StreamGenerator> generator_;
  double delete_fraction_;
  Rng rng_;
  RecordId next_id_ = 0;
  std::vector<RecordId> live_ids_;  ///< swap-remove sampling of deletions
  std::unordered_map<RecordId, std::size_t> live_pos_;
};

}  // namespace topkmon

#endif  // TOPKMON_STREAM_UPDATE_STREAM_H_
