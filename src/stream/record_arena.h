// Recyclable region allocator for the zero-copy ingest hot path.
//
// RecordArena grows the slab idea of RecordPool into a region allocator
// for *in-flight* records: a producer (a TCP poll loop decoding an
// ingest frame, or the ingest queue admitting an in-process tuple)
// allocates a contiguous span of Records, fills it in place, and hands
// out RecordSpan views instead of copies. Consumers release the span
// when they are done; storage is reclaimed chunk-at-a-time and recycled
// through a bounded free list, so a warmed-up arena allocates no new
// memory at steady state.
//
// Reclamation is epoch-based and keyed to cycle publish:
//   * every allocation is stamped with the arena's current epoch;
//   * AdvanceEpoch() seals the current epoch — in the service this
//     happens once per published cycle (IngestQueue::CommitDrained), in
//     a poll loop once per decoded ingest frame;
//   * RetireThrough(e) moves the retire frontier — a chunk can only be
//     recycled once its newest allocation epoch is at or below the
//     frontier, every record allocated from it has been released, AND
//     no consumer still pins an epoch at or below the chunk's newest
//     (PinEpoch/UnpinEpoch cover long-held views: a parked long-poll or
//     a journal writer serializing from the span).
//
// Thread safety: all member functions are thread-safe (one internal
// mutex). The intended shape is still single-producer per arena —
// allocation is amortized per *span*, not per record, so the lock is
// not on the per-record path. Record contents are published to other
// threads by whatever queue hands the span over (the ingest queue's
// mutex), not by the arena.

#ifndef TOPKMON_STREAM_RECORD_ARENA_H_
#define TOPKMON_STREAM_RECORD_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "common/record.h"

namespace topkmon {

struct RecordArenaOptions {
  /// Records per chunk; a span larger than this gets a dedicated chunk.
  std::size_t chunk_records = 4096;
  /// Fully reclaimed chunks kept for reuse; beyond this they are freed
  /// outright, so a hostile burst cannot ratchet resident memory up
  /// forever.
  std::size_t max_free_chunks = 4;
};

/// Observable arena counters (all monotone except the byte gauges).
struct RecordArenaStats {
  std::uint64_t allocated_records = 0;  ///< records ever handed out
  std::uint64_t released_records = 0;   ///< records handed back
  std::uint64_t chunks_created = 0;     ///< fresh slab allocations
  std::uint64_t chunks_recycled = 0;    ///< reclaimed via the free list
  std::uint64_t chunks_freed = 0;       ///< reclaimed past the free cap
  std::size_t resident_bytes = 0;       ///< live + free slab bytes
  std::size_t peak_resident_bytes = 0;  ///< high-water mark
};

/// Epoch-reclaimed region allocator of Record spans.
class RecordArena {
 public:
  explicit RecordArena(const RecordArenaOptions& options = {});
  ~RecordArena();

  RecordArena(const RecordArena&) = delete;
  RecordArena& operator=(const RecordArena&) = delete;

  /// A contiguous, uninitialized span of `n` records stamped with the
  /// current epoch. Never returns nullptr for n > 0; n == 0 returns
  /// nullptr. The span stays valid until all `n` records are Released
  /// AND the reclamation conditions above let its chunk go.
  Record* Allocate(std::size_t n);

  /// Hands back `n` records starting at `p` (an Allocate result or a
  /// prefix/suffix of one — releases may be split, e.g. a rejected
  /// suffix now and the admitted prefix after cycle publish). Chunks
  /// whose records are all released and whose epoch has retired are
  /// recycled here.
  void Release(const Record* p, std::size_t n);

  /// The epoch new allocations are stamped with.
  std::uint64_t current_epoch() const;

  /// Seals the current epoch and opens the next; returns the sealed
  /// epoch. Call once per cycle publish (or per decoded frame).
  std::uint64_t AdvanceEpoch();

  /// Moves the retire frontier forward to `epoch` (monotone; lower
  /// values are ignored). Chunks whose newest allocation epoch is at or
  /// below the frontier become reclaimable once fully released and
  /// unpinned.
  void RetireThrough(std::uint64_t epoch);

  /// Pins `epoch` against reclamation while a view into it is held
  /// beyond its release point (journal writers, parked long-polls).
  /// Pins nest; each PinEpoch needs a matching UnpinEpoch.
  void PinEpoch(std::uint64_t epoch);
  void UnpinEpoch(std::uint64_t epoch);

  /// Slab bytes currently held (live chunks + free list) — the
  /// topkmon_arena_bytes gauge. Zero growth of this at steady state is
  /// what the soak tier asserts.
  std::size_t ResidentBytes() const;

  RecordArenaStats stats() const;

 private:
  struct Chunk {
    Record* slab = nullptr;
    std::size_t capacity = 0;
    std::size_t used = 0;          ///< records handed out of this chunk
    std::size_t released = 0;      ///< records handed back
    std::uint64_t last_epoch = 0;  ///< newest allocation epoch
    bool sealed = false;           ///< no further allocations
  };

  /// Reclaims every chunk that satisfies the three conditions. Caller
  /// holds mu_.
  void ReclaimLocked();
  /// Smallest pinned epoch, or a value above every epoch when none.
  std::uint64_t MinPinnedLocked() const;

  const RecordArenaOptions options_;

  mutable std::mutex mu_;
  std::vector<Chunk> chunks_;        ///< live chunks, oldest first
  std::vector<Chunk> free_chunks_;   ///< fully reclaimed, reusable slabs
  std::uint64_t epoch_ = 1;
  std::uint64_t retired_through_ = 0;
  std::map<std::uint64_t, std::size_t> pins_;
  RecordArenaStats stats_;
};

}  // namespace topkmon

#endif  // TOPKMON_STREAM_RECORD_ARENA_H_
