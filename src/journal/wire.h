// Shared wire primitives for the on-disk journal and the network protocol.
//
// Both byte formats in this codebase — the durable cycle journal
// (src/journal/format.h, docs/JOURNAL_FORMAT.md) and the binary TCP
// protocol (src/net/protocol.h, docs/PROTOCOL.md) — are built from the
// same little-endian building blocks: fixed-width integers, IEEE-754
// doubles by bit pattern, LEB128 varints, length-prefixed strings, and
// the delta-compressed record span that makes a batch of stream tuples
// cost ~2 + 8·dim bytes per record. This header is the single home of
// those encodings so the two formats can never drift apart on the
// primitives, and the scoring-function / query-spec encodings are shared
// verbatim (a query registered over the wire is journaled byte-identically).
//
// Everything here is format-version-agnostic: framing (length prefixes,
// CRCs, headers, type tags) stays with the owning format.

#ifndef TOPKMON_JOURNAL_WIRE_H_
#define TOPKMON_JOURNAL_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/record.h"
#include "common/scoring.h"
#include "common/status.h"
#include "core/query.h"

namespace topkmon {
namespace wire {

// ---- primitive writers (append to *out) -------------------------------

void PutU8(std::uint8_t v, std::string* out);
void PutU16(std::uint16_t v, std::string* out);
void PutU32(std::uint32_t v, std::string* out);
void PutU64(std::uint64_t v, std::string* out);
void PutI64(std::int64_t v, std::string* out);
void PutF64(double v, std::string* out);

/// dim:u8 then dim raw f64 coordinates.
void PutPoint(const Point& p, std::string* out);

/// Unsigned LEB128: 7 value bits per byte, low group first, high bit =
/// continuation; at most 10 bytes.
void PutUvarint(std::uint64_t v, std::string* out);

/// len:u16 + raw bytes; silently truncates beyond 65535 bytes.
void PutString(const std::string& s, std::string* out);

/// Upper bound on PutRecordSpan output (the hot-path reserve hint).
std::size_t RecordSpanMaxBytes(std::size_t count, int dim);

/// Serializes `count` > 0 records as a span: shared dimensionality and
/// base (id, arrival), then per record the varint deltas against the
/// previous record plus the raw coordinates. A stream batch has
/// consecutive ids and near-constant arrivals, so the common entry is
/// 2 + 8·dim bytes — and every byte is CRC'd and written on hot paths
/// (journal cycle appends, network ingest), so wire compactness is
/// throughput. Requires: uniform dimensionality, strictly increasing ids,
/// non-decreasing arrivals (the engines' arrival-batch contract).
void PutRecordSpan(const Record* records, std::size_t count,
                   std::string* out);

/// Scoring-function encoding (family tag + payload). Linear / Product /
/// SumOfSquares encode as dim coefficients; Piecewise (tag 4, journal
/// format v2) encodes a piece count followed by per-piece domain corners
/// and the inner monotone function. Fails with Unimplemented for
/// function types without a wire encoding.
Status PutFunction(const ScoringFunction& fn, std::string* out);

/// Full query spec: id:u32 k:u32 function constraint-presence:u8
/// [lo-point hi-point].
Status PutQuerySpec(const QuerySpec& spec, std::string* out);

// ---- primitive readers ------------------------------------------------

/// Bounds-checked cursor over a message body. Every Get* reports overruns
/// through the sticky status; callers check once per record.
class ByteReader {
 public:
  ByteReader(const char* data, std::size_t n) : data_(data), n_(n) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return n_ - pos_; }

  std::uint8_t GetU8() {
    if (!Require(1)) return 0;
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint16_t GetU16() {
    if (!Require(2)) return 0;
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) {
      v = static_cast<std::uint16_t>(
          v | (static_cast<std::uint16_t>(
                   static_cast<std::uint8_t>(data_[pos_ + i]))
               << (8 * i)));
    }
    pos_ += 2;
    return v;
  }

  std::uint32_t GetU32() {
    if (!Require(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t GetU64() {
    if (!Require(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  std::int64_t GetI64() { return static_cast<std::int64_t>(GetU64()); }

  std::uint64_t GetUvarint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (shift < 64) {
      if (!Require(1)) return 0;
      const auto byte = static_cast<std::uint8_t>(data_[pos_++]);
      v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return v;
      shift += 7;
    }
    ok_ = false;  // over-long varint
    return 0;
  }

  double GetF64();

  Point GetPoint();

  std::string GetString() {
    const std::size_t n = GetU16();
    return GetBytes(n);
  }

  /// Raw byte run of caller-known length (the replication chunk payload
  /// — one memcpy, not a per-byte loop).
  std::string GetBytes(std::size_t n) {
    if (!Require(n)) return std::string();
    std::string s(data_ + pos_, n);
    pos_ += n;
    return s;
  }

 private:
  bool Require(std::size_t n) {
    if (!ok_ || n_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const char* data_;
  std::size_t n_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Reads a record span of `count` > 0 records (see PutRecordSpan),
/// appending to *out. Validates monotone ids within the span and bounds
/// `count` against the bytes actually present, so a hostile count can
/// never drive an allocation beyond the message size.
Status GetRecordSpan(ByteReader& in, std::uint64_t count,
                     std::vector<Record>* out);

/// Zero-copy variant: decodes `count` > 0 records straight into `out`,
/// caller-provided storage for at least `count` records (a RecordArena
/// span on the ingest hot path). Identical validation to the vector
/// overload; on error the storage contents are unspecified and the
/// caller releases them.
Status GetRecordSpanInto(ByteReader& in, std::uint64_t count, Record* out);

/// Inverse of PutFunction.
Status GetFunction(ByteReader& in,
                   std::shared_ptr<const ScoringFunction>* out);

/// Inverse of PutQuerySpec (validates the constraint rectangle).
Status GetQuerySpec(ByteReader& in, QuerySpec* out);

}  // namespace wire
}  // namespace topkmon

#endif  // TOPKMON_JOURNAL_WIRE_H_
