#include "journal/wire.h"

#include <algorithm>
#include <cstring>

#include "common/geometry.h"
#include "core/piecewise.h"

namespace topkmon {
namespace wire {

void PutU8(std::uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::uint16_t v, std::string* out) {
  char b[2];
  for (int i = 0; i < 2; ++i) b[i] = static_cast<char>(v >> (8 * i));
  out->append(b, 2);
}

void PutU32(std::uint32_t v, std::string* out) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>(v >> (8 * i));
  out->append(b, 4);
}

void PutU64(std::uint64_t v, std::string* out) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
  out->append(b, 8);
}

void PutI64(std::int64_t v, std::string* out) {
  PutU64(static_cast<std::uint64_t>(v), out);
}

void PutF64(double v, std::string* out) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits, out);
}

void PutPoint(const Point& p, std::string* out) {
  PutU8(static_cast<std::uint8_t>(p.dim()), out);
  for (int i = 0; i < p.dim(); ++i) PutF64(p[i], out);
}

void PutUvarint(std::uint64_t v, std::string* out) {
  char b[10];
  std::size_t n = 0;
  while (v >= 0x80) {
    b[n++] = static_cast<char>(v | 0x80);
    v >>= 7;
  }
  b[n++] = static_cast<char>(v);
  out->append(b, n);
}

void PutString(const std::string& s, std::string* out) {
  const std::size_t n = std::min<std::size_t>(s.size(), 0xFFFF);
  PutU16(static_cast<std::uint16_t>(n), out);
  out->append(s.data(), n);
}

std::size_t RecordSpanMaxBytes(std::size_t count, int dim) {
  return 1 + 8 + 8 + count * (10 + 10 + static_cast<std::size_t>(dim) * 8);
}

void PutRecordSpan(const Record* records, std::size_t count,
                   std::string* out) {
  const int dim = records[0].position.dim();
  PutU8(static_cast<std::uint8_t>(dim), out);
  PutU64(records[0].id, out);
  PutI64(records[0].arrival, out);
  RecordId prev_id = records[0].id;
  Timestamp prev_arrival = records[0].arrival;
  const std::size_t coord_bytes = static_cast<std::size_t>(dim) * 8;
  for (std::size_t i = 0; i < count; ++i) {
    const Record& r = records[i];
    PutUvarint(r.id - prev_id, out);
    PutUvarint(static_cast<std::uint64_t>(r.arrival - prev_arrival), out);
#if !defined(__BYTE_ORDER__) || __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    out->append(reinterpret_cast<const char*>(r.position.data()),
                coord_bytes);
#else
    for (int d = 0; d < dim; ++d) PutF64(r.position[d], out);
#endif
    prev_id = r.id;
    prev_arrival = r.arrival;
  }
  (void)coord_bytes;
}

namespace {

// Scoring-function family tags (wire values; see docs/JOURNAL_FORMAT.md
// and docs/PROTOCOL.md — both formats share this encoding).
constexpr std::uint8_t kFnLinear = 1;
constexpr std::uint8_t kFnProduct = 2;
constexpr std::uint8_t kFnSumOfSquares = 3;
constexpr std::uint8_t kFnPiecewise = 4;  // journal format v2 / protocol v4

}  // namespace

Status PutFunction(const ScoringFunction& fn, std::string* out) {
  if (const auto* linear = dynamic_cast<const LinearFunction*>(&fn)) {
    PutU8(kFnLinear, out);
    PutU8(static_cast<std::uint8_t>(linear->dim()), out);
    for (double w : linear->weights()) PutF64(w, out);
    PutF64(linear->bias(), out);
    return Status::Ok();
  }
  if (const auto* product = dynamic_cast<const ProductFunction*>(&fn)) {
    PutU8(kFnProduct, out);
    PutU8(static_cast<std::uint8_t>(product->dim()), out);
    for (double a : product->offsets()) PutF64(a, out);
    return Status::Ok();
  }
  if (const auto* squares = dynamic_cast<const SumOfSquaresFunction*>(&fn)) {
    PutU8(kFnSumOfSquares, out);
    PutU8(static_cast<std::uint8_t>(squares->dim()), out);
    for (double a : squares->coeffs()) PutF64(a, out);
    return Status::Ok();
  }
  if (const auto* piecewise = dynamic_cast<const PiecewiseFunction*>(&fn)) {
    PutU8(kFnPiecewise, out);
    PutU8(static_cast<std::uint8_t>(piecewise->dim()), out);
    PutU8(static_cast<std::uint8_t>(piecewise->pieces().size()), out);
    for (const MonotonePiece& piece : piecewise->pieces()) {
      PutPoint(piece.domain.lo(), out);
      PutPoint(piece.domain.hi(), out);
      // PiecewiseFunction::Create bans nested pieces, so this recursion
      // is one level deep and the inner call cannot hit this branch.
      TOPKMON_RETURN_IF_ERROR(PutFunction(*piece.function, out));
    }
    return Status::Ok();
  }
  return Status::Unimplemented(
      "scoring function '" + fn.ToString() +
      "' has no wire encoding (only the linear / product / "
      "sum-of-squares / piecewise families are encodable)");
}

Status PutQuerySpec(const QuerySpec& spec, std::string* out) {
  PutU32(spec.id, out);
  PutU32(static_cast<std::uint32_t>(spec.k), out);
  if (spec.function == nullptr) {
    return Status::InvalidArgument("query spec has no scoring function");
  }
  TOPKMON_RETURN_IF_ERROR(PutFunction(*spec.function, out));
  PutU8(spec.constraint.has_value() ? 1 : 0, out);
  if (spec.constraint.has_value()) {
    PutPoint(spec.constraint->lo(), out);
    PutPoint(spec.constraint->hi(), out);
  }
  return Status::Ok();
}

double ByteReader::GetF64() {
  const std::uint64_t bits = GetU64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Point ByteReader::GetPoint() {
  const int dim = GetU8();
  if (dim < 1 || dim > kMaxDims) {
    ok_ = false;
    return Point();
  }
  Point p(dim);
  for (int i = 0; i < dim; ++i) p[i] = GetF64();
  return p;
}

Status GetRecordSpan(ByteReader& in, std::uint64_t count,
                     std::vector<Record>* out) {
  const int dim = in.GetU8();
  if (!in.ok() || dim < 1 || dim > kMaxDims) {
    return Status::InvalidArgument("bad record-span dimensionality");
  }
  // Each entry is at least 2 varint bytes + dim coordinates.
  const std::size_t min_entry = 2 + static_cast<std::size_t>(dim) * 8;
  if (count > in.remaining() / min_entry + 1) {
    return Status::InvalidArgument("record count exceeds body size");
  }
  RecordId prev_id = in.GetU64();
  Timestamp prev_arrival = in.GetI64();
  out->reserve(out->size() + count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t id_delta = in.GetUvarint();
    const std::uint64_t arrival_delta = in.GetUvarint();
    if (i > 0 && id_delta == 0) {
      return Status::InvalidArgument("non-increasing record id in span");
    }
    Point p(dim);
    for (int d = 0; d < dim; ++d) p[d] = in.GetF64();
    if (!in.ok()) return Status::InvalidArgument("truncated record span");
    prev_id += id_delta;
    // Unsigned accumulation: deltas are attacker-controlled when this
    // decodes network bytes, and signed overflow would be UB. Wraparound
    // is well-defined here; semantic bounds are the caller's policy
    // (the TCP server range-checks arrivals before admitting tuples).
    prev_arrival = static_cast<Timestamp>(
        static_cast<std::uint64_t>(prev_arrival) + arrival_delta);
    out->emplace_back(prev_id, std::move(p), prev_arrival);
  }
  return Status::Ok();
}

Status GetRecordSpanInto(ByteReader& in, std::uint64_t count, Record* out) {
  const int dim = in.GetU8();
  if (!in.ok() || dim < 1 || dim > kMaxDims) {
    return Status::InvalidArgument("bad record-span dimensionality");
  }
  const std::size_t min_entry = 2 + static_cast<std::size_t>(dim) * 8;
  if (count > in.remaining() / min_entry + 1) {
    return Status::InvalidArgument("record count exceeds body size");
  }
  RecordId prev_id = in.GetU64();
  Timestamp prev_arrival = in.GetI64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t id_delta = in.GetUvarint();
    const std::uint64_t arrival_delta = in.GetUvarint();
    if (i > 0 && id_delta == 0) {
      return Status::InvalidArgument("non-increasing record id in span");
    }
    Record& rec = out[i];
    rec.position = Point(dim);
    for (int d = 0; d < dim; ++d) rec.position[d] = in.GetF64();
    if (!in.ok()) return Status::InvalidArgument("truncated record span");
    prev_id += id_delta;
    // Unsigned accumulation: see GetRecordSpan.
    prev_arrival = static_cast<Timestamp>(
        static_cast<std::uint64_t>(prev_arrival) + arrival_delta);
    rec.id = prev_id;
    rec.arrival = prev_arrival;
  }
  return Status::Ok();
}

namespace {

/// Reads the `dim` raw f64 coefficients shared by the linear / product /
/// sum-of-squares payloads.
Status GetCoefficients(ByteReader& in, int dim, std::vector<double>* out) {
  out->resize(static_cast<std::size_t>(dim));
  for (double& c : *out) c = in.GetF64();
  if (!in.ok()) {
    return Status::InvalidArgument("truncated scoring function");
  }
  return Status::Ok();
}

/// `allow_piecewise` is false for the inner slots of a piecewise payload:
/// the family tag is rejected BEFORE any recursive parse, so hostile
/// bytes can nest at most one level deep no matter what follows the tag
/// (a post-parse check would let a piecewise-in-piecewise chain recurse
/// once per ~21 input bytes and overflow the stack on a 16MB frame).
Status GetFunctionImpl(ByteReader& in,
                       std::shared_ptr<const ScoringFunction>* out,
                       bool allow_piecewise) {
  const std::uint8_t family = in.GetU8();
  const int dim = in.GetU8();
  if (!in.ok() || dim < 1 || dim > kMaxDims) {
    return Status::InvalidArgument("malformed scoring function header");
  }
  if (family == kFnPiecewise && !allow_piecewise) {
    // Also a dialect violation: the encoder never emits a nested
    // piecewise function.
    return Status::InvalidArgument("nested piecewise function");
  }
  std::vector<double> coeffs;
  switch (family) {
    case kFnLinear: {
      TOPKMON_RETURN_IF_ERROR(GetCoefficients(in, dim, &coeffs));
      const double bias = in.GetF64();
      if (!in.ok()) {
        return Status::InvalidArgument("truncated linear function bias");
      }
      *out = std::make_shared<LinearFunction>(std::move(coeffs), bias);
      return Status::Ok();
    }
    case kFnProduct:
      TOPKMON_RETURN_IF_ERROR(GetCoefficients(in, dim, &coeffs));
      *out = std::make_shared<ProductFunction>(std::move(coeffs));
      return Status::Ok();
    case kFnSumOfSquares:
      TOPKMON_RETURN_IF_ERROR(GetCoefficients(in, dim, &coeffs));
      *out = std::make_shared<SumOfSquaresFunction>(std::move(coeffs));
      return Status::Ok();
    case kFnPiecewise: {
      const int count = in.GetU8();
      if (!in.ok() || count < 1) {
        return Status::InvalidArgument("bad piecewise piece count");
      }
      std::vector<MonotonePiece> pieces;
      pieces.reserve(static_cast<std::size_t>(count));
      for (int i = 0; i < count; ++i) {
        const Point lo = in.GetPoint();
        const Point hi = in.GetPoint();
        if (!in.ok() || lo.dim() != dim || hi.dim() != dim) {
          return Status::InvalidArgument("malformed piecewise domain");
        }
        for (int d = 0; d < dim; ++d) {
          if (lo[d] > hi[d]) {
            return Status::InvalidArgument("inverted piecewise domain");
          }
        }
        std::shared_ptr<const ScoringFunction> inner;
        TOPKMON_RETURN_IF_ERROR(
            GetFunctionImpl(in, &inner, /*allow_piecewise=*/false));
        pieces.push_back(MonotonePiece{Rect(lo, hi), std::move(inner)});
      }
      auto built = PiecewiseFunction::Create(std::move(pieces));
      if (!built.ok()) {
        return Status::InvalidArgument("malformed piecewise function: " +
                                       built.status().message());
      }
      *out = std::move(built).value();
      return Status::Ok();
    }
    default:
      return Status::InvalidArgument("unknown scoring-function family tag " +
                                     std::to_string(family));
  }
}

}  // namespace

Status GetFunction(ByteReader& in,
                   std::shared_ptr<const ScoringFunction>* out) {
  return GetFunctionImpl(in, out, /*allow_piecewise=*/true);
}

Status GetQuerySpec(ByteReader& in, QuerySpec* out) {
  out->id = in.GetU32();
  out->k = static_cast<int>(in.GetU32());
  TOPKMON_RETURN_IF_ERROR(GetFunction(in, &out->function));
  const std::uint8_t has_constraint = in.GetU8();
  if (has_constraint == 1) {
    const Point lo = in.GetPoint();
    const Point hi = in.GetPoint();
    if (!in.ok() || lo.dim() != hi.dim()) {
      return Status::InvalidArgument("malformed constraint rectangle");
    }
    for (int i = 0; i < lo.dim(); ++i) {
      if (lo[i] > hi[i]) {
        return Status::InvalidArgument("inverted constraint rectangle");
      }
    }
    out->constraint = Rect(lo, hi);
  } else if (has_constraint != 0) {
    return Status::InvalidArgument("bad constraint presence byte");
  }
  if (!in.ok()) return Status::InvalidArgument("truncated query spec");
  return Status::Ok();
}

}  // namespace wire
}  // namespace topkmon
