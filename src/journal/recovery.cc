#include "journal/recovery.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "journal/journal_reader.h"

namespace topkmon {
namespace {

/// Validates that journaled state is dimensionally compatible with the
/// engine before anything is applied (the wrong engine factory should
/// fail loudly, not corrupt silently).
Status CheckDims(const JournalSnapshot& snap, const MonitorEngine& engine) {
  if (!snap.window.empty() &&
      snap.window.front().position.dim() != engine.dim()) {
    return Status::FailedPrecondition(
        "journal window is " +
        std::to_string(snap.window.front().position.dim()) +
        "-dimensional but the engine expects " +
        std::to_string(engine.dim()));
  }
  for (const JournaledQuery& q : snap.live_queries) {
    TOPKMON_RETURN_IF_ERROR(q.spec.Validate(engine.dim()));
  }
  return Status::Ok();
}

}  // namespace

std::string RecoveryReport::ToString() const {
  std::ostringstream os;
  if (!recovered) {
    os << "no journal to recover (segments_found=" << segments_found << ")";
    return os.str();
  }
  os << "recovered from " << segment << ": cycles=" << cycles_replayed
     << " records=" << records_replayed << " registers=" << registers_replayed
     << " unregisters=" << unregisters_replayed
     << " live_queries=" << live_queries.size()
     << " window=" << window_size << " last_cycle_ts=" << last_cycle_ts
     << " next_record_id=" << next_record_id
     << " next_query_id=" << next_query_id;
  if (torn_tail || corrupt_record) {
    os << (corrupt_record ? " [corrupt record: " : " [torn tail: ")
       << tail_detail << ", " << tail_bytes_dropped << " bytes dropped]";
  }
  return os.str();
}

Result<RecoveryReport> RecoveryDriver::Replay(const std::string& dir,
                                              MonitorEngine& engine) {
  RecoveryReport report;
  auto segments = ListSegments(dir);
  if (!segments.ok()) return segments.status();
  report.segments_found = segments->size();

  // Newest segment with a usable anchor snapshot wins. A newer segment
  // without one can only be the product of a crash mid-rotation, before
  // the previous segments were garbage-collected — fall back.
  std::unique_ptr<CycleJournalReader> reader;
  JournalSnapshot anchor;
  for (auto it = segments->rbegin(); it != segments->rend(); ++it) {
    auto candidate = CycleJournalReader::Open(it->path);
    if (!candidate.ok()) {
      ++report.segments_skipped;
      continue;
    }
    CycleJournalReader::Outcome first = (*candidate)->Next();
    if (first.kind != CycleJournalReader::Kind::kRecord ||
        first.record.type != JournalRecordType::kSnapshot) {
      ++report.segments_skipped;
      continue;
    }
    reader = std::move(*candidate);
    anchor = std::move(first.record.snapshot);
    report.segment = it->path;
    break;
  }
  if (reader == nullptr) {
    // Empty directory (or no segment survived with an anchor): fresh
    // start. Defaults in the report already say "begin from zero".
    return report;
  }

  if (engine.WindowSize() != 0) {
    return Status::FailedPrecondition(
        "recovery requires a freshly constructed engine");
  }
  TOPKMON_RETURN_IF_ERROR(CheckDims(anchor, engine));

  // 1. Restore the window image, then the live query set (each query's
  //    initial result is recomputed over the restored window, exactly as
  //    at its original registration).
  EngineSnapshot image;
  image.last_cycle = anchor.last_cycle_ts;
  image.window = std::move(anchor.window);
  TOPKMON_RETURN_IF_ERROR(engine.RestoreState(image));

  std::vector<JournaledQuery> live;
  std::unordered_map<QueryId, std::size_t> live_index;
  auto register_query = [&](const JournaledQuery& q) {
    const Status st = engine.RegisterQuery(q.spec);
    if (!st.ok()) {
      ++report.apply_rejections;
      return;
    }
    live_index[q.spec.id] = live.size();
    live.push_back(q);
  };
  auto unregister_query = [&](QueryId id) {
    const Status st = engine.UnregisterQuery(id);
    auto it = live_index.find(id);
    if (it != live_index.end()) {
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(it->second));
      live_index.clear();
      for (std::size_t i = 0; i < live.size(); ++i) {
        live_index[live[i].spec.id] = i;
      }
    }
    if (!st.ok()) ++report.apply_rejections;
  };
  for (const JournaledQuery& q : anchor.live_queries) register_query(q);

  report.recovered = true;
  report.records_replayed = 1;  // the anchor snapshot
  report.last_cycle_ts = anchor.last_cycle_ts;
  report.next_record_id = anchor.next_record_id;
  report.next_query_id = anchor.next_query_id;

  // 2. Replay everything the original process applied after the anchor.
  while (true) {
    CycleJournalReader::Outcome outcome = reader->Next();
    if (outcome.kind == CycleJournalReader::Kind::kEnd) break;
    if (outcome.kind == CycleJournalReader::Kind::kIoError) {
      // The bytes on disk may be intact — failing (so the operator can
      // retry) beats silently rolling state back to this offset.
      return Status::Internal("I/O error reading " + report.segment + ": " +
                              outcome.detail);
    }
    if (outcome.kind == CycleJournalReader::Kind::kTorn ||
        outcome.kind == CycleJournalReader::Kind::kCorrupt) {
      report.torn_tail = outcome.kind == CycleJournalReader::Kind::kTorn;
      report.corrupt_record =
          outcome.kind == CycleJournalReader::Kind::kCorrupt;
      report.tail_bytes_dropped = reader->file_size() - outcome.offset;
      report.tail_detail = outcome.detail;
      break;
    }
    JournalRecord& record = outcome.record;
    switch (record.type) {
      case JournalRecordType::kCycle: {
        const Status st = engine.ProcessCycle(record.cycle_ts, record.batch);
        if (!st.ok()) {
          return Status::Internal(
              "journal replay diverged at cycle ts=" +
              std::to_string(record.cycle_ts) + ": " + st.ToString() +
              " (was this journal written by a differently configured "
              "engine?)");
        }
        ++report.cycles_replayed;
        report.last_cycle_ts = record.cycle_ts;
        if (!record.batch.empty()) {
          report.next_record_id =
              std::max(report.next_record_id, record.batch.back().id + 1);
        }
        break;
      }
      case JournalRecordType::kRegister:
        register_query(record.query);
        ++report.registers_replayed;
        report.next_query_id = std::max(
            report.next_query_id,
            static_cast<std::uint64_t>(record.query.spec.id) + 1);
        break;
      case JournalRecordType::kUnregister:
        unregister_query(record.unregistered);
        ++report.unregisters_replayed;
        break;
      case JournalRecordType::kSnapshot:
        // Snapshots only anchor segments; mid-segment ones are not
        // written. Tolerate and skip if a future version interleaves them.
        break;
    }
    ++report.records_replayed;
  }

  report.live_queries = std::move(live);
  report.window_size = engine.WindowSize();
  return report;
}

}  // namespace topkmon
