#include "journal/recovery.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "journal/journal_reader.h"

namespace topkmon {
namespace {

/// Validates that journaled state is dimensionally compatible with the
/// engine before anything is applied (the wrong engine factory should
/// fail loudly, not corrupt silently).
Status CheckDims(const JournalSnapshot& snap, const MonitorEngine& engine) {
  if (!snap.window.empty() &&
      snap.window.front().position.dim() != engine.dim()) {
    return Status::FailedPrecondition(
        "journal window is " +
        std::to_string(snap.window.front().position.dim()) +
        "-dimensional but the engine expects " +
        std::to_string(engine.dim()));
  }
  for (const JournaledQuery& q : snap.live_queries) {
    TOPKMON_RETURN_IF_ERROR(q.spec.Validate(engine.dim()));
  }
  return Status::Ok();
}

}  // namespace

std::string RecoveryReport::ToString() const {
  std::ostringstream os;
  if (!recovered) {
    os << "no journal to recover (segments_found=" << segments_found << ")";
    return os.str();
  }
  os << "recovered from " << segment << ": cycles=" << cycles_replayed
     << " records=" << records_replayed << " registers=" << registers_replayed
     << " unregisters=" << unregisters_replayed
     << " live_queries=" << live_queries.size()
     << " window=" << window_size << " last_cycle_ts=" << last_cycle_ts
     << " next_record_id=" << next_record_id
     << " next_query_id=" << next_query_id;
  if (torn_tail || corrupt_record) {
    os << (corrupt_record ? " [corrupt record: " : " [torn tail: ")
       << tail_detail << ", " << tail_bytes_dropped << " bytes dropped]";
  }
  return os.str();
}

JournalApplier::JournalApplier(MonitorEngine& engine, Hooks hooks)
    : engine_(engine), hooks_(std::move(hooks)) {
  if (!hooks_.register_query) {
    hooks_.register_query = [this](const JournaledQuery& q) {
      return engine_.RegisterQuery(q.spec);
    };
  }
  if (!hooks_.unregister_query) {
    hooks_.unregister_query = [this](QueryId id) {
      return engine_.UnregisterQuery(id);
    };
  }
}

void JournalApplier::RegisterOne(const JournaledQuery& query) {
  const Status st = hooks_.register_query(query);
  if (!st.ok()) {
    ++apply_rejections_;
    return;
  }
  live_index_[query.spec.id] = live_.size();
  live_.push_back(query);
}

void JournalApplier::UnregisterOne(QueryId id) {
  const Status st = hooks_.unregister_query(id);
  auto it = live_index_.find(id);
  if (it != live_index_.end()) {
    live_.erase(live_.begin() + static_cast<std::ptrdiff_t>(it->second));
    live_index_.clear();
    for (std::size_t i = 0; i < live_.size(); ++i) {
      live_index_[live_[i].spec.id] = i;
    }
  }
  if (!st.ok()) ++apply_rejections_;
}

Status JournalApplier::ApplyAnchor(JournalSnapshot anchor) {
  if (engine_.WindowSize() != 0) {
    return Status::FailedPrecondition(
        "anchor replay requires a freshly constructed engine");
  }
  TOPKMON_RETURN_IF_ERROR(CheckDims(anchor, engine_));

  // Restore the window image first, then the live query set: each
  // query's initial result is recomputed over the restored window,
  // exactly as at its original registration.
  EngineSnapshot image;
  image.last_cycle = anchor.last_cycle_ts;
  image.window = std::move(anchor.window);
  TOPKMON_RETURN_IF_ERROR(engine_.RestoreState(image));
  for (const JournaledQuery& q : anchor.live_queries) RegisterOne(q);

  records_applied_ = 1;  // the anchor snapshot
  last_cycle_ts_ = anchor.last_cycle_ts;
  next_record_id_ = anchor.next_record_id;
  next_query_id_ = anchor.next_query_id;
  return Status::Ok();
}

Status JournalApplier::Apply(const JournalRecord& record) {
  switch (record.type) {
    case JournalRecordType::kCycle: {
      const Status st = engine_.ProcessCycle(record.cycle_ts, record.batch);
      if (!st.ok()) {
        return Status::Internal(
            "journal replay diverged at cycle ts=" +
            std::to_string(record.cycle_ts) + ": " + st.ToString() +
            " (was this journal written by a differently configured "
            "engine?)");
      }
      ++cycles_applied_;
      last_cycle_ts_ = record.cycle_ts;
      if (!record.batch.empty()) {
        next_record_id_ =
            std::max(next_record_id_, record.batch.back().id + 1);
      }
      break;
    }
    case JournalRecordType::kRegister:
      RegisterOne(record.query);
      ++registers_applied_;
      next_query_id_ = std::max(
          next_query_id_,
          static_cast<std::uint64_t>(record.query.spec.id) + 1);
      break;
    case JournalRecordType::kUnregister:
      UnregisterOne(record.unregistered);
      ++unregisters_applied_;
      break;
    case JournalRecordType::kSnapshot:
      // A later segment's anchor snapshot describes exactly the state
      // this applier already reached by replaying the records before it
      // — skip it (continuous followers cross segment boundaries here).
      break;
  }
  ++records_applied_;
  return Status::Ok();
}

Result<RecoveryReport> RecoveryDriver::Replay(const std::string& dir,
                                              MonitorEngine& engine) {
  RecoveryReport report;
  auto segments = ListSegments(dir);
  if (!segments.ok()) return segments.status();
  report.segments_found = segments->size();

  // Newest segment with a usable anchor snapshot wins. A newer segment
  // without one can only be the product of a crash mid-rotation, before
  // the previous segments were garbage-collected — fall back.
  std::unique_ptr<CycleJournalReader> reader;
  JournalSnapshot anchor;
  for (auto it = segments->rbegin(); it != segments->rend(); ++it) {
    auto candidate = CycleJournalReader::Open(it->path);
    if (!candidate.ok()) {
      ++report.segments_skipped;
      continue;
    }
    CycleJournalReader::Outcome first = (*candidate)->Next();
    if (first.kind != CycleJournalReader::Kind::kRecord ||
        first.record.type != JournalRecordType::kSnapshot) {
      ++report.segments_skipped;
      continue;
    }
    reader = std::move(*candidate);
    anchor = std::move(first.record.snapshot);
    report.segment = it->path;
    break;
  }
  if (reader == nullptr) {
    // Empty directory (or no segment survived with an anchor): fresh
    // start. Defaults in the report already say "begin from zero".
    return report;
  }

  JournalApplier applier(engine);
  TOPKMON_RETURN_IF_ERROR(applier.ApplyAnchor(std::move(anchor)));
  report.recovered = true;

  // Replay everything the original process applied after the anchor.
  while (true) {
    CycleJournalReader::Outcome outcome = reader->Next();
    if (outcome.kind == CycleJournalReader::Kind::kEnd) break;
    if (outcome.kind == CycleJournalReader::Kind::kIoError) {
      // The bytes on disk may be intact — failing (so the operator can
      // retry) beats silently rolling state back to this offset.
      return Status::Internal("I/O error reading " + report.segment + ": " +
                              outcome.detail);
    }
    if (outcome.kind == CycleJournalReader::Kind::kTorn ||
        outcome.kind == CycleJournalReader::Kind::kCorrupt) {
      report.torn_tail = outcome.kind == CycleJournalReader::Kind::kTorn;
      report.corrupt_record =
          outcome.kind == CycleJournalReader::Kind::kCorrupt;
      report.tail_bytes_dropped = reader->file_size() - outcome.offset;
      report.tail_detail = outcome.detail;
      break;
    }
    TOPKMON_RETURN_IF_ERROR(applier.Apply(outcome.record));
  }

  report.cycles_replayed = applier.cycles_applied();
  report.records_replayed = applier.records_applied();
  report.registers_replayed = applier.registers_applied();
  report.unregisters_replayed = applier.unregisters_applied();
  report.apply_rejections = applier.apply_rejections();
  report.last_cycle_ts = applier.last_cycle_ts();
  report.next_record_id = applier.next_record_id();
  report.next_query_id = applier.next_query_id();
  report.live_queries = applier.live_queries();
  report.window_size = engine.WindowSize();
  return report;
}

}  // namespace topkmon
