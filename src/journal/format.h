// On-disk format of the durable cycle journal.
//
// The journal is a write-ahead log of everything that mutates an engine:
// processing cycles (the arrival batches the driver applied), query
// registrations and terminations, and periodic snapshot records carrying
// an engine-ready image of the window so recovery never replays more than
// one segment. The byte-level layout is specified in
// docs/JOURNAL_FORMAT.md, which is kept in lockstep with this header (CI
// fails when kJournalFormatVersion diverges between the two).
//
// Layout summary (all integers little-endian, fixed width):
//   segment  := header frame*
//   header   := magic:u64 version:u32 reserved:u32
//   frame    := body_len:u32 crc32(body):u32 body
//   body     := type:u8 payload
// Every segment begins with a snapshot record, making each segment
// self-contained: recovery reads exactly one segment — the newest one
// whose leading snapshot is intact.

#ifndef TOPKMON_JOURNAL_FORMAT_H_
#define TOPKMON_JOURNAL_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/record.h"
#include "common/status.h"
#include "core/query.h"

namespace topkmon {

/// First eight bytes of every segment file: "TKMJRNL1" in file order.
inline constexpr std::uint64_t kJournalMagic = 0x314C4E524A4D4B54ull;

/// Version of the record encodings below. Bump on any incompatible layout
/// change and document the migration in docs/JOURNAL_FORMAT.md (CI checks
/// that the spec's version matches this constant).
///
/// v2: the piecewise-monotone scoring-function family (wire tag 4) became
/// journalable. Every v1 byte sequence is also valid v2, so this build
/// still reads v1 segments; v2 segments containing a piecewise register
/// record are refused by v1 builds (unknown family tag).
inline constexpr std::uint32_t kJournalFormatVersion = 2;

/// Bytes of the segment header (magic + version + reserved).
inline constexpr std::size_t kSegmentHeaderBytes = 16;

/// Bytes of a frame prologue (body_len + crc32).
inline constexpr std::size_t kFrameHeaderBytes = 8;

/// Upper bound on one frame body; a length prefix beyond this is treated
/// as corruption rather than an allocation request.
inline constexpr std::uint32_t kMaxRecordBytes = 1u << 30;

/// Frame body type tags.
enum class JournalRecordType : std::uint8_t {
  kSnapshot = 1,    ///< engine-ready window + live query set (segment anchor)
  kCycle = 2,       ///< one processing cycle: timestamp + arrival batch
  kRegister = 3,    ///< query registration (spec + owning session label)
  kUnregister = 4,  ///< query termination
};

/// A registered query as journaled: the full spec plus the diagnostic
/// label of the session that owns it, so recovery can rebuild per-client
/// session ownership.
struct JournaledQuery {
  QuerySpec spec;
  std::string owner_label;
};

/// Snapshot payload: everything needed to rebuild a fresh engine (and the
/// service-level id allocators) without reading older segments.
struct JournalSnapshot {
  Timestamp last_cycle_ts = 0;     ///< timestamp of the last applied cycle
  RecordId next_record_id = 0;     ///< next id the ingest path will assign
  std::uint64_t next_query_id = 1; ///< next id the service will assign
  std::vector<Record> window;      ///< valid records in arrival (id) order
  std::vector<JournaledQuery> live_queries;  ///< in registration order
};

/// One decoded journal record (tagged by `type`; only the matching member
/// is meaningful).
struct JournalRecord {
  JournalRecordType type = JournalRecordType::kCycle;
  Timestamp cycle_ts = 0;          ///< kCycle
  std::vector<Record> batch;       ///< kCycle
  JournaledQuery query;            ///< kRegister
  QueryId unregistered = 0;        ///< kUnregister
  JournalSnapshot snapshot;        ///< kSnapshot
};

/// CRC-32C (Castagnoli, reflected, polynomial 0x82F63B38) of `n` bytes,
/// continuing from `seed` (pass 0 to start). Uses the SSE4.2 crc32
/// instruction where available (every journaled byte is checksummed on
/// the cycle-append hot path); check value: Crc32("123456789") ==
/// 0xE3069283.
std::uint32_t Crc32(const void* data, std::size_t n, std::uint32_t seed = 0);

// ---- encoding ---------------------------------------------------------

/// Appends the 16-byte segment header to *out.
void EncodeSegmentHeader(std::string* out);

/// Appends a full frame (prologue + body) for the given record body.
void EncodeFrame(const std::string& body, std::string* out);

/// Body builders (type byte + payload). EncodeRegisterBody fails with
/// Unimplemented for scoring-function types the journal cannot encode
/// (the Linear / Product / SumOfSquares / Piecewise families are
/// journalable).
void EncodeCycleBody(Timestamp ts, RecordSpan batch, std::string* out);
Status EncodeRegisterBody(const JournaledQuery& query, std::string* out);
void EncodeUnregisterBody(QueryId id, std::string* out);
Status EncodeSnapshotBody(const JournalSnapshot& snapshot, std::string* out);

// ---- decoding ---------------------------------------------------------

/// Validates a segment header. InvalidArgument on bad magic,
/// Unimplemented on an unknown (newer) format version.
Status DecodeSegmentHeader(const char* data, std::size_t n);

/// Decodes one frame body (type byte + payload) into *out.
/// InvalidArgument on any malformed content (treated as corruption by the
/// reader; the CRC already vouched for bit-level integrity).
Status DecodeBody(const char* data, std::size_t n, JournalRecord* out);

/// Outcome of scanning an in-memory byte buffer for one journal frame.
/// The file-based CycleJournalReader is the recovery-time reader; this is
/// the streaming flavor the replication follower uses to apply frames as
/// their bytes arrive off the wire (a partial frame is kNeedMore — more
/// bytes are coming — not a torn tail).
enum class JournalFrameParse {
  kNeedMore,  ///< prefix of a valid frame; wait for more bytes
  kFrame,     ///< a complete, CRC-verified frame was extracted
  kBad,       ///< implausible length or CRC mismatch (corruption)
};

/// Tries to extract one frame from `data[0..n)`. On kFrame, *body /
/// *body_len reference the frame body inside `data` and *consumed is the
/// full frame size to discard (the body still needs DecodeBody). On kBad,
/// *detail describes the damage.
JournalFrameParse TryParseJournalFrame(const char* data, std::size_t n,
                                       const char** body,
                                       std::size_t* body_len,
                                       std::size_t* consumed,
                                       std::string* detail);

/// Segment file name for index `i`: "segment-000000000042.wal".
std::string SegmentFileName(std::uint64_t index);

/// Parses a segment file name; returns false for other files.
bool ParseSegmentFileName(const std::string& name, std::uint64_t* index);

}  // namespace topkmon

#endif  // TOPKMON_JOURNAL_FORMAT_H_
