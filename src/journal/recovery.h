// RecoveryDriver — rebuilds an engine from the cycle journal at startup.
//
// Recovery reads exactly one segment: the newest one whose leading
// snapshot record is intact (every segment starts with one — see
// journal_writer.h). The snapshot restores the window image and the live
// query set; the records after it replay, in order, every cycle and
// query-lifetime event the original process applied after taking that
// snapshot. Because the engines are deterministic functions of (window
// state, registered queries, arrival batches), the replayed engine's
// top-k results — and the delta stream it produces from the first
// post-recovery cycle on — match the uninterrupted run cycle-for-cycle
// (tests/journal/recovery_test.cc holds this against BruteForceEngine
// ground truth).
//
// A torn tail (crash mid-append) is truncated silently; a corrupt record
// (CRC or content failure on a complete frame) also stops replay and is
// flagged in the report, since nothing after an untrusted record can be
// trusted either.

#ifndef TOPKMON_JOURNAL_RECOVERY_H_
#define TOPKMON_JOURNAL_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "journal/format.h"

namespace topkmon {

/// What recovery found and did. Returned to the caller (and surfaced by
/// MonitorService::Open) so operators can see exactly what was restored.
struct RecoveryReport {
  /// False when the directory held no replayable segment (first boot or
  /// empty dir): the engine is untouched and the ids below are defaults.
  bool recovered = false;

  std::string segment;                ///< path of the segment replayed
  std::uint64_t segments_found = 0;   ///< segment files in the directory
  std::uint64_t segments_skipped = 0; ///< newer segments without a usable
                                      ///< anchor snapshot (crash during
                                      ///< rotation)
  std::uint64_t cycles_replayed = 0;
  std::uint64_t records_replayed = 0;  ///< all journal records applied
  std::uint64_t registers_replayed = 0;
  std::uint64_t unregisters_replayed = 0;
  /// Register/unregister records the engine rejected at replay exactly as
  /// it did originally (e.g. a compensated registration); harmless.
  std::uint64_t apply_rejections = 0;

  bool torn_tail = false;       ///< segment ended mid-frame (crash tail)
  bool corrupt_record = false;  ///< CRC/content failure on a full frame
  std::uint64_t tail_bytes_dropped = 0;
  std::string tail_detail;

  Timestamp last_cycle_ts = 0;
  RecordId next_record_id = 0;      ///< resume point for ingest record ids
  std::uint64_t next_query_id = 1;  ///< resume point for query ids
  std::size_t window_size = 0;      ///< engine window size after recovery

  /// Queries live at the end of replay, in registration order — the set
  /// the service re-binds to recovered sessions.
  std::vector<JournaledQuery> live_queries;

  std::string ToString() const;
};

/// Applies journal records to an engine in order, keeping the replay
/// bookkeeping (live query set, id resume points, counters) that both
/// crash recovery and the replication follower need. RecoveryDriver runs
/// one applier over one segment at startup; a follower keeps one alive
/// and feeds it records continuously as journal bytes arrive from the
/// leader.
class JournalApplier {
 public:
  /// Query-lifetime hooks. By default the applier registers/unregisters
  /// straight on the engine; a service-level owner overrides them to
  /// route the event through its session/subscription bookkeeping (the
  /// hook owns calling the engine then). A non-OK return is counted as
  /// an apply rejection — exactly how the original process treated the
  /// same refusal — never as a replay failure.
  struct Hooks {
    std::function<Status(const JournaledQuery&)> register_query;
    std::function<Status(QueryId)> unregister_query;
  };

  explicit JournalApplier(MonitorEngine& engine, Hooks hooks = {});

  /// Restores the anchor snapshot into the engine (which must be freshly
  /// constructed) and registers its live queries. Takes the anchor by
  /// value so the window image (the dominant allocation) moves instead
  /// of copying. Fails on dimensionality mismatches and restore errors.
  Status ApplyAnchor(JournalSnapshot anchor);

  /// Applies one post-anchor record. kSnapshot records are skipped (a
  /// later segment's anchor describes state this applier already holds).
  /// Fails only on a cycle the engine refuses — state divergence, always
  /// a configuration bug.
  Status Apply(const JournalRecord& record);

  // ---- replay bookkeeping ---------------------------------------------
  Timestamp last_cycle_ts() const { return last_cycle_ts_; }
  RecordId next_record_id() const { return next_record_id_; }
  std::uint64_t next_query_id() const { return next_query_id_; }
  std::uint64_t cycles_applied() const { return cycles_applied_; }
  std::uint64_t records_applied() const { return records_applied_; }
  std::uint64_t registers_applied() const { return registers_applied_; }
  std::uint64_t unregisters_applied() const { return unregisters_applied_; }
  std::uint64_t apply_rejections() const { return apply_rejections_; }
  /// Queries live right now, in registration order.
  const std::vector<JournaledQuery>& live_queries() const { return live_; }

 private:
  void RegisterOne(const JournaledQuery& query);
  void UnregisterOne(QueryId id);

  MonitorEngine& engine_;
  Hooks hooks_;
  std::vector<JournaledQuery> live_;
  std::unordered_map<QueryId, std::size_t> live_index_;
  Timestamp last_cycle_ts_ = 0;
  RecordId next_record_id_ = 0;
  std::uint64_t next_query_id_ = 1;
  std::uint64_t cycles_applied_ = 0;
  std::uint64_t records_applied_ = 0;
  std::uint64_t registers_applied_ = 0;
  std::uint64_t unregisters_applied_ = 0;
  std::uint64_t apply_rejections_ = 0;
};

/// Replays the journal in `dir` into `engine`.
class RecoveryDriver {
 public:
  /// `engine` must be freshly constructed: empty window, no queries, no
  /// delta callback (replay must not re-deliver historic deltas). On an
  /// empty/missing journal directory returns recovered=false and leaves
  /// the engine untouched. Fails on I/O errors, on a dimensionality
  /// mismatch between the journal and the engine, and on any cycle the
  /// engine refuses to re-apply (which indicates the wrong engine
  /// configuration for this journal, e.g. a different window spec).
  static Result<RecoveryReport> Replay(const std::string& dir,
                                       MonitorEngine& engine);
};

}  // namespace topkmon

#endif  // TOPKMON_JOURNAL_RECOVERY_H_
