// RecoveryDriver — rebuilds an engine from the cycle journal at startup.
//
// Recovery reads exactly one segment: the newest one whose leading
// snapshot record is intact (every segment starts with one — see
// journal_writer.h). The snapshot restores the window image and the live
// query set; the records after it replay, in order, every cycle and
// query-lifetime event the original process applied after taking that
// snapshot. Because the engines are deterministic functions of (window
// state, registered queries, arrival batches), the replayed engine's
// top-k results — and the delta stream it produces from the first
// post-recovery cycle on — match the uninterrupted run cycle-for-cycle
// (tests/journal/recovery_test.cc holds this against BruteForceEngine
// ground truth).
//
// A torn tail (crash mid-append) is truncated silently; a corrupt record
// (CRC or content failure on a complete frame) also stops replay and is
// flagged in the report, since nothing after an untrusted record can be
// trusted either.

#ifndef TOPKMON_JOURNAL_RECOVERY_H_
#define TOPKMON_JOURNAL_RECOVERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.h"
#include "journal/format.h"

namespace topkmon {

/// What recovery found and did. Returned to the caller (and surfaced by
/// MonitorService::Open) so operators can see exactly what was restored.
struct RecoveryReport {
  /// False when the directory held no replayable segment (first boot or
  /// empty dir): the engine is untouched and the ids below are defaults.
  bool recovered = false;

  std::string segment;                ///< path of the segment replayed
  std::uint64_t segments_found = 0;   ///< segment files in the directory
  std::uint64_t segments_skipped = 0; ///< newer segments without a usable
                                      ///< anchor snapshot (crash during
                                      ///< rotation)
  std::uint64_t cycles_replayed = 0;
  std::uint64_t records_replayed = 0;  ///< all journal records applied
  std::uint64_t registers_replayed = 0;
  std::uint64_t unregisters_replayed = 0;
  /// Register/unregister records the engine rejected at replay exactly as
  /// it did originally (e.g. a compensated registration); harmless.
  std::uint64_t apply_rejections = 0;

  bool torn_tail = false;       ///< segment ended mid-frame (crash tail)
  bool corrupt_record = false;  ///< CRC/content failure on a full frame
  std::uint64_t tail_bytes_dropped = 0;
  std::string tail_detail;

  Timestamp last_cycle_ts = 0;
  RecordId next_record_id = 0;      ///< resume point for ingest record ids
  std::uint64_t next_query_id = 1;  ///< resume point for query ids
  std::size_t window_size = 0;      ///< engine window size after recovery

  /// Queries live at the end of replay, in registration order — the set
  /// the service re-binds to recovered sessions.
  std::vector<JournaledQuery> live_queries;

  std::string ToString() const;
};

/// Replays the journal in `dir` into `engine`.
class RecoveryDriver {
 public:
  /// `engine` must be freshly constructed: empty window, no queries, no
  /// delta callback (replay must not re-deliver historic deltas). On an
  /// empty/missing journal directory returns recovered=false and leaves
  /// the engine untouched. Fails on I/O errors, on a dimensionality
  /// mismatch between the journal and the engine, and on any cycle the
  /// engine refuses to re-apply (which indicates the wrong engine
  /// configuration for this journal, e.g. a different window spec).
  static Result<RecoveryReport> Replay(const std::string& dir,
                                       MonitorEngine& engine);
};

}  // namespace topkmon

#endif  // TOPKMON_JOURNAL_RECOVERY_H_
