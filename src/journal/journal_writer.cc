#include "journal/journal_writer.h"

#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "journal/journal_reader.h"
#include "util/fs.h"

namespace topkmon {
namespace {

using fs::ErrnoStatus;
using fs::MakeDirs;

/// Writes all of `bytes` to `fd`, riding out EINTR and partial writes.
Status WriteAllTo(int fd, const std::string& path,
                  const std::string& bytes) {
  const char* p = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write " + path, errno);
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

Result<SyncPolicy> ParseSyncPolicy(const std::string& name) {
  if (name == "none") return SyncPolicy::kNone;
  if (name == "interval") return SyncPolicy::kInterval;
  if (name == "always") return SyncPolicy::kAlways;
  return Status::InvalidArgument("unknown sync policy '" + name +
                                 "' (expected none|interval|always)");
}

const char* SyncPolicyName(SyncPolicy policy) {
  switch (policy) {
    case SyncPolicy::kNone: return "none";
    case SyncPolicy::kInterval: return "interval";
    case SyncPolicy::kAlways: return "always";
  }
  return "?";
}

CycleJournalWriter::CycleJournalWriter(const JournalOptions& options,
                                       std::uint64_t next_index)
    : options_(options), segment_index_(next_index) {}

Result<std::unique_ptr<CycleJournalWriter>> CycleJournalWriter::Open(
    const JournalOptions& options, const JournalSnapshot& initial,
    bool resuming) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("journal directory is empty");
  }
  TOPKMON_RETURN_IF_ERROR(MakeDirs(options.dir));
  auto existing = ListSegments(options.dir);
  if (!existing.ok()) return existing.status();
  const std::uint64_t next_index =
      existing->empty() ? 0 : existing->back().index + 1;
  if (!resuming && next_index != 0) {
    return Status::FailedPrecondition(
        "journal directory " + options.dir + " already holds " +
        std::to_string(existing->size()) +
        " segment(s); recover it (MonitorService::Open) or point the "
        "writer at an empty directory");
  }
  std::unique_ptr<CycleJournalWriter> writer(
      new CycleJournalWriter(options, next_index));
  TOPKMON_RETURN_IF_ERROR(writer->OpenSegment(initial, next_index));
  return writer;
}

CycleJournalWriter::~CycleJournalWriter() { Close(); }

Status CycleJournalWriter::OpenSegment(const JournalSnapshot& snapshot,
                                       std::uint64_t index) {
  // Build the new segment on local state and commit the writer to it
  // only once its anchor snapshot is durable; a failed rotation leaves
  // the current segment (and every member) exactly as it was, so
  // subsequent appends keep landing somewhere recovery can read.
  const std::string path = options_.dir + "/" + SegmentFileName(index);
  const int fd =
      ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0666);
  if (fd < 0) {
    ++stats_.append_failures;
    return ErrnoStatus("open " + path, errno);
  }
  std::string bytes;
  EncodeSegmentHeader(&bytes);
  std::string body;
  Status st = EncodeSnapshotBody(snapshot, &body);
  if (st.ok()) {
    EncodeFrame(body, &bytes);
    st = WriteAllTo(fd, path, bytes);
  }
  if (st.ok()) {
    ++stats_.sync_calls;
    // The snapshot is the recovery anchor — it is always synced, and so
    // is its directory entry.
    if (::fdatasync(fd) != 0) st = ErrnoStatus("fdatasync " + path, errno);
  }
  if (st.ok()) st = SyncDir();
  if (!st.ok()) {
    ++stats_.append_failures;
    ::close(fd);
    ::unlink(path.c_str());
    return st;
  }
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
  segment_path_ = path;
  segment_index_ = index;
  segment_bytes_ = bytes.size();
  cycles_in_segment_ = 0;
  appends_since_sync_ = 0;
  cycles_since_sync_ = 0;
  last_sync_time_ = std::chrono::steady_clock::now();
  stats_.bytes_written += bytes.size();
  ++stats_.segments_created;
  ++stats_.snapshots_written;
  GarbageCollect();
  return Status::Ok();
}

Status CycleJournalWriter::WriteAll(const std::string& bytes) {
  TOPKMON_RETURN_IF_ERROR(WriteAllTo(fd_, segment_path_, bytes));
  segment_bytes_ += bytes.size();
  stats_.bytes_written += bytes.size();
  return Status::Ok();
}

Status CycleJournalWriter::SyncFd() {
  ++stats_.sync_calls;
  const auto start = std::chrono::steady_clock::now();
  const int rc = ::fdatasync(fd_);
  if (fsync_histogram_ != nullptr) {
    fsync_histogram_->Record(std::chrono::steady_clock::now() - start);
  }
  if (rc != 0) {
    // The tail is still only in page cache: leave the group-commit
    // counters armed so the next append / Sync / SyncIfDue retries
    // instead of reporting the unsynced tail durable.
    return ErrnoStatus("fdatasync " + segment_path_, errno);
  }
  appends_since_sync_ = 0;
  cycles_since_sync_ = 0;
  last_sync_time_ = std::chrono::steady_clock::now();
  return Status::Ok();
}

Status CycleJournalWriter::SyncIfDue() {
  if (closed_ || fd_ < 0 || appends_since_sync_ == 0) return Status::Ok();
  if (options_.sync != SyncPolicy::kInterval ||
      options_.sync_interval_ms.count() <= 0 ||
      std::chrono::steady_clock::now() - last_sync_time_ <
          options_.sync_interval_ms) {
    return Status::Ok();
  }
  Status st = SyncFd();
  if (!st.ok()) ++stats_.append_failures;
  return st;
}

Status CycleJournalWriter::Sync() {
  if (closed_ || fd_ < 0) {
    return Status::FailedPrecondition("journal writer is closed");
  }
  if (appends_since_sync_ == 0) return Status::Ok();
  Status st = SyncFd();
  if (!st.ok()) ++stats_.append_failures;
  return st;
}

Status CycleJournalWriter::SyncDir() {
  const int dfd = ::open(options_.dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) return ErrnoStatus("open " + options_.dir, errno);
  const int rc = ::fsync(dfd);
  const int err = errno;
  ::close(dfd);
  if (rc != 0) return ErrnoStatus("fsync " + options_.dir, err);
  return Status::Ok();
}

void CycleJournalWriter::GarbageCollect() {
  if (options_.retain_old_segments) return;
  // Keep the newest retain_segment_count segments (the current one plus
  // the replication horizon); everything older is superseded history.
  const std::uint64_t keep = std::max<std::uint64_t>(
      1, options_.retain_segment_count);
  if (segment_index_ + 1 < keep) return;  // nothing old enough yet
  const std::uint64_t first_kept = segment_index_ + 1 - keep;
  auto existing = ListSegments(options_.dir);
  if (!existing.ok()) return;  // best-effort
  for (const SegmentInfo& segment : *existing) {
    if (segment.index >= first_kept) continue;
    if (::unlink(segment.path.c_str()) == 0) ++stats_.segments_deleted;
  }
}

Status CycleJournalWriter::AppendScratchFrame(bool is_cycle) {
  if (closed_ || fd_ < 0) {
    ++stats_.append_failures;
    return Status::FailedPrecondition("journal writer is closed");
  }
  const std::size_t body_len = frame_scratch_.size() - kFrameHeaderBytes;
  const std::uint32_t len32 = static_cast<std::uint32_t>(body_len);
  const std::uint32_t crc =
      Crc32(frame_scratch_.data() + kFrameHeaderBytes, body_len);
  char* prologue = &frame_scratch_[0];
  for (int i = 0; i < 4; ++i) {
    prologue[i] = static_cast<char>(len32 >> (8 * i));
    prologue[4 + i] = static_cast<char>(crc >> (8 * i));
  }
  Status st = WriteAll(frame_scratch_);
  if (st.ok()) {
    ++appends_since_sync_;
    if (is_cycle) ++cycles_since_sync_;
    bool sync_now = options_.sync == SyncPolicy::kAlways;
    if (options_.sync == SyncPolicy::kInterval) {
      // Group commit: whichever batching threshold trips first.
      sync_now =
          appends_since_sync_ >= std::max<std::uint64_t>(
                                     1, options_.sync_every_records) ||
          (options_.sync_interval_cycles > 0 &&
           cycles_since_sync_ >= options_.sync_interval_cycles) ||
          (options_.sync_interval_ms.count() > 0 &&
           std::chrono::steady_clock::now() - last_sync_time_ >=
               options_.sync_interval_ms);
    }
    if (sync_now) st = SyncFd();
  }
  if (!st.ok()) {
    ++stats_.append_failures;
    return st;
  }
  ++stats_.records_appended;
  if (is_cycle) {
    ++stats_.cycles_appended;
    ++cycles_in_segment_;
  }
  return Status::Ok();
}

Status CycleJournalWriter::AppendCycle(Timestamp ts, RecordSpan batch) {
  frame_scratch_.clear();
  frame_scratch_.resize(kFrameHeaderBytes);  // prologue placeholder
  EncodeCycleBody(ts, batch, &frame_scratch_);
  return AppendScratchFrame(/*is_cycle=*/true);
}

Status CycleJournalWriter::AppendRegister(const JournaledQuery& query) {
  frame_scratch_.clear();
  frame_scratch_.resize(kFrameHeaderBytes);
  // An encode refusal (Unimplemented: non-journalable scoring function)
  // is a rejection of the caller's input, not a journal failure — the
  // segment is untouched and stays healthy.
  TOPKMON_RETURN_IF_ERROR(EncodeRegisterBody(query, &frame_scratch_));
  return AppendScratchFrame(/*is_cycle=*/false);
}

Status CycleJournalWriter::AppendUnregister(QueryId id) {
  frame_scratch_.clear();
  frame_scratch_.resize(kFrameHeaderBytes);
  EncodeUnregisterBody(id, &frame_scratch_);
  return AppendScratchFrame(/*is_cycle=*/false);
}

bool CycleJournalWriter::SnapshotDue() const {
  if (closed_) return false;
  if (segment_bytes_ >= options_.segment_bytes) return true;
  return options_.snapshot_every_cycles > 0 &&
         cycles_in_segment_ >= options_.snapshot_every_cycles;
}

Status CycleJournalWriter::RotateWithSnapshot(
    const JournalSnapshot& snapshot) {
  if (closed_ || fd_ < 0) {
    return Status::FailedPrecondition("journal writer is closed");
  }
  return OpenSegment(snapshot, segment_index_ + 1);
}

Status CycleJournalWriter::Close() {
  if (closed_) return Status::Ok();
  closed_ = true;
  if (fd_ < 0) return Status::Ok();
  Status st = SyncFd();
  if (::close(fd_) != 0 && st.ok()) {
    st = ErrnoStatus("close " + segment_path_, errno);
  }
  fd_ = -1;
  return st;
}

}  // namespace topkmon
