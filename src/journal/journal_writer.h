// CycleJournalWriter — append side of the durable cycle journal.
//
// One writer owns a journal directory and appends length-prefixed,
// CRC-checked records to the current segment file. Every segment begins
// with a snapshot record (an engine-ready image of the window plus the
// live query set), making each segment self-contained: recovery reads
// exactly one segment. Rotation — triggered by segment size or by the
// snapshot interval — writes the next snapshot as the first record of a
// fresh segment, fdatasyncs it, and only then garbage-collects the older
// segments, so a crash at any instant leaves at least one segment with an
// intact leading snapshot on disk.
//
// Durability knobs (JournalOptions::sync):
//   kNone     every append reaches the kernel (write(2)); the OS decides
//             when it reaches the platter. Crash of the process loses
//             nothing; crash of the machine loses the page-cache tail.
//   kInterval group commit: fdatasync once several appends have batched
//             up — every `sync_every_records` appends, every
//             `sync_interval_cycles` cycle records, or once
//             `sync_interval_ms` has elapsed since the last sync,
//             whichever trips first (zero disables that trigger). The
//             time trigger is checked on appends and by SyncIfDue(),
//             which the service driver calls on idle loops so a quiet
//             stream still bounds the unsynced window.
//   kAlways   fdatasync after every append (group-commit-free, slowest).
// Snapshot records are always fdatasync'd regardless of policy — they are
// the recovery anchors.
//
// Thread-compatibility: calls must be externally serialized (the service
// holds its engine mutex across every append, which also keeps the
// journal's record order identical to the engine's apply order).

#ifndef TOPKMON_JOURNAL_JOURNAL_WRITER_H_
#define TOPKMON_JOURNAL_JOURNAL_WRITER_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "journal/format.h"
#include "obs/metrics.h"

namespace topkmon {

/// When appended records are pushed to the platter.
enum class SyncPolicy : std::uint8_t {
  kNone = 0,      ///< write(2) only; kernel flushes at its leisure
  kInterval = 1,  ///< fdatasync every sync_every_records appends
  kAlways = 2,    ///< fdatasync after every append
};

/// Parses "none" / "interval" / "always" (for CLI flags).
Result<SyncPolicy> ParseSyncPolicy(const std::string& name);
const char* SyncPolicyName(SyncPolicy policy);

/// Journaling configuration (part of ServiceOptions).
struct JournalOptions {
  /// Journal directory; empty disables journaling entirely.
  std::string dir;
  /// Rotate (and snapshot) once the current segment exceeds this size.
  std::size_t segment_bytes = 8u << 20;
  /// Also rotate after this many cycle records (0 = size-based only).
  std::uint64_t snapshot_every_cycles = 4096;
  SyncPolicy sync = SyncPolicy::kNone;
  /// fdatasync cadence under SyncPolicy::kInterval.
  std::uint64_t sync_every_records = 256;
  /// Group-commit triggers under SyncPolicy::kInterval: also sync after
  /// this many *cycle* records batched since the last sync, or once this
  /// much wall time elapsed since it (0 disables either trigger). Acks
  /// ride behind the batch: a producer that needs an explicit durability
  /// point calls MonitorService::SyncJournal() (the Sync() barrier
  /// below), not a sync per record.
  std::uint64_t sync_interval_cycles = 0;
  std::chrono::milliseconds sync_interval_ms{0};
  /// Keep superseded segments instead of deleting them after rotation.
  bool retain_old_segments = false;
  /// How many of the newest segments survive garbage collection (>= 1;
  /// the current segment always survives). Replicated leaders keep 2+ so
  /// a follower at the tail of the just-sealed segment can finish
  /// shipping it instead of paying a full snapshot resync on every
  /// rotation (the replication horizon); ignored when
  /// retain_old_segments keeps everything.
  std::uint64_t retain_segment_count = 1;
  /// Write a final snapshot segment on clean service shutdown so restart
  /// recovery replays nothing.
  bool snapshot_on_shutdown = true;
};

/// Monotonic writer counters.
struct JournalWriterStats {
  std::uint64_t records_appended = 0;   ///< cycle/register/unregister
  std::uint64_t cycles_appended = 0;
  std::uint64_t snapshots_written = 0;
  std::uint64_t segments_created = 0;
  std::uint64_t segments_deleted = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t sync_calls = 0;
  std::uint64_t append_failures = 0;
};

/// Append-only writer over a journal directory. Create with Open().
class CycleJournalWriter {
 public:
  /// Opens `options.dir` (creating it if absent) and starts a fresh
  /// segment anchored by `initial` — the state of the engine this journal
  /// is about to describe. When `resuming` is false and the directory
  /// already holds segments, fails with FailedPrecondition instead of
  /// silently superseding the previous journal's state (recover first —
  /// MonitorService::Open does).
  static Result<std::unique_ptr<CycleJournalWriter>> Open(
      const JournalOptions& options, const JournalSnapshot& initial,
      bool resuming = false);

  ~CycleJournalWriter();

  CycleJournalWriter(const CycleJournalWriter&) = delete;
  CycleJournalWriter& operator=(const CycleJournalWriter&) = delete;

  /// Appends one record (write-ahead: call before applying to the engine).
  Status AppendCycle(Timestamp ts, RecordSpan batch);
  Status AppendRegister(const JournaledQuery& query);
  Status AppendUnregister(QueryId id);

  /// True once the segment-size or snapshot-interval threshold is hit;
  /// the owner should take an engine snapshot and call
  /// RotateWithSnapshot() at the next convenient point.
  bool SnapshotDue() const;

  /// Starts a new segment anchored by `snapshot`, fdatasyncs it, and
  /// garbage-collects superseded segments.
  Status RotateWithSnapshot(const JournalSnapshot& snapshot);

  /// Group-commit time trigger: fdatasyncs iff there are unsynced
  /// appends and the kInterval time window (sync_interval_ms) has
  /// elapsed. Cheap no-op otherwise; the service driver calls this on
  /// idle loops so a stream that goes quiet still gets its tail synced.
  Status SyncIfDue();

  /// Unconditional durability barrier: fdatasyncs any unsynced appends.
  Status Sync();

  /// fdatasyncs and closes the current segment. Idempotent; appends after
  /// Close fail with FailedPrecondition.
  Status Close();

  /// Admin-plane instrumentation: every fdatasync this writer issues is
  /// timed into `histogram` (the service registers it as
  /// topkmon_journal_fsync_latency_seconds). The histogram must outlive
  /// the writer; nullptr (the default) disables timing. Like every
  /// other writer call, externally serialized by the owner.
  void set_fsync_histogram(LatencyHistogram* histogram) {
    fsync_histogram_ = histogram;
  }

  bool closed() const { return closed_; }
  const JournalWriterStats& stats() const { return stats_; }
  const std::string& current_segment_path() const { return segment_path_; }
  std::uint64_t current_segment_index() const { return segment_index_; }

 private:
  CycleJournalWriter(const JournalOptions& options, std::uint64_t next_index);

  /// Creates and durably anchors segment `index`, committing the writer
  /// to it only on success (a failed rotation leaves the current segment
  /// in place and appendable).
  Status OpenSegment(const JournalSnapshot& snapshot, std::uint64_t index);
  /// Appends frame_scratch_, whose first kFrameHeaderBytes are a
  /// placeholder prologue patched here (length + CRC over the body that
  /// follows) — the body is encoded in place, never copied.
  Status AppendScratchFrame(bool is_cycle);
  Status WriteAll(const std::string& bytes);
  Status SyncFd();
  Status SyncDir();
  void GarbageCollect();

  const JournalOptions options_;
  /// Reused serialization buffer (capacity persists across appends so
  /// the per-cycle hot path does not allocate).
  std::string frame_scratch_;
  int fd_ = -1;
  std::string segment_path_;
  std::uint64_t segment_index_ = 0;
  std::size_t segment_bytes_ = 0;       ///< bytes written to current segment
  std::uint64_t cycles_in_segment_ = 0;
  std::uint64_t appends_since_sync_ = 0;
  std::uint64_t cycles_since_sync_ = 0;
  std::chrono::steady_clock::time_point last_sync_time_{};
  bool closed_ = false;
  LatencyHistogram* fsync_histogram_ = nullptr;
  JournalWriterStats stats_;
};

}  // namespace topkmon

#endif  // TOPKMON_JOURNAL_JOURNAL_WRITER_H_
