#include "journal/journal_reader.h"

#include <dirent.h>
#include <errno.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstring>

namespace topkmon {
namespace {

std::uint32_t ReadU32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

Result<std::vector<SegmentInfo>> ListSegments(const std::string& dir) {
  std::vector<SegmentInfo> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    if (errno == ENOENT) return out;
    return Status::Internal("opendir " + dir + ": " + std::strerror(errno));
  }
  while (const dirent* entry = ::readdir(d)) {
    std::uint64_t index = 0;
    if (ParseSegmentFileName(entry->d_name, &index)) {
      out.push_back(SegmentInfo{index, dir + "/" + entry->d_name});
    }
  }
  ::closedir(d);
  std::sort(out.begin(), out.end(),
            [](const SegmentInfo& a, const SegmentInfo& b) {
              return a.index < b.index;
            });
  return out;
}

CycleJournalReader::CycleJournalReader(std::FILE* file,
                                       std::uint64_t file_size)
    : file_(file), file_size_(file_size), offset_(kSegmentHeaderBytes) {}

CycleJournalReader::~CycleJournalReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<CycleJournalReader>> CycleJournalReader::Open(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open journal segment " + path + ": " +
                            std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fileno(file), &st) != 0) {
    std::fclose(file);
    return Status::Internal("fstat " + path + ": " + std::strerror(errno));
  }
  char header[kSegmentHeaderBytes];
  if (std::fread(header, 1, sizeof(header), file) != sizeof(header)) {
    std::fclose(file);
    return Status::InvalidArgument("journal segment " + path +
                                   " is shorter than its header");
  }
  const Status hs = DecodeSegmentHeader(header, sizeof(header));
  if (!hs.ok()) {
    std::fclose(file);
    return hs;
  }
  return std::unique_ptr<CycleJournalReader>(new CycleJournalReader(
      file, static_cast<std::uint64_t>(st.st_size)));
}

CycleJournalReader::Outcome CycleJournalReader::Next() {
  Outcome out;
  out.offset = offset_;
  if (done_) {
    out.kind = terminal_;
    return out;
  }

  char prologue[kFrameHeaderBytes];
  const std::size_t got = std::fread(prologue, 1, sizeof(prologue), file_);
  if (got < sizeof(prologue) && std::ferror(file_)) {
    done_ = true;
    terminal_ = Kind::kIoError;
    out.kind = Kind::kIoError;
    out.detail = "read error in frame prologue";
    return out;
  }
  if (got == 0 && std::feof(file_)) {
    done_ = true;
    terminal_ = Kind::kEnd;
    out.kind = Kind::kEnd;
    return out;
  }
  if (got < sizeof(prologue)) {
    done_ = true;
    terminal_ = Kind::kTorn;
    out.kind = Kind::kTorn;
    out.detail = "frame prologue truncated (" + std::to_string(got) + " of " +
                 std::to_string(sizeof(prologue)) + " bytes)";
    return out;
  }

  const std::uint32_t body_len = ReadU32(prologue);
  const std::uint32_t expected_crc = ReadU32(prologue + 4);
  if (body_len == 0 || body_len > kMaxRecordBytes) {
    done_ = true;
    terminal_ = Kind::kCorrupt;
    out.kind = Kind::kCorrupt;
    out.detail = "implausible frame length " + std::to_string(body_len);
    return out;
  }
  // A length that points past the end of the file is a torn append (the
  // prologue landed, the body did not), not bit rot.
  if (out.offset + kFrameHeaderBytes + body_len > file_size_) {
    done_ = true;
    terminal_ = Kind::kTorn;
    out.kind = Kind::kTorn;
    out.detail = "frame body extends past end of file";
    return out;
  }

  buffer_.resize(body_len);
  if (std::fread(&buffer_[0], 1, body_len, file_) != body_len) {
    done_ = true;
    if (std::ferror(file_)) {
      terminal_ = Kind::kIoError;
      out.kind = Kind::kIoError;
      out.detail = "read error in frame body";
    } else {
      terminal_ = Kind::kTorn;
      out.kind = Kind::kTorn;
      out.detail = "frame body truncated";
    }
    return out;
  }
  const std::uint32_t actual_crc = Crc32(buffer_.data(), buffer_.size());
  if (actual_crc != expected_crc) {
    done_ = true;
    terminal_ = Kind::kCorrupt;
    out.kind = Kind::kCorrupt;
    out.detail = "CRC mismatch (stored " + std::to_string(expected_crc) +
                 ", computed " + std::to_string(actual_crc) + ")";
    return out;
  }
  const Status ds = DecodeBody(buffer_.data(), buffer_.size(), &out.record);
  if (!ds.ok()) {
    done_ = true;
    terminal_ = Kind::kCorrupt;
    out.kind = Kind::kCorrupt;
    out.detail = ds.message();
    return out;
  }
  offset_ += kFrameHeaderBytes + body_len;
  out.kind = Kind::kRecord;
  return out;
}

}  // namespace topkmon
