#include "journal/format.h"

#include <cstdio>
#include <cstring>

#include "common/scoring.h"

namespace topkmon {
namespace {

// ---- CRC-32C (Castagnoli, reflected) ----------------------------------
//
// Every journaled byte is checksummed on the cycle-append hot path, so
// the implementation matters: the SSE4.2 crc32 instruction where the CPU
// has it, slicing-by-8 tables (8 input bytes folded per iteration)
// otherwise.

using Crc32Tables = std::uint32_t[8][256];

const Crc32Tables& Crc32Table() {
  static Crc32Tables table;
  static const bool initialized = [] {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? 0x82F63B38u ^ (c >> 1) : c >> 1;
      }
      table[0][i] = c;
    }
    for (int k = 1; k < 8; ++k) {
      for (std::uint32_t i = 0; i < 256; ++i) {
        const std::uint32_t prev = table[k - 1][i];
        table[k][i] = (prev >> 8) ^ table[0][prev & 0xFF];
      }
    }
    return true;
  }();
  (void)initialized;
  return table;
}

std::uint32_t Crc32Software(const unsigned char* p, std::size_t n,
                            std::uint32_t c) {
  const Crc32Tables& t = Crc32Table();
#if !defined(__BYTE_ORDER__) || __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  while (n >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
        t[4][lo >> 24] ^ t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
        t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    c = t[0][(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c;
}

#if defined(__x86_64__) && defined(__GNUC__)
__attribute__((target("sse4.2"))) std::uint32_t Crc32Hardware(
    const unsigned char* p, std::size_t n, std::uint32_t c) {
  std::uint64_t c64 = c;
  while (n >= 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    c64 = __builtin_ia32_crc32di(c64, chunk);
    p += 8;
    n -= 8;
  }
  c = static_cast<std::uint32_t>(c64);
  while (n > 0) {
    c = __builtin_ia32_crc32qi(c, *p);
    ++p;
    --n;
  }
  return c;
}
#endif

// ---- primitive writers ------------------------------------------------

void PutU8(std::uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::uint16_t v, std::string* out) {
  char b[2];
  for (int i = 0; i < 2; ++i) b[i] = static_cast<char>(v >> (8 * i));
  out->append(b, 2);
}

void PutU32(std::uint32_t v, std::string* out) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>(v >> (8 * i));
  out->append(b, 4);
}

void PutU64(std::uint64_t v, std::string* out) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
  out->append(b, 8);
}

void PutI64(std::int64_t v, std::string* out) {
  PutU64(static_cast<std::uint64_t>(v), out);
}

void PutF64(double v, std::string* out) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits, out);
}

void PutPoint(const Point& p, std::string* out) {
  PutU8(static_cast<std::uint8_t>(p.dim()), out);
  for (int i = 0; i < p.dim(); ++i) PutF64(p[i], out);
}

void PutUvarint(std::uint64_t v, std::string* out) {
  char b[10];
  std::size_t n = 0;
  while (v >= 0x80) {
    b[n++] = static_cast<char>(v | 0x80);
    v >>= 7;
  }
  b[n++] = static_cast<char>(v);
  out->append(b, n);
}

/// Upper bound on PutRecordSpan output (the hot-path reserve hint).
std::size_t RecordSpanMaxBytes(std::size_t count, int dim) {
  return 1 + 8 + 8 + count * (10 + 10 + static_cast<std::size_t>(dim) * 8);
}

/// Serializes `count` > 0 records as a span: shared dimensionality and
/// base (id, arrival), then per record the varint deltas against the
/// previous record plus the raw coordinates. A stream batch has
/// consecutive ids and near-constant arrivals, so the common entry is
/// 2 + 8·dim bytes — and every journaled byte is CRC'd and written on the
/// cycle-append hot path, so wire compactness is throughput.
/// Requires: uniform dimensionality, strictly increasing ids,
/// non-decreasing arrivals (the engines' arrival-batch contract).
void PutRecordSpan(const Record* records, std::size_t count,
                   std::string* out) {
  const int dim = records[0].position.dim();
  PutU8(static_cast<std::uint8_t>(dim), out);
  PutU64(records[0].id, out);
  PutI64(records[0].arrival, out);
  RecordId prev_id = records[0].id;
  Timestamp prev_arrival = records[0].arrival;
  const std::size_t coord_bytes = static_cast<std::size_t>(dim) * 8;
  for (std::size_t i = 0; i < count; ++i) {
    const Record& r = records[i];
    PutUvarint(r.id - prev_id, out);
    PutUvarint(static_cast<std::uint64_t>(r.arrival - prev_arrival), out);
#if !defined(__BYTE_ORDER__) || __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    out->append(reinterpret_cast<const char*>(r.position.data()),
                coord_bytes);
#else
    for (int d = 0; d < dim; ++d) PutF64(r.position[d], out);
#endif
    prev_id = r.id;
    prev_arrival = r.arrival;
  }
  (void)coord_bytes;
}

void PutString(const std::string& s, std::string* out) {
  const std::size_t n = std::min<std::size_t>(s.size(), 0xFFFF);
  PutU16(static_cast<std::uint16_t>(n), out);
  out->append(s.data(), n);
}

// Scoring-function family tags (wire values; see docs/JOURNAL_FORMAT.md).
constexpr std::uint8_t kFnLinear = 1;
constexpr std::uint8_t kFnProduct = 2;
constexpr std::uint8_t kFnSumOfSquares = 3;

Status PutFunction(const ScoringFunction& fn, std::string* out) {
  if (const auto* linear = dynamic_cast<const LinearFunction*>(&fn)) {
    PutU8(kFnLinear, out);
    PutU8(static_cast<std::uint8_t>(linear->dim()), out);
    for (double w : linear->weights()) PutF64(w, out);
    PutF64(linear->bias(), out);
    return Status::Ok();
  }
  if (const auto* product = dynamic_cast<const ProductFunction*>(&fn)) {
    PutU8(kFnProduct, out);
    PutU8(static_cast<std::uint8_t>(product->dim()), out);
    for (double a : product->offsets()) PutF64(a, out);
    return Status::Ok();
  }
  if (const auto* squares = dynamic_cast<const SumOfSquaresFunction*>(&fn)) {
    PutU8(kFnSumOfSquares, out);
    PutU8(static_cast<std::uint8_t>(squares->dim()), out);
    for (double a : squares->coeffs()) PutF64(a, out);
    return Status::Ok();
  }
  return Status::Unimplemented(
      "scoring function '" + fn.ToString() +
      "' has no journal encoding (only the linear / product / "
      "sum-of-squares families are journalable)");
}

Status PutQuery(const JournaledQuery& q, std::string* out) {
  PutU32(q.spec.id, out);
  PutU32(static_cast<std::uint32_t>(q.spec.k), out);
  if (q.spec.function == nullptr) {
    return Status::InvalidArgument("query spec has no scoring function");
  }
  TOPKMON_RETURN_IF_ERROR(PutFunction(*q.spec.function, out));
  PutU8(q.spec.constraint.has_value() ? 1 : 0, out);
  if (q.spec.constraint.has_value()) {
    PutPoint(q.spec.constraint->lo(), out);
    PutPoint(q.spec.constraint->hi(), out);
  }
  PutString(q.owner_label, out);
  return Status::Ok();
}

// ---- primitive readers ------------------------------------------------

/// Bounds-checked cursor over a frame body. Every Get* reports overruns
/// through the sticky status; callers check once per record.
class ByteReader {
 public:
  ByteReader(const char* data, std::size_t n) : data_(data), n_(n) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return n_ - pos_; }

  std::uint8_t GetU8() {
    if (!Require(1)) return 0;
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint16_t GetU16() {
    if (!Require(2)) return 0;
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) {
      v = static_cast<std::uint16_t>(
          v | (static_cast<std::uint16_t>(
                   static_cast<std::uint8_t>(data_[pos_ + i]))
               << (8 * i)));
    }
    pos_ += 2;
    return v;
  }

  std::uint32_t GetU32() {
    if (!Require(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t GetU64() {
    if (!Require(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  std::int64_t GetI64() { return static_cast<std::int64_t>(GetU64()); }

  std::uint64_t GetUvarint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (shift < 64) {
      if (!Require(1)) return 0;
      const auto byte = static_cast<std::uint8_t>(data_[pos_++]);
      v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return v;
      shift += 7;
    }
    ok_ = false;  // over-long varint
    return 0;
  }

  double GetF64() {
    const std::uint64_t bits = GetU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  Point GetPoint() {
    const int dim = GetU8();
    if (dim < 1 || dim > kMaxDims) {
      ok_ = false;
      return Point();
    }
    Point p(dim);
    for (int i = 0; i < dim; ++i) p[i] = GetF64();
    return p;
  }

  std::string GetString() {
    const std::size_t n = GetU16();
    if (!Require(n)) return std::string();
    std::string s(data_ + pos_, n);
    pos_ += n;
    return s;
  }

 private:
  bool Require(std::size_t n) {
    if (!ok_ || n_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const char* data_;
  std::size_t n_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Reads a record span of `count` > 0 records (see PutRecordSpan),
/// appending to *out. Validates monotone ids within the span.
Status GetRecordSpan(ByteReader& in, std::uint64_t count,
                     std::vector<Record>* out) {
  const int dim = in.GetU8();
  if (!in.ok() || dim < 1 || dim > kMaxDims) {
    return Status::InvalidArgument("bad record-span dimensionality");
  }
  // Each entry is at least 2 varint bytes + dim coordinates.
  const std::size_t min_entry = 2 + static_cast<std::size_t>(dim) * 8;
  if (count > in.remaining() / min_entry + 1) {
    return Status::InvalidArgument("record count exceeds body size");
  }
  RecordId prev_id = in.GetU64();
  Timestamp prev_arrival = in.GetI64();
  out->reserve(out->size() + count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t id_delta = in.GetUvarint();
    const std::uint64_t arrival_delta = in.GetUvarint();
    if (i > 0 && id_delta == 0) {
      return Status::InvalidArgument("non-increasing record id in span");
    }
    Point p(dim);
    for (int d = 0; d < dim; ++d) p[d] = in.GetF64();
    if (!in.ok()) return Status::InvalidArgument("truncated record span");
    prev_id += id_delta;
    prev_arrival += static_cast<Timestamp>(arrival_delta);
    out->emplace_back(prev_id, std::move(p), prev_arrival);
  }
  return Status::Ok();
}

Status GetFunction(ByteReader& in,
                   std::shared_ptr<const ScoringFunction>* out) {
  const std::uint8_t family = in.GetU8();
  const int dim = in.GetU8();
  if (!in.ok() || dim < 1 || dim > kMaxDims) {
    return Status::InvalidArgument("malformed scoring function header");
  }
  std::vector<double> coeffs(static_cast<std::size_t>(dim));
  for (double& c : coeffs) c = in.GetF64();
  if (!in.ok()) {
    return Status::InvalidArgument("truncated scoring function");
  }
  switch (family) {
    case kFnLinear: {
      const double bias = in.GetF64();
      if (!in.ok()) {
        return Status::InvalidArgument("truncated linear function bias");
      }
      *out = std::make_shared<LinearFunction>(std::move(coeffs), bias);
      return Status::Ok();
    }
    case kFnProduct:
      *out = std::make_shared<ProductFunction>(std::move(coeffs));
      return Status::Ok();
    case kFnSumOfSquares:
      *out = std::make_shared<SumOfSquaresFunction>(std::move(coeffs));
      return Status::Ok();
    default:
      return Status::InvalidArgument("unknown scoring-function family tag " +
                                     std::to_string(family));
  }
}

Status GetQuery(ByteReader& in, JournaledQuery* out) {
  out->spec.id = in.GetU32();
  out->spec.k = static_cast<int>(in.GetU32());
  TOPKMON_RETURN_IF_ERROR(GetFunction(in, &out->spec.function));
  const std::uint8_t has_constraint = in.GetU8();
  if (has_constraint == 1) {
    const Point lo = in.GetPoint();
    const Point hi = in.GetPoint();
    if (!in.ok() || lo.dim() != hi.dim()) {
      return Status::InvalidArgument("malformed constraint rectangle");
    }
    for (int i = 0; i < lo.dim(); ++i) {
      if (lo[i] > hi[i]) {
        return Status::InvalidArgument("inverted constraint rectangle");
      }
    }
    out->spec.constraint = Rect(lo, hi);
  } else if (has_constraint != 0) {
    return Status::InvalidArgument("bad constraint presence byte");
  }
  out->owner_label = in.GetString();
  if (!in.ok()) return Status::InvalidArgument("truncated query record");
  return Status::Ok();
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t n, std::uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  const std::uint32_t c = seed ^ 0xFFFFFFFFu;
#if defined(__x86_64__) && defined(__GNUC__)
  static const bool has_sse42 = __builtin_cpu_supports("sse4.2");
  if (has_sse42) return Crc32Hardware(p, n, c) ^ 0xFFFFFFFFu;
#endif
  return Crc32Software(p, n, c) ^ 0xFFFFFFFFu;
}

void EncodeSegmentHeader(std::string* out) {
  PutU64(kJournalMagic, out);
  PutU32(kJournalFormatVersion, out);
  PutU32(0, out);  // reserved
}

void EncodeFrame(const std::string& body, std::string* out) {
  PutU32(static_cast<std::uint32_t>(body.size()), out);
  PutU32(Crc32(body.data(), body.size()), out);
  out->append(body);
}

void EncodeCycleBody(Timestamp ts, const std::vector<Record>& batch,
                     std::string* out) {
  std::size_t bytes = out->size() + 1 + 8 + 4;
  if (!batch.empty()) {
    bytes += RecordSpanMaxBytes(batch.size(), batch[0].position.dim());
  }
  out->reserve(bytes);
  PutU8(static_cast<std::uint8_t>(JournalRecordType::kCycle), out);
  PutI64(ts, out);
  PutU32(static_cast<std::uint32_t>(batch.size()), out);
  if (!batch.empty()) PutRecordSpan(batch.data(), batch.size(), out);
}

Status EncodeRegisterBody(const JournaledQuery& query, std::string* out) {
  const std::size_t mark = out->size();
  PutU8(static_cast<std::uint8_t>(JournalRecordType::kRegister), out);
  const Status st = PutQuery(query, out);
  if (!st.ok()) out->resize(mark);
  return st;
}

void EncodeUnregisterBody(QueryId id, std::string* out) {
  PutU8(static_cast<std::uint8_t>(JournalRecordType::kUnregister), out);
  PutU32(id, out);
}

Status EncodeSnapshotBody(const JournalSnapshot& snapshot, std::string* out) {
  const std::size_t mark = out->size();
  PutU8(static_cast<std::uint8_t>(JournalRecordType::kSnapshot), out);
  PutI64(snapshot.last_cycle_ts, out);
  PutU64(snapshot.next_record_id, out);
  PutU64(snapshot.next_query_id, out);
  PutU32(static_cast<std::uint32_t>(snapshot.live_queries.size()), out);
  for (const JournaledQuery& q : snapshot.live_queries) {
    const Status st = PutQuery(q, out);
    if (!st.ok()) {
      out->resize(mark);
      return st;
    }
  }
  std::size_t bytes = out->size() + 8;
  if (!snapshot.window.empty()) {
    bytes += RecordSpanMaxBytes(snapshot.window.size(),
                                snapshot.window[0].position.dim());
  }
  out->reserve(bytes);
  PutU64(snapshot.window.size(), out);
  if (!snapshot.window.empty()) {
    PutRecordSpan(snapshot.window.data(), snapshot.window.size(), out);
  }
  return Status::Ok();
}

Status DecodeSegmentHeader(const char* data, std::size_t n) {
  ByteReader in(data, n);
  const std::uint64_t magic = in.GetU64();
  const std::uint32_t version = in.GetU32();
  in.GetU32();  // reserved
  if (!in.ok() || magic != kJournalMagic) {
    return Status::InvalidArgument("not a topkmon journal segment");
  }
  if (version != kJournalFormatVersion) {
    return Status::Unimplemented(
        "journal format version " + std::to_string(version) +
        " is not supported (this build reads version " +
        std::to_string(kJournalFormatVersion) + ")");
  }
  return Status::Ok();
}

Status DecodeBody(const char* data, std::size_t n, JournalRecord* out) {
  ByteReader in(data, n);
  const std::uint8_t type = in.GetU8();
  if (!in.ok()) return Status::InvalidArgument("empty record body");
  switch (static_cast<JournalRecordType>(type)) {
    case JournalRecordType::kCycle: {
      out->type = JournalRecordType::kCycle;
      out->cycle_ts = in.GetI64();
      const std::uint32_t count = in.GetU32();
      if (!in.ok()) return Status::InvalidArgument("truncated cycle header");
      out->batch.clear();
      if (count > 0) {
        TOPKMON_RETURN_IF_ERROR(GetRecordSpan(in, count, &out->batch));
      }
      if (!in.ok() || in.remaining() != 0) {
        return Status::InvalidArgument("malformed cycle batch");
      }
      return Status::Ok();
    }
    case JournalRecordType::kRegister: {
      out->type = JournalRecordType::kRegister;
      TOPKMON_RETURN_IF_ERROR(GetQuery(in, &out->query));
      if (in.remaining() != 0) {
        return Status::InvalidArgument("trailing bytes after query record");
      }
      return Status::Ok();
    }
    case JournalRecordType::kUnregister: {
      out->type = JournalRecordType::kUnregister;
      out->unregistered = in.GetU32();
      if (!in.ok() || in.remaining() != 0) {
        return Status::InvalidArgument("malformed unregister record");
      }
      return Status::Ok();
    }
    case JournalRecordType::kSnapshot: {
      out->type = JournalRecordType::kSnapshot;
      JournalSnapshot& snap = out->snapshot;
      snap.last_cycle_ts = in.GetI64();
      snap.next_record_id = in.GetU64();
      snap.next_query_id = in.GetU64();
      const std::uint32_t queries = in.GetU32();
      if (!in.ok()) {
        return Status::InvalidArgument("truncated snapshot header");
      }
      snap.live_queries.clear();
      for (std::uint32_t i = 0; i < queries; ++i) {
        JournaledQuery q;
        TOPKMON_RETURN_IF_ERROR(GetQuery(in, &q));
        snap.live_queries.push_back(std::move(q));
      }
      const std::uint64_t count = in.GetU64();
      if (!in.ok()) {
        return Status::InvalidArgument("truncated snapshot window count");
      }
      snap.window.clear();
      if (count > 0) {
        TOPKMON_RETURN_IF_ERROR(GetRecordSpan(in, count, &snap.window));
      }
      if (!in.ok() || in.remaining() != 0) {
        return Status::InvalidArgument("malformed snapshot window");
      }
      return Status::Ok();
    }
  }
  return Status::InvalidArgument("unknown journal record type " +
                                 std::to_string(type));
}

std::string SegmentFileName(std::uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "segment-%012llu.wal",
                static_cast<unsigned long long>(index));
  return buf;
}

bool ParseSegmentFileName(const std::string& name, std::uint64_t* index) {
  unsigned long long i = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "segment-%12llu.wal%n", &i, &consumed) != 1 ||
      static_cast<std::size_t>(consumed) != name.size()) {
    return false;
  }
  *index = i;
  return true;
}

}  // namespace topkmon
