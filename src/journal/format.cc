#include "journal/format.h"

#include <cstdio>
#include <cstring>

#include "journal/wire.h"

namespace topkmon {
namespace {

// ---- CRC-32C (Castagnoli, reflected) ----------------------------------
//
// Every journaled byte is checksummed on the cycle-append hot path, so
// the implementation matters: the SSE4.2 crc32 instruction where the CPU
// has it, slicing-by-8 tables (8 input bytes folded per iteration)
// otherwise.

using Crc32Tables = std::uint32_t[8][256];

const Crc32Tables& Crc32Table() {
  static Crc32Tables table;
  static const bool initialized = [] {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? 0x82F63B38u ^ (c >> 1) : c >> 1;
      }
      table[0][i] = c;
    }
    for (int k = 1; k < 8; ++k) {
      for (std::uint32_t i = 0; i < 256; ++i) {
        const std::uint32_t prev = table[k - 1][i];
        table[k][i] = (prev >> 8) ^ table[0][prev & 0xFF];
      }
    }
    return true;
  }();
  (void)initialized;
  return table;
}

std::uint32_t Crc32Software(const unsigned char* p, std::size_t n,
                            std::uint32_t c) {
  const Crc32Tables& t = Crc32Table();
#if !defined(__BYTE_ORDER__) || __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  while (n >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
        t[4][lo >> 24] ^ t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
        t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    c = t[0][(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c;
}

#if defined(__x86_64__) && defined(__GNUC__)
__attribute__((target("sse4.2"))) std::uint32_t Crc32Hardware(
    const unsigned char* p, std::size_t n, std::uint32_t c) {
  std::uint64_t c64 = c;
  while (n >= 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    c64 = __builtin_ia32_crc32di(c64, chunk);
    p += 8;
    n -= 8;
  }
  c = static_cast<std::uint32_t>(c64);
  while (n > 0) {
    c = __builtin_ia32_crc32qi(c, *p);
    ++p;
    --n;
  }
  return c;
}
#endif

// ---- journal-specific composite encodings -----------------------------

/// A journaled query is the shared query-spec encoding plus the owning
/// session's diagnostic label (the recovery key for session adoption).
Status PutQuery(const JournaledQuery& q, std::string* out) {
  TOPKMON_RETURN_IF_ERROR(wire::PutQuerySpec(q.spec, out));
  wire::PutString(q.owner_label, out);
  return Status::Ok();
}

Status GetQuery(wire::ByteReader& in, JournaledQuery* out) {
  TOPKMON_RETURN_IF_ERROR(wire::GetQuerySpec(in, &out->spec));
  out->owner_label = in.GetString();
  if (!in.ok()) return Status::InvalidArgument("truncated query record");
  return Status::Ok();
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t n, std::uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  const std::uint32_t c = seed ^ 0xFFFFFFFFu;
#if defined(__x86_64__) && defined(__GNUC__)
  static const bool has_sse42 = __builtin_cpu_supports("sse4.2");
  if (has_sse42) return Crc32Hardware(p, n, c) ^ 0xFFFFFFFFu;
#endif
  return Crc32Software(p, n, c) ^ 0xFFFFFFFFu;
}

void EncodeSegmentHeader(std::string* out) {
  wire::PutU64(kJournalMagic, out);
  wire::PutU32(kJournalFormatVersion, out);
  wire::PutU32(0, out);  // reserved
}

void EncodeFrame(const std::string& body, std::string* out) {
  wire::PutU32(static_cast<std::uint32_t>(body.size()), out);
  wire::PutU32(Crc32(body.data(), body.size()), out);
  out->append(body);
}

void EncodeCycleBody(Timestamp ts, RecordSpan batch, std::string* out) {
  std::size_t bytes = out->size() + 1 + 8 + 4;
  if (!batch.empty()) {
    bytes +=
        wire::RecordSpanMaxBytes(batch.size(), batch[0].position.dim());
  }
  out->reserve(bytes);
  wire::PutU8(static_cast<std::uint8_t>(JournalRecordType::kCycle), out);
  wire::PutI64(ts, out);
  wire::PutU32(static_cast<std::uint32_t>(batch.size()), out);
  if (!batch.empty()) wire::PutRecordSpan(batch.data(), batch.size(), out);
}

Status EncodeRegisterBody(const JournaledQuery& query, std::string* out) {
  const std::size_t mark = out->size();
  wire::PutU8(static_cast<std::uint8_t>(JournalRecordType::kRegister), out);
  const Status st = PutQuery(query, out);
  if (!st.ok()) out->resize(mark);
  return st;
}

void EncodeUnregisterBody(QueryId id, std::string* out) {
  wire::PutU8(static_cast<std::uint8_t>(JournalRecordType::kUnregister),
              out);
  wire::PutU32(id, out);
}

Status EncodeSnapshotBody(const JournalSnapshot& snapshot, std::string* out) {
  const std::size_t mark = out->size();
  wire::PutU8(static_cast<std::uint8_t>(JournalRecordType::kSnapshot), out);
  wire::PutI64(snapshot.last_cycle_ts, out);
  wire::PutU64(snapshot.next_record_id, out);
  wire::PutU64(snapshot.next_query_id, out);
  wire::PutU32(static_cast<std::uint32_t>(snapshot.live_queries.size()),
               out);
  for (const JournaledQuery& q : snapshot.live_queries) {
    const Status st = PutQuery(q, out);
    if (!st.ok()) {
      out->resize(mark);
      return st;
    }
  }
  std::size_t bytes = out->size() + 8;
  if (!snapshot.window.empty()) {
    bytes += wire::RecordSpanMaxBytes(snapshot.window.size(),
                                      snapshot.window[0].position.dim());
  }
  out->reserve(bytes);
  wire::PutU64(snapshot.window.size(), out);
  if (!snapshot.window.empty()) {
    wire::PutRecordSpan(snapshot.window.data(), snapshot.window.size(), out);
  }
  return Status::Ok();
}

Status DecodeSegmentHeader(const char* data, std::size_t n) {
  wire::ByteReader in(data, n);
  const std::uint64_t magic = in.GetU64();
  const std::uint32_t version = in.GetU32();
  in.GetU32();  // reserved
  if (!in.ok() || magic != kJournalMagic) {
    return Status::InvalidArgument("not a topkmon journal segment");
  }
  // Older versions are forward-readable: v1 encodings are a strict
  // subset of v2 (v2 only added the piecewise scoring-function tag), so
  // any version up to the current one is accepted.
  if (version == 0 || version > kJournalFormatVersion) {
    return Status::Unimplemented(
        "journal format version " + std::to_string(version) +
        " is not supported (this build reads versions 1.." +
        std::to_string(kJournalFormatVersion) + ")");
  }
  return Status::Ok();
}

Status DecodeBody(const char* data, std::size_t n, JournalRecord* out) {
  wire::ByteReader in(data, n);
  const std::uint8_t type = in.GetU8();
  if (!in.ok()) return Status::InvalidArgument("empty record body");
  switch (static_cast<JournalRecordType>(type)) {
    case JournalRecordType::kCycle: {
      out->type = JournalRecordType::kCycle;
      out->cycle_ts = in.GetI64();
      const std::uint32_t count = in.GetU32();
      if (!in.ok()) return Status::InvalidArgument("truncated cycle header");
      out->batch.clear();
      if (count > 0) {
        TOPKMON_RETURN_IF_ERROR(wire::GetRecordSpan(in, count, &out->batch));
      }
      if (!in.ok() || in.remaining() != 0) {
        return Status::InvalidArgument("malformed cycle batch");
      }
      return Status::Ok();
    }
    case JournalRecordType::kRegister: {
      out->type = JournalRecordType::kRegister;
      TOPKMON_RETURN_IF_ERROR(GetQuery(in, &out->query));
      if (in.remaining() != 0) {
        return Status::InvalidArgument("trailing bytes after query record");
      }
      return Status::Ok();
    }
    case JournalRecordType::kUnregister: {
      out->type = JournalRecordType::kUnregister;
      out->unregistered = in.GetU32();
      if (!in.ok() || in.remaining() != 0) {
        return Status::InvalidArgument("malformed unregister record");
      }
      return Status::Ok();
    }
    case JournalRecordType::kSnapshot: {
      out->type = JournalRecordType::kSnapshot;
      JournalSnapshot& snap = out->snapshot;
      snap.last_cycle_ts = in.GetI64();
      snap.next_record_id = in.GetU64();
      snap.next_query_id = in.GetU64();
      const std::uint32_t queries = in.GetU32();
      if (!in.ok()) {
        return Status::InvalidArgument("truncated snapshot header");
      }
      snap.live_queries.clear();
      for (std::uint32_t i = 0; i < queries; ++i) {
        JournaledQuery q;
        TOPKMON_RETURN_IF_ERROR(GetQuery(in, &q));
        snap.live_queries.push_back(std::move(q));
      }
      const std::uint64_t count = in.GetU64();
      if (!in.ok()) {
        return Status::InvalidArgument("truncated snapshot window count");
      }
      snap.window.clear();
      if (count > 0) {
        TOPKMON_RETURN_IF_ERROR(
            wire::GetRecordSpan(in, count, &snap.window));
      }
      if (!in.ok() || in.remaining() != 0) {
        return Status::InvalidArgument("malformed snapshot window");
      }
      return Status::Ok();
    }
  }
  return Status::InvalidArgument("unknown journal record type " +
                                 std::to_string(type));
}

JournalFrameParse TryParseJournalFrame(const char* data, std::size_t n,
                                       const char** body,
                                       std::size_t* body_len,
                                       std::size_t* consumed,
                                       std::string* detail) {
  if (n < kFrameHeaderBytes) return JournalFrameParse::kNeedMore;
  std::uint32_t len = 0;
  std::uint32_t crc = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(static_cast<unsigned char>(data[i]))
           << (8 * i);
    crc |= static_cast<std::uint32_t>(static_cast<unsigned char>(data[4 + i]))
           << (8 * i);
  }
  if (len == 0 || len > kMaxRecordBytes) {
    *detail = "implausible frame length " + std::to_string(len);
    return JournalFrameParse::kBad;
  }
  if (n - kFrameHeaderBytes < len) return JournalFrameParse::kNeedMore;
  const char* payload = data + kFrameHeaderBytes;
  if (Crc32(payload, len) != crc) {
    *detail = "frame CRC mismatch";
    return JournalFrameParse::kBad;
  }
  *body = payload;
  *body_len = len;
  *consumed = kFrameHeaderBytes + len;
  return JournalFrameParse::kFrame;
}

std::string SegmentFileName(std::uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "segment-%012llu.wal",
                static_cast<unsigned long long>(index));
  return buf;
}

bool ParseSegmentFileName(const std::string& name, std::uint64_t* index) {
  unsigned long long i = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "segment-%12llu.wal%n", &i, &consumed) != 1 ||
      static_cast<std::size_t>(consumed) != name.size()) {
    return false;
  }
  *index = i;
  return true;
}

}  // namespace topkmon
