// CycleJournalReader — read side of the durable cycle journal.
//
// A reader iterates the records of one segment file in append order,
// verifying the frame CRC of every record before decoding it. The two
// failure shapes a write-ahead log must distinguish:
//   * torn tail — the file ends mid-frame (crash during the last append).
//     Expected after any unclean stop; recovery silently truncates it.
//   * corrupt record — a complete frame whose CRC or content check fails
//     (bit rot, external modification). Everything from the first corrupt
//     record on is untrusted and dropped, and recovery reports it.
// In both cases nothing after the damage is returned: record N is only
// trustworthy if records 1..N-1 were.

#ifndef TOPKMON_JOURNAL_JOURNAL_READER_H_
#define TOPKMON_JOURNAL_JOURNAL_READER_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "journal/format.h"

namespace topkmon {

/// One segment file found in a journal directory.
struct SegmentInfo {
  std::uint64_t index = 0;
  std::string path;
};

/// Segment files in `dir`, sorted by ascending index. A missing directory
/// yields an empty list (a journal that was never written is not an
/// error); other I/O failures are.
Result<std::vector<SegmentInfo>> ListSegments(const std::string& dir);

/// Sequential reader over one segment file.
class CycleJournalReader {
 public:
  /// What Next() found at the current position.
  enum class Kind {
    kRecord,   ///< a valid record was decoded
    kEnd,      ///< clean end of segment
    kTorn,     ///< file ends mid-frame (crash tail) — stop and truncate
    kCorrupt,  ///< CRC or content check failed — stop and report
    kIoError,  ///< read(2)-level failure (EIO, not end-of-file): the
               ///< data on disk may be fine — recovery must fail, not
               ///< silently truncate
  };

  struct Outcome {
    Kind kind = Kind::kEnd;
    JournalRecord record;      ///< meaningful iff kind == kRecord
    std::uint64_t offset = 0;  ///< file offset where this outcome begins
    std::string detail;        ///< human-readable cause for kTorn/kCorrupt
  };

  /// Opens a segment and validates its header. InvalidArgument /
  /// Unimplemented for non-journal or newer-version files; a file shorter
  /// than the header is reported as InvalidArgument too (a segment torn
  /// before its anchor snapshot holds nothing recoverable).
  static Result<std::unique_ptr<CycleJournalReader>> Open(
      const std::string& path);

  ~CycleJournalReader();

  CycleJournalReader(const CycleJournalReader&) = delete;
  CycleJournalReader& operator=(const CycleJournalReader&) = delete;

  /// Reads the next record. After anything other than kRecord the reader
  /// is exhausted and keeps returning the same terminal outcome kind.
  Outcome Next();

  /// Current file offset (end of the last good record).
  std::uint64_t offset() const { return offset_; }

  /// Total file size in bytes.
  std::uint64_t file_size() const { return file_size_; }

 private:
  CycleJournalReader(std::FILE* file, std::uint64_t file_size);

  std::FILE* file_;
  std::uint64_t file_size_;
  std::uint64_t offset_ = 0;
  bool done_ = false;
  Kind terminal_ = Kind::kEnd;
  std::string buffer_;
};

}  // namespace topkmon

#endif  // TOPKMON_JOURNAL_JOURNAL_READER_H_
