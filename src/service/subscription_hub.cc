#include "service/subscription_hub.h"

#include <algorithm>
#include <cassert>

#include "util/memory_tracker.h"

namespace topkmon {

SubscriptionHub::SubscriptionHub(const HubOptions& options)
    : options_(options) {
  assert(options_.buffer_capacity > 0);
}

void SubscriptionHub::Attach(SessionId session) {
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.try_emplace(session);
}

void SubscriptionHub::Detach(SessionId session) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.erase(session);
    for (auto it = routes_.begin(); it != routes_.end();) {
      it = it->second == session ? routes_.erase(it) : std::next(it);
    }
  }
  // Wake long-pollers on the detached session: their buffer is gone and
  // no Publish will ever notify them again.
  event_cv_.notify_all();
}

Status SubscriptionHub::Bind(QueryId query, SessionId session) {
  std::lock_guard<std::mutex> lock(mu_);
  if (buffers_.count(session) == 0) {
    return Status::NotFound("session " + std::to_string(session) +
                            " is not attached to the hub");
  }
  auto [it, inserted] = routes_.emplace(query, session);
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("query id " + std::to_string(query) +
                                 " is already bound");
  }
  return Status::Ok();
}

void SubscriptionHub::Unbind(QueryId query) {
  std::lock_guard<std::mutex> lock(mu_);
  routes_.erase(query);
}

void SubscriptionHub::Publish(const ResultDelta& delta) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.published;
    auto route = routes_.find(delta.query);
    if (route == routes_.end()) {
      ++stats_.unrouted;
      return;
    }
    auto buffer = buffers_.find(route->second);
    if (buffer == buffers_.end()) {
      ++stats_.unrouted;
      return;
    }
    Buffer& b = buffer->second;
    if (b.events.size() >= options_.buffer_capacity) {
      b.events.pop_front();
      ++b.dropped;
      ++stats_.dropped;
    }
    b.events.push_back(BufferedEvent{DeltaEvent{b.next_seq++, delta},
                                     std::chrono::steady_clock::now()});
  }
  event_cv_.notify_all();
}

std::size_t SubscriptionHub::PollLocked(Buffer& buffer, std::size_t max,
                                        std::vector<DeltaEvent>* out) {
  const std::size_t n = std::min(max, buffer.events.size());
  const auto now =
      n > 0 && delivery_histogram_ != nullptr
          ? std::chrono::steady_clock::now()
          : std::chrono::steady_clock::time_point{};
  for (std::size_t i = 0; i < n; ++i) {
    BufferedEvent& buffered = buffer.events.front();
    if (delivery_histogram_ != nullptr) {
      delivery_histogram_->Record(now - buffered.published_at);
    }
    out->push_back(std::move(buffered.event));
    buffer.events.pop_front();
  }
  stats_.delivered += n;
  return n;
}

std::size_t SubscriptionHub::Poll(SessionId session, std::size_t max,
                                  std::vector<DeltaEvent>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buffers_.find(session);
  if (it == buffers_.end()) return 0;
  return PollLocked(it->second, max, out);
}

std::size_t SubscriptionHub::WaitPoll(SessionId session, std::size_t max,
                                      std::chrono::milliseconds timeout,
                                      std::vector<DeltaEvent>* out) {
  std::unique_lock<std::mutex> lock(mu_);
  auto ready = [this, session] {
    auto it = buffers_.find(session);
    return it == buffers_.end() || !it->second.events.empty();
  };
  event_cv_.wait_for(lock, timeout, ready);
  auto it = buffers_.find(session);
  if (it == buffers_.end()) return 0;
  return PollLocked(it->second, max, out);
}

std::uint64_t SubscriptionHub::Dropped(SessionId session) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buffers_.find(session);
  return it == buffers_.end() ? 0 : it->second.dropped;
}

std::size_t SubscriptionHub::Depth(SessionId session) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buffers_.find(session);
  return it == buffers_.end() ? 0 : it->second.events.size();
}

HubStats SubscriptionHub::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void SubscriptionHub::SetDeliveryHistogram(LatencyHistogram* histogram) {
  std::lock_guard<std::mutex> lock(mu_);
  delivery_histogram_ = histogram;
}

std::size_t SubscriptionHub::MemoryBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t bytes = 0;
  for (const auto& [session, buffer] : buffers_) {
    bytes += sizeof(Buffer);
    for (const BufferedEvent& e : buffer.events) {
      bytes += sizeof(BufferedEvent) + VectorBytes(e.event.delta.added) +
               VectorBytes(e.event.delta.removed);
    }
  }
  return bytes;
}

}  // namespace topkmon
