// Delta fan-out to per-session subscription buffers (service layer).
//
// The engines report result changes through a single DeltaCallback; the
// service must route each query's deltas to the session that registered
// it and let every client consume at its own pace. SubscriptionHub does
// that with one bounded buffer per session:
//   * Bind(query, session) routes a query's deltas to a session buffer;
//     binding is established *before* engine registration so the initial
//     result delta is never lost.
//   * Publish() (driver thread, or the registration path) appends a
//     sequence-numbered DeltaEvent to the owning session's buffer. The
//     sequence is per-session and gap-free, so a consumer that observes
//     seq jump from n to n+2 knows exactly one event was dropped.
//   * A buffer at capacity drops its *oldest* event and counts the drop —
//     a slow subscriber loses history, never freshness, and the loss is
//     visible both in the per-session drop counter and as a sequence gap.
//   * Poll()/WaitPoll() move buffered events out; WaitPoll blocks until
//     something arrives or the timeout expires (long-poll shape).

#ifndef TOPKMON_SERVICE_SUBSCRIPTION_HUB_H_
#define TOPKMON_SERVICE_SUBSCRIPTION_HUB_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/delta.h"
#include "obs/metrics.h"
#include "service/session.h"

namespace topkmon {

/// One fan-out unit: a result delta stamped with its position in the
/// owning session's delivery sequence (starts at 1, increments by 1 per
/// published event; gaps mean overflow drops).
struct DeltaEvent {
  std::uint64_t seq = 0;
  ResultDelta delta;
};

struct HubOptions {
  /// Events buffered per session before the oldest is dropped.
  std::size_t buffer_capacity = 1024;
};

/// Observable hub counters.
struct HubStats {
  std::uint64_t published = 0;  ///< deltas handed to Publish
  std::uint64_t delivered = 0;  ///< events moved out by Poll/WaitPoll
  std::uint64_t dropped = 0;    ///< events evicted from full buffers
  std::uint64_t unrouted = 0;   ///< deltas for queries with no binding
};

/// Thread-safe delta router with bounded per-session buffers.
class SubscriptionHub {
 public:
  explicit SubscriptionHub(const HubOptions& options);

  SubscriptionHub(const SubscriptionHub&) = delete;
  SubscriptionHub& operator=(const SubscriptionHub&) = delete;

  /// Creates the session's (empty) buffer. Idempotent.
  void Attach(SessionId session);

  /// Destroys the session's buffer, discarding pending events and any
  /// query bindings still pointing at it.
  void Detach(SessionId session);

  /// Routes future deltas of `query` to `session`'s buffer. AlreadyExists
  /// if the query is bound elsewhere; NotFound if the session is not
  /// attached.
  Status Bind(QueryId query, SessionId session);

  /// Stops routing `query`; buffered events remain consumable.
  void Unbind(QueryId query);

  /// Appends `delta` to the buffer of the session its query is bound to.
  /// Unbound queries are counted (unrouted) and otherwise ignored — a
  /// query may legitimately produce one last delta mid-termination.
  void Publish(const ResultDelta& delta);

  /// Moves up to `max` pending events into *out; returns how many.
  std::size_t Poll(SessionId session, std::size_t max,
                   std::vector<DeltaEvent>* out);

  /// Like Poll, but blocks until at least one event is available or
  /// `timeout` expires.
  std::size_t WaitPoll(SessionId session, std::size_t max,
                       std::chrono::milliseconds timeout,
                       std::vector<DeltaEvent>* out);

  /// Events this session has lost to overflow so far.
  std::uint64_t Dropped(SessionId session) const;

  /// Events currently buffered for this session.
  std::size_t Depth(SessionId session) const;

  HubStats stats() const;

  /// Admin-plane instrumentation: every event moved out by Poll/WaitPoll
  /// records (poll instant − publish instant) into `histogram` — the
  /// cycle-publish→delta-delivery latency the service registers as
  /// topkmon_delta_delivery_latency_seconds. The histogram must outlive
  /// the hub; nullptr (the default) disables timing. Install before the
  /// driver starts publishing (the service constructor does).
  void SetDeliveryHistogram(LatencyHistogram* histogram);

  /// Approximate heap footprint of all buffered events.
  std::size_t MemoryBytes() const;

 private:
  /// A buffered event plus the instant Publish() stamped it — internal
  /// so the public DeltaEvent wire shape carries no clock.
  struct BufferedEvent {
    DeltaEvent event;
    std::chrono::steady_clock::time_point published_at;
  };

  struct Buffer {
    std::deque<BufferedEvent> events;
    std::uint64_t next_seq = 1;
    std::uint64_t dropped = 0;
  };

  std::size_t PollLocked(Buffer& buffer, std::size_t max,
                         std::vector<DeltaEvent>* out);

  const HubOptions options_;

  mutable std::mutex mu_;
  std::condition_variable event_cv_;
  std::unordered_map<SessionId, Buffer> buffers_;
  std::unordered_map<QueryId, SessionId> routes_;
  HubStats stats_;
  LatencyHistogram* delivery_histogram_ = nullptr;
};

}  // namespace topkmon

#endif  // TOPKMON_SERVICE_SUBSCRIPTION_HUB_H_
