#include "service/monitor_service.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <utility>

#include "common/geometry.h"

namespace topkmon {

std::string ServiceStats::ToString() const {
  std::ostringstream os;
  os << "cycles=" << cycles << " ingested=" << records_ingested
     << " applied=" << records_applied << " shed=" << records_shed
     << " coerced=" << records_coerced << " published=" << deltas_published
     << " delivered=" << deltas_delivered << " dropped=" << deltas_dropped
     << " failed_cycles=" << failed_cycles << " queue_depth=" << queue_depth
     << " sessions=" << open_sessions << " queries=" << active_queries;
  return os.str();
}

MonitorService::MonitorService(std::unique_ptr<MonitorEngine> engine,
                               const ServiceOptions& options)
    : options_(options),
      engine_(std::move(engine)),
      dim_(engine_->dim()),
      engine_name_(engine_->name()),
      ingest_(options.ingest),
      sessions_(options.session),
      hub_(options.hub) {
  assert(engine_ != nullptr);
  // Install the fan-out before any query can register or any cycle run,
  // so the very first delta (a query's initial result) is routed.
  engine_->SetDeltaCallback(
      [this](const ResultDelta& delta) { hub_.Publish(delta); });
  driver_ = std::thread([this] { DriverLoop(); });
}

MonitorService::~MonitorService() { Shutdown(); }

Status MonitorService::Ingest(Point position, Timestamp arrival) {
  TOPKMON_RETURN_IF_ERROR(ValidatePoint(position, dim_));
  return ingest_.Push(std::move(position), arrival);
}

Status MonitorService::TryIngest(Point position, Timestamp arrival) {
  TOPKMON_RETURN_IF_ERROR(ValidatePoint(position, dim_));
  if (ingest_.TryPush(std::move(position), arrival)) return Status::Ok();
  if (ingest_.closed()) {
    return Status::FailedPrecondition("ingest queue is closed");
  }
  return Status::FailedPrecondition("ingest queue is full");
}

Result<SessionId> MonitorService::OpenSession(std::string label) {
  Result<SessionId> id = sessions_.Open(std::move(label));
  if (id.ok()) hub_.Attach(*id);
  return id;
}

Status MonitorService::CloseSession(SessionId session) {
  std::lock_guard<std::mutex> control(control_mu_);
  Result<std::vector<QueryId>> owned = sessions_.Close(session);
  if (!owned.ok()) return owned.status();
  Status first_error;
  for (QueryId query : *owned) {
    hub_.Unbind(query);
    std::lock_guard<std::mutex> lock(engine_mu_);
    const Status st = engine_->UnregisterQuery(query);
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  hub_.Detach(session);
  return first_error;
}

Result<QueryId> MonitorService::Register(SessionId session, QuerySpec spec) {
  std::lock_guard<std::mutex> control(control_mu_);
  spec.id = next_query_id_.fetch_add(1);
  TOPKMON_RETURN_IF_ERROR(sessions_.Admit(session, spec.id, spec.k));
  // Bind before registering: the engine reports the initial result as a
  // delta synchronously from RegisterQuery.
  Status st = hub_.Bind(spec.id, session);
  if (st.ok()) {
    std::lock_guard<std::mutex> lock(engine_mu_);
    st = engine_->RegisterQuery(spec);
  }
  if (!st.ok()) {
    hub_.Unbind(spec.id);
    sessions_.Release(spec.id);
    return st;
  }
  return spec.id;
}

Status MonitorService::Unregister(SessionId session, QueryId query) {
  std::lock_guard<std::mutex> control(control_mu_);
  Result<SessionId> owner = sessions_.Owner(query);
  if (!owner.ok()) return owner.status();
  if (*owner != session) {
    return Status::FailedPrecondition(
        "query id " + std::to_string(query) + " is owned by session " +
        std::to_string(*owner) + ", not " + std::to_string(session));
  }
  {
    std::lock_guard<std::mutex> lock(engine_mu_);
    TOPKMON_RETURN_IF_ERROR(engine_->UnregisterQuery(query));
  }
  hub_.Unbind(query);
  return sessions_.Release(query);
}

Result<std::vector<ResultEntry>> MonitorService::CurrentResult(
    QueryId query) const {
  std::lock_guard<std::mutex> lock(engine_mu_);
  return engine_->CurrentResult(query);
}

std::size_t MonitorService::PollDeltas(SessionId session, std::size_t max,
                                       std::vector<DeltaEvent>* out) {
  return hub_.Poll(session, max, out);
}

std::size_t MonitorService::WaitDeltas(SessionId session, std::size_t max,
                                       std::chrono::milliseconds timeout,
                                       std::vector<DeltaEvent>* out) {
  return hub_.WaitPoll(session, max, timeout, out);
}

std::uint64_t MonitorService::DroppedDeltas(SessionId session) const {
  return hub_.Dropped(session);
}

bool MonitorService::NeedsFlush() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return applied_records_ < flush_fence_;
}

void MonitorService::DriverLoop() {
  std::vector<Record> batch;
  Timestamp cycle_ts = 0;
  while (true) {
    batch.clear();
    const std::size_t n =
        ingest_.DrainBatch(&batch, &cycle_ts, options_.drain_wait,
                           /*flush_all=*/NeedsFlush());
    if (n == 0) {
      if (ingest_.closed() && ingest_.depth() == 0) break;
      // A flush fence may already be satisfied (fence raced a drain).
      flush_cv_.notify_all();
      continue;
    }
    CycleObserver observer;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      observer = observer_;
    }
    if (observer) observer(cycle_ts, batch);
    Status st;
    {
      std::lock_guard<std::mutex> lock(engine_mu_);
      st = engine_->ProcessCycle(cycle_ts, batch);
    }
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      applied_records_ += n;
      ++cycles_;
      // Ingest validation makes cycle errors unreachable in practice;
      // count them anyway so a regression is visible, not silent.
      if (!st.ok()) ++failed_cycles_;
    }
    flush_cv_.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    stopped_ = true;
  }
  flush_cv_.notify_all();
}

Status MonitorService::Flush() {
  const std::uint64_t fence = ingest_.PushedSoFar();
  std::unique_lock<std::mutex> lock(state_mu_);
  flush_fence_ = std::max(flush_fence_, fence);
  flush_cv_.wait(lock, [this, fence] {
    return stopped_ || applied_records_ >= fence;
  });
  if (applied_records_ >= fence) return Status::Ok();
  return Status::FailedPrecondition("service stopped before flush finished");
}

void MonitorService::Shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (!shutdown_requested_) {
    shutdown_requested_ = true;
    ingest_.Close();
  }
  if (driver_.joinable()) driver_.join();
}

ServiceStats MonitorService::stats() const {
  ServiceStats out;
  const IngestStats ingest = ingest_.stats();
  const HubStats hub = hub_.stats();
  out.records_ingested = ingest.pushed;
  out.records_shed = ingest.shed;
  out.records_coerced = ingest.coerced;
  out.queue_depth = ingest_.depth();
  out.deltas_published = hub.published;
  out.deltas_delivered = hub.delivered;
  out.deltas_dropped = hub.dropped;
  out.open_sessions = sessions_.OpenSessions();
  out.active_queries = sessions_.ActiveQueries();
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    out.cycles = cycles_;
    out.records_applied = applied_records_;
    out.failed_cycles = failed_cycles_;
  }
  return out;
}

EngineStats MonitorService::EngineCounters() const {
  std::lock_guard<std::mutex> lock(engine_mu_);
  return engine_->stats();
}

MemoryBreakdown MonitorService::Memory() const {
  MemoryBreakdown mb;
  {
    std::lock_guard<std::mutex> lock(engine_mu_);
    mb = engine_->Memory();
  }
  mb.Add("service_ingest", ingest_.MemoryBytes());
  mb.Add("service_hub", hub_.MemoryBytes());
  return mb;
}

void MonitorService::SetCycleObserver(CycleObserver observer) {
  std::lock_guard<std::mutex> lock(state_mu_);
  observer_ = std::move(observer);
}

}  // namespace topkmon
