#include "service/monitor_service.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "common/geometry.h"

namespace topkmon {

std::string ServiceStats::ToString() const {
  std::ostringstream os;
  os << "cycles=" << cycles << " ingested=" << records_ingested
     << " applied=" << records_applied << " shed=" << records_shed
     << " coerced=" << records_coerced
     << " rate_limited=" << records_rate_limited
     << " published=" << deltas_published
     << " delivered=" << deltas_delivered << " dropped=" << deltas_dropped
     << " failed_cycles=" << failed_cycles << " queue_depth=" << queue_depth
     << " sessions=" << open_sessions << " queries=" << active_queries;
  if (journal_records > 0 || journal_bytes > 0 || journal_failures > 0) {
    os << " journal_records=" << journal_records
       << " journal_bytes=" << journal_bytes
       << " journal_snapshots=" << journal_snapshots
       << " journal_failures=" << journal_failures;
  }
  for (const auto& [name, rows] : sections) {
    os << " | " << name << ":";
    for (const auto& [key, value] : rows) {
      os << " " << key << "=" << value;
    }
  }
  return os.str();
}

MonitorService::MonitorService(std::unique_ptr<MonitorEngine> engine,
                               const ServiceOptions& options)
    : MonitorService(std::move(engine), options, RecoveryReport{}, nullptr) {}

MonitorService::MonitorService(std::unique_ptr<MonitorEngine> engine,
                               const ServiceOptions& options,
                               RecoveryReport recovery,
                               std::unique_ptr<CycleJournalWriter> journal,
                               ServiceRole role)
    : options_(options),
      engine_(std::move(engine)),
      dim_(engine_->dim()),
      engine_name_(engine_->name()),
      recovery_(std::move(recovery)),
      epoch_(std::chrono::steady_clock::now()),
      ingest_(options.ingest),
      sessions_(options.session),
      hub_(options.hub),
      role_(role),
      journal_(std::move(journal)) {
  assert(engine_ != nullptr);
  next_query_id_ = static_cast<QueryId>(recovery_.next_query_id);
  applied_cycle_ts_.store(recovery_.last_cycle_ts,
                          std::memory_order_release);
  leader_cycle_ts_.store(recovery_.last_cycle_ts,
                         std::memory_order_release);
  // A journal dir without a pre-built writer means the caller used the
  // plain constructor: start a fresh journal (Open() is the recovery
  // path and hands in a writer that already resumed the directory). A
  // follower never writes its journal dir — the ReplicaFollower ships
  // leader bytes into it, and Promote() opens the writer.
  if (role == ServiceRole::kLeader && journal_ == nullptr &&
      !options_.journal.dir.empty()) {
    auto writer =
        CycleJournalWriter::Open(options_.journal, JournalSnapshot{});
    if (writer.ok()) {
      journal_ = std::move(*writer);
    } else {
      journal_status_ = writer.status();
      journal_failures_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Adopt the persisted fencing epoch before serving: a restarted old
  // leader must come back at the epoch it was deposed at (or its own
  // last term), never at 0. A corrupt EPOCH file is recorded like a
  // journal fault; the service serves at epoch 0 with the gap visible.
  if (!options_.journal.dir.empty()) {
    auto epoch = ReadFencingEpoch(options_.journal.dir);
    if (epoch.ok()) {
      fencing_epoch_.store(*epoch, std::memory_order_release);
    } else {
      journal_failures_.fetch_add(1, std::memory_order_relaxed);
      if (journal_status_.ok()) journal_status_ = epoch.status();
    }
  }
  if (options_.lease.enabled) {
    lease_ = std::make_unique<FencingLease>(options_.lease.duration_seconds);
    // Arm from construction so a leader booted with no follower attached
    // yet has the full lease duration to acquire one.
    lease_->Start(NowSeconds());
  }
  // Instruments (and the admin endpoint) come up before the fan-out is
  // installed and before the driver starts: the delivery histogram must
  // be in place when the first delta is published.
  SetupObservability();
  // Install the fan-out before any query can register or any cycle run,
  // so the very first delta (a query's initial result) is routed.
  engine_->SetDeltaCallback(
      [this](const ResultDelta& delta) { hub_.Publish(delta); });
  AdoptRecoveredQueries();
  if (role == ServiceRole::kFollower) {
    applier_ = std::make_unique<JournalApplier>(*engine_, FollowerHooks());
  } else if (bootstrap_error_.ok()) {
    driver_ = std::thread([this] { DriverLoop(); });
  }
}

MonitorService::~MonitorService() { Shutdown(); }

Result<std::unique_ptr<MonitorService>> MonitorService::Open(
    const std::function<std::unique_ptr<MonitorEngine>()>& engine_factory,
    const ServiceOptions& options) {
  if (options.journal.dir.empty()) {
    return Status::InvalidArgument(
        "MonitorService::Open requires options.journal.dir; use the "
        "constructor for an unjournaled service");
  }
  std::unique_ptr<MonitorEngine> engine = engine_factory();
  if (engine == nullptr) {
    return Status::InvalidArgument("engine factory returned null");
  }
  auto report = RecoveryDriver::Replay(options.journal.dir, *engine);
  if (!report.ok()) return report.status();

  ServiceOptions adjusted = options;
  JournalSnapshot anchor;
  anchor.next_query_id = report->next_query_id;
  if (report->recovered) {
    // Resume the id/timestamp sequences where the journal left off: ids
    // must stay strictly increasing across restarts and no new tuple may
    // time-travel behind the last journaled cycle.
    adjusted.ingest.first_record_id = report->next_record_id;
    adjusted.ingest.min_timestamp = report->last_cycle_ts;
    auto engine_snap = engine->SnapshotState();
    if (!engine_snap.ok()) return engine_snap.status();
    anchor.last_cycle_ts = engine_snap->last_cycle;
    anchor.window = std::move(engine_snap->window);
    anchor.next_record_id = report->next_record_id;
    anchor.live_queries = report->live_queries;
  }
  auto writer = CycleJournalWriter::Open(adjusted.journal, anchor,
                                         /*resuming=*/true);
  if (!writer.ok()) return writer.status();

  std::unique_ptr<MonitorService> service(
      new MonitorService(std::move(engine), adjusted, std::move(*report),
                         std::move(*writer)));
  if (!service->bootstrap_error_.ok()) return service->bootstrap_error_;
  return service;
}

Result<std::unique_ptr<MonitorService>> MonitorService::OpenFollower(
    const std::function<std::unique_ptr<MonitorEngine>()>& engine_factory,
    const ServiceOptions& options, std::string leader_endpoint) {
  if (!engine_factory) {
    return Status::InvalidArgument("engine factory is empty");
  }
  std::unique_ptr<MonitorEngine> engine = engine_factory();
  if (engine == nullptr) {
    return Status::InvalidArgument("engine factory returned null");
  }
  std::unique_ptr<MonitorService> service(new MonitorService(
      std::move(engine), options, RecoveryReport{}, nullptr,
      ServiceRole::kFollower));
  // Safe post-ctor: a follower starts no driver thread, and nothing can
  // feed ApplyReplicated before this function returns the service.
  service->engine_factory_ = engine_factory;
  service->leader_endpoint_ = std::move(leader_endpoint);
  return service;
}

void MonitorService::AdoptRecoveredQueries() {
  std::unordered_map<std::string, SessionId> by_label;
  for (const JournaledQuery& q : recovery_.live_queries) {
    SessionId session = 0;
    auto it = by_label.find(q.owner_label);
    if (it != by_label.end()) {
      session = it->second;
    } else {
      Result<SessionId> opened = OpenSession(q.owner_label);
      if (!opened.ok()) {
        bootstrap_error_ = opened.status();
        return;
      }
      session = *opened;
      by_label.emplace(q.owner_label, session);
    }
    Status st = sessions_.Admit(session, q.spec.id, q.spec.k);
    if (st.ok()) st = hub_.Bind(q.spec.id, session);
    if (!st.ok()) {
      bootstrap_error_ = Status(
          st.code(), "adopting recovered query " +
                         std::to_string(q.spec.id) + " for session '" +
                         q.owner_label + "': " + st.message());
      return;
    }
    journaled_queries_.push_back(q);
  }
}

double MonitorService::NowSeconds() const {
  if (clock_overridden_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(clock_mu_);
    if (clock_override_) return clock_override_();
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void MonitorService::SetClockForTesting(std::function<double()> clock) {
  {
    std::lock_guard<std::mutex> lock(clock_mu_);
    clock_override_ = std::move(clock);
    clock_overridden_.store(static_cast<bool>(clock_override_),
                            std::memory_order_release);
  }
  // Re-arm the lease on the new time base: its last renewal was recorded
  // on the old clock and mixing bases would make expiry arithmetic
  // meaningless mid-test.
  if (lease_ != nullptr) lease_->Start(NowSeconds());
}

template <typename AppendFn>
Status MonitorService::JournalAppendLocked(AppendFn&& append) {
  if (journal_ == nullptr) return Status::Ok();
  const std::uint64_t bytes_before = journal_->stats().bytes_written;
  Status st = append(*journal_);
  // Unimplemented is the writer refusing a non-journalable input (the
  // caller's registration is rejected, nothing was written) — the
  // journal itself is still healthy.
  if (!st.ok() && st.code() != StatusCode::kUnimplemented) {
    journal_failures_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(journal_status_mu_);
    if (journal_status_.ok()) journal_status_ = st;
  }
  if (journal_->stats().bytes_written != bytes_before) {
    // Wakes parked replication fetches: the journal grew.
    journal_progress_.fetch_add(1, std::memory_order_release);
  }
  return st;
}

Status MonitorService::SyncJournal() {
  std::lock_guard<std::mutex> lock(engine_mu_);
  if (journal_ == nullptr) return Status::Ok();
  return JournalAppendLocked(
      [](CycleJournalWriter& w) { return w.Sync(); });
}

Status MonitorService::journal_status() const {
  std::lock_guard<std::mutex> lock(journal_status_mu_);
  return journal_status_;
}

Status MonitorService::RefuseIfFollower() const {
  if (role_.load(std::memory_order_acquire) != ServiceRole::kFollower) {
    return Status::Ok();
  }
  std::string detail = "service is a read-only replication follower";
  {
    std::lock_guard<std::mutex> lock(leader_endpoint_mu_);
    if (!leader_endpoint_.empty()) {
      detail +=
          " (redirect writes to the leader at " + leader_endpoint_ + ")";
    }
  }
  return Status::FailedPrecondition(std::move(detail));
}

Status MonitorService::RefuseIfFenced() {
  if (role_.load(std::memory_order_acquire) != ServiceRole::kLeader) {
    return Status::Ok();
  }
  // Even a leader running without a lease (a promoted replica whose
  // operator opted out of self-fencing) honors the fenced_ latch: once a
  // higher epoch was observed, a newer leader exists somewhere.
  if (!fenced_.load(std::memory_order_acquire)) {
    if (lease_ == nullptr || !lease_->Expired(NowSeconds())) {
      return Status::Ok();
    }
    // Latch: a late follower fetch renewing the lease after this point
    // must not resurrect the term — a new leader may already exist.
    fenced_.store(true, std::memory_order_release);
  }
  return Status::Fenced(
      "leader lease lapsed (fencing epoch " +
      std::to_string(fencing_epoch_.load(std::memory_order_acquire)) +
      "); writes are refused here — re-resolve to the current leader");
}

void MonitorService::NoteFollowerContact() {
  if (lease_ == nullptr ||
      role_.load(std::memory_order_acquire) != ServiceRole::kLeader ||
      fenced_.load(std::memory_order_acquire)) {
    return;
  }
  lease_->Renew(NowSeconds());
}

Status MonitorService::ObserveFencingEpoch(std::uint64_t epoch) {
  if (epoch <= fencing_epoch_.load(std::memory_order_acquire)) {
    return Status::Ok();
  }
  std::lock_guard<std::mutex> lock(epoch_mu_);
  if (epoch <= fencing_epoch_.load(std::memory_order_acquire)) {
    return Status::Ok();
  }
  if (role_.load(std::memory_order_acquire) == ServiceRole::kLeader) {
    // A higher epoch is proof of a completed election: this leader is
    // deposed regardless of what its lease clock says. Latched before
    // the persist — in-memory deposition needs no durability, and a
    // failed persist must not leave a provably deposed leader serving.
    fenced_.store(true, std::memory_order_release);
  }
  if (!options_.journal.dir.empty()) {
    // Persist BEFORE publishing the raised epoch: were the in-memory
    // epoch raised first, a failed persist would make every retry of
    // this call a no-op (epoch <= seen above) and the epoch would never
    // reach disk — a crashed-and-restarted deposed leader could then
    // come back believing in its old term, exactly what the EPOCH file
    // exists to prevent. Callers treat a failure here as retryable (the
    // follower pump backs off and calls again), and the unpublished
    // epoch makes that retry do real work.
    TOPKMON_RETURN_IF_ERROR(
        WriteFencingEpoch(options_.journal.dir, epoch));
  }
  fencing_epoch_.store(epoch, std::memory_order_release);
  return Status::Ok();
}

Status MonitorService::Ingest(Point position, Timestamp arrival) {
  TOPKMON_RETURN_IF_ERROR(RefuseIfFollower());
  TOPKMON_RETURN_IF_ERROR(RefuseIfFenced());
  TOPKMON_RETURN_IF_ERROR(ValidatePoint(position, dim_));
  return ingest_.Push(std::move(position), arrival);
}

Status MonitorService::TryIngest(Point position, Timestamp arrival) {
  TOPKMON_RETURN_IF_ERROR(RefuseIfFollower());
  TOPKMON_RETURN_IF_ERROR(RefuseIfFenced());
  TOPKMON_RETURN_IF_ERROR(ValidatePoint(position, dim_));
  if (ingest_.TryPush(std::move(position), arrival)) return Status::Ok();
  if (ingest_.closed()) {
    return Status::FailedPrecondition("ingest queue is closed");
  }
  // The distinguished backpressure code: callers (and remote producers,
  // via the IngestAck queue_hint) back off and retry instead of
  // treating this as a hard failure.
  return Status::ResourceExhausted("ingest queue is full");
}

Status MonitorService::Ingest(SessionId session, Point position,
                              Timestamp arrival) {
  TOPKMON_RETURN_IF_ERROR(RefuseIfFollower());
  TOPKMON_RETURN_IF_ERROR(
      sessions_.ConsumeIngestTokens(session, 1.0, NowSeconds()));
  return Ingest(std::move(position), arrival);
}

Status MonitorService::TryIngest(SessionId session, Point position,
                                 Timestamp arrival) {
  TOPKMON_RETURN_IF_ERROR(RefuseIfFollower());
  TOPKMON_RETURN_IF_ERROR(
      sessions_.ConsumeIngestTokens(session, 1.0, NowSeconds()));
  return TryIngest(std::move(position), arrival);
}

std::size_t MonitorService::TryIngestBatch(SessionId session,
                                          const Record* records,
                                          std::size_t n, Status* error) {
  *error = RefuseIfFollower();
  if (!error->ok()) return 0;
  *error = RefuseIfFenced();
  if (!error->ok()) return 0;
  if (n == 0) return 0;
#ifndef NDEBUG
  // Records were validated once, at the frame boundary
  // (DecodeIngestBodyToArena); re-validating per record here would
  // undo the single-validation contract, so only debug builds assert it.
  for (std::size_t i = 0; i < n; ++i) {
    assert(ValidatePoint(records[i].position, dim_).ok());
    assert(records[i].arrival >= 0);
  }
#endif
  Status rate_refusal;
  const std::size_t granted = sessions_.ConsumeUpToIngestTokens(
      session, n, NowSeconds(), &rate_refusal);
  const std::size_t pushed =
      granted == 0 ? 0
                   : ingest_.PushBatch(records, granted, &ingest_.arena());
  if (pushed < granted) {
    *error = ingest_.closed()
                 ? Status::FailedPrecondition("ingest queue is closed")
                 : Status::ResourceExhausted("ingest queue is full");
  } else if (granted < n) {
    *error = rate_refusal;
  }
  return pushed;
}

Result<SessionId> MonitorService::OpenSession(std::string label) {
  Result<SessionId> id = sessions_.Open(std::move(label));
  if (id.ok()) hub_.Attach(*id);
  return id;
}

Result<SessionId> MonitorService::FindSession(const std::string& label) const {
  return sessions_.FindByLabel(label);
}

Status MonitorService::CloseSession(SessionId session) {
  std::lock_guard<std::mutex> control(control_mu_);
  // A follower session that owns queries owns *replicated* ones (clients
  // cannot register here), and closing it would unregister them locally
  // and silently diverge from the leader — refuse. A reader session that
  // owns nothing is pure local state; short-lived follower readers must
  // be able to release theirs or they pile into the session limit.
  // control_mu_ serializes this check against replicated registrations.
  if (role_.load(std::memory_order_acquire) == ServiceRole::kFollower) {
    const auto owned = sessions_.QueryCount(session);
    if (!owned.ok()) return owned.status();
    if (*owned > 0) {
      TOPKMON_RETURN_IF_ERROR(RefuseIfFollower());
    }
  }
  // Same shape on a fenced leader: closing a query-owning session would
  // journal unregisters under a deposed term. Query-less sessions stay
  // closable — they are pure local state.
  if (Status fenced = RefuseIfFenced(); !fenced.ok()) {
    const auto owned = sessions_.QueryCount(session);
    if (!owned.ok()) return owned.status();
    if (*owned > 0) return fenced;
  }
  Result<std::vector<QueryId>> owned = sessions_.Close(session);
  if (!owned.ok()) return owned.status();
  Status first_error;
  for (QueryId query : *owned) {
    hub_.Unbind(query);
    std::lock_guard<std::mutex> lock(engine_mu_);
    // Write-ahead: the termination is journaled before it is applied, so
    // a crash in between forgets the query rather than resurrecting it.
    JournalAppendLocked(
        [query](CycleJournalWriter& w) { return w.AppendUnregister(query); });
    const Status st = engine_->UnregisterQuery(query);
    if (!st.ok() && first_error.ok()) first_error = st;
    journaled_queries_.erase(
        std::remove_if(journaled_queries_.begin(), journaled_queries_.end(),
                       [query](const JournaledQuery& q) {
                         return q.spec.id == query;
                       }),
        journaled_queries_.end());
  }
  hub_.Detach(session);
  return first_error;
}

Result<QueryId> MonitorService::Register(SessionId session, QuerySpec spec) {
  TOPKMON_RETURN_IF_ERROR(RefuseIfFollower());
  TOPKMON_RETURN_IF_ERROR(RefuseIfFenced());
  std::lock_guard<std::mutex> control(control_mu_);
  spec.id = next_query_id_.fetch_add(1);
  TOPKMON_RETURN_IF_ERROR(spec.Validate(dim_));
  Result<std::string> label = sessions_.Label(session);
  if (!label.ok()) return label.status();
  TOPKMON_RETURN_IF_ERROR(sessions_.Admit(session, spec.id, spec.k));
  // Bind before registering: the engine reports the initial result as a
  // delta synchronously from RegisterQuery.
  Status st = hub_.Bind(spec.id, session);
  if (st.ok()) {
    std::lock_guard<std::mutex> lock(engine_mu_);
    JournaledQuery journaled{spec, std::move(*label)};
    bool appended = false;
    if (journal_ != nullptr) {
      const Status js = JournalAppendLocked([&journaled](
          CycleJournalWriter& w) { return w.AppendRegister(journaled); });
      appended = js.ok();
      // A spec the journal cannot encode must be refused outright — it
      // would silently vanish on recovery. I/O failures degrade to
      // journal_failures instead (availability over durability).
      if (!js.ok() && js.code() == StatusCode::kUnimplemented) st = js;
    }
    if (st.ok()) st = engine_->RegisterQuery(spec);
    if (st.ok()) {
      journaled_queries_.push_back(std::move(journaled));
    } else if (appended) {
      // Compensate so replay unregisters what the engine refused.
      JournalAppendLocked([&spec](CycleJournalWriter& w) {
        return w.AppendUnregister(spec.id);
      });
    }
  }
  if (!st.ok()) {
    hub_.Unbind(spec.id);
    sessions_.Release(spec.id);
    return st;
  }
  return spec.id;
}

Status MonitorService::Unregister(SessionId session, QueryId query) {
  TOPKMON_RETURN_IF_ERROR(RefuseIfFollower());
  TOPKMON_RETURN_IF_ERROR(RefuseIfFenced());
  std::lock_guard<std::mutex> control(control_mu_);
  Result<SessionId> owner = sessions_.Owner(query);
  if (!owner.ok()) return owner.status();
  if (*owner != session) {
    return Status::FailedPrecondition(
        "query id " + std::to_string(query) + " is owned by session " +
        std::to_string(*owner) + ", not " + std::to_string(session));
  }
  {
    std::lock_guard<std::mutex> lock(engine_mu_);
    JournalAppendLocked(
        [query](CycleJournalWriter& w) { return w.AppendUnregister(query); });
    TOPKMON_RETURN_IF_ERROR(engine_->UnregisterQuery(query));
    journaled_queries_.erase(
        std::remove_if(journaled_queries_.begin(), journaled_queries_.end(),
                       [query](const JournaledQuery& q) {
                         return q.spec.id == query;
                       }),
        journaled_queries_.end());
  }
  hub_.Unbind(query);
  return sessions_.Release(query);
}

Result<std::vector<ResultEntry>> MonitorService::CurrentResult(
    QueryId query) const {
  std::lock_guard<std::mutex> lock(engine_mu_);
  return engine_->CurrentResult(query);
}

Result<SessionId> MonitorService::QueryOwner(QueryId query) const {
  return sessions_.Owner(query);
}

JournalApplier::Hooks MonitorService::FollowerHooks() {
  JournalApplier::Hooks hooks;
  // Both hooks run with control_mu_ + engine_mu_ held by the apply path.
  hooks.register_query = [this](const JournaledQuery& q) -> Status {
    // Session adoption by owner label, exactly like recovery: the oldest
    // open session with the leader-side label owns the replica of its
    // queries, so a follower client resuming that label reads them.
    SessionId session = 0;
    if (const auto found = sessions_.FindByLabel(q.owner_label);
        found.ok()) {
      session = *found;
    } else {
      auto opened = sessions_.Open(q.owner_label);
      if (!opened.ok()) return opened.status();
      hub_.Attach(*opened);
      session = *opened;
    }
    TOPKMON_RETURN_IF_ERROR(sessions_.Admit(session, q.spec.id, q.spec.k));
    Status st = hub_.Bind(q.spec.id, session);
    // Bind before the engine call so the initial-result delta routes.
    if (st.ok()) {
      st = engine_->RegisterQuery(q.spec);
      if (!st.ok()) hub_.Unbind(q.spec.id);
    }
    if (!st.ok()) sessions_.Release(q.spec.id);
    return st;
  };
  hooks.unregister_query = [this](QueryId id) -> Status {
    const Status st = engine_->UnregisterQuery(id);
    hub_.Unbind(id);
    sessions_.Release(id);
    return st;
  };
  return hooks;
}

Status MonitorService::ApplyReplicatedAnchor(JournalSnapshot anchor) {
  if (role_.load(std::memory_order_acquire) != ServiceRole::kFollower) {
    return Status::FailedPrecondition(
        "ApplyReplicatedAnchor on a leader service");
  }
  std::lock_guard<std::mutex> control(control_mu_);
  std::lock_guard<std::mutex> lock(engine_mu_);
  TOPKMON_RETURN_IF_ERROR(applier_->ApplyAnchor(std::move(anchor)));
  applied_cycle_ts_.store(applier_->last_cycle_ts(),
                          std::memory_order_release);
  return Status::Ok();
}

Status MonitorService::ApplyReplicated(const JournalRecord& record) {
  if (role_.load(std::memory_order_acquire) != ServiceRole::kFollower) {
    return Status::FailedPrecondition("ApplyReplicated on a leader service");
  }
  if (record.type == JournalRecordType::kCycle) {
    CycleObserver observer;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      observer = observer_;
    }
    // Same seam the driver offers: tests replay the observed cycles into
    // a reference engine for ground truth.
    if (observer) observer(record.cycle_ts, record.batch);
    Status st;
    {
      std::lock_guard<std::mutex> lock(engine_mu_);
      st = applier_->Apply(record);
      if (st.ok()) {
        applied_cycle_ts_.store(applier_->last_cycle_ts(),
                                std::memory_order_release);
      }
    }
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      if (st.ok()) {
        applied_records_ += record.batch.size();
        replicated_records_ += record.batch.size();
        ++cycles_;
      } else {
        ++failed_cycles_;
      }
    }
    // The replayed cycle may have published deltas into the hub: wake
    // any front-end with parked long-polls on this follower.
    if (st.ok()) NotifyProgress();
    return st;
  }
  std::lock_guard<std::mutex> control(control_mu_);
  std::lock_guard<std::mutex> lock(engine_mu_);
  return applier_->Apply(record);
}

Status MonitorService::ResetFollowerState() {
  if (role_.load(std::memory_order_acquire) != ServiceRole::kFollower) {
    return Status::FailedPrecondition("ResetFollowerState on a leader");
  }
  std::lock_guard<std::mutex> control(control_mu_);
  std::lock_guard<std::mutex> lock(engine_mu_);
  std::unique_ptr<MonitorEngine> fresh = engine_factory_();
  if (fresh == nullptr) {
    return Status::Internal("engine factory returned null on resync");
  }
  if (fresh->dim() != dim_) {
    return Status::FailedPrecondition(
        "resync engine dimensionality changed");
  }
  // Drop every replicated query binding; sessions (and buffered deltas)
  // survive so attached subscribers keep their streams across the
  // resync — the new anchor re-registers the live set under the same
  // labels and ids.
  for (const JournaledQuery& q : applier_->live_queries()) {
    hub_.Unbind(q.spec.id);
    sessions_.Release(q.spec.id);
  }
  engine_ = std::move(fresh);
  engine_->SetDeltaCallback(
      [this](const ResultDelta& delta) { hub_.Publish(delta); });
  applier_ = std::make_unique<JournalApplier>(*engine_, FollowerHooks());
  applied_cycle_ts_.store(0, std::memory_order_release);
  return Status::Ok();
}

Status MonitorService::Promote() {
  // Operator promotions mint with the reserved operator rank, so a
  // manual Promote() racing an automatic election can never settle on
  // the same epoch as an agent-minted one (see lease.h).
  return Promote(
      MintFencingEpoch(fencing_epoch_.load(std::memory_order_acquire),
                       kOperatorFencingRank));
}

Status MonitorService::Promote(std::uint64_t new_epoch) {
  std::lock_guard<std::mutex> control(control_mu_);
  std::lock_guard<std::mutex> lock(engine_mu_);
  // Serializes the epoch persist/publish against ObserveFencingEpoch
  // (the pump is stopped before Promote in practice, but a late
  // observation must not interleave between our persist and store).
  std::lock_guard<std::mutex> epoch_lock(epoch_mu_);
  if (role_.load(std::memory_order_acquire) != ServiceRole::kFollower) {
    return Status::FailedPrecondition("service is already a leader");
  }
  if (new_epoch <= fencing_epoch_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument(
        "promotion epoch " + std::to_string(new_epoch) +
        " does not exceed the highest observed epoch " +
        std::to_string(fencing_epoch_.load(std::memory_order_acquire)));
  }
  if (!options_.journal.dir.empty()) {
    // Fencing before serving: the new term must be durable before any
    // write can be accepted under it, or a crash-and-restart could
    // resurrect this node at the deposed leader's epoch.
    TOPKMON_RETURN_IF_ERROR(
        WriteFencingEpoch(options_.journal.dir, new_epoch));
  }
  // Seal replay bookkeeping into the service's own sequences: new ingest
  // continues the leader's record ids and cannot time-travel behind the
  // last replayed cycle; new registrations continue the query-id space.
  journaled_queries_ = applier_->live_queries();
  next_query_id_ = static_cast<QueryId>(applier_->next_query_id());
  TOPKMON_RETURN_IF_ERROR(ingest_.ResumeSequences(
      applier_->next_record_id(), applier_->last_cycle_ts()));
  if (!options_.journal.dir.empty()) {
    auto snap = BuildSnapshotLocked();
    if (!snap.ok()) return snap.status();
    auto writer = CycleJournalWriter::Open(options_.journal, *snap,
                                           /*resuming=*/true);
    if (!writer.ok()) return writer.status();
    journal_ = std::move(*writer);
    // The promoted writer is a new object: re-inject the fsync
    // histogram the follower-role service never had a writer for.
    journal_->set_fsync_histogram(journal_fsync_hist_);
    journal_progress_.fetch_add(1, std::memory_order_release);
  }
  fencing_epoch_.store(new_epoch, std::memory_order_release);
  fenced_.store(false, std::memory_order_release);
  if (lease_ != nullptr) lease_->Start(NowSeconds());
  role_.store(ServiceRole::kLeader, std::memory_order_release);
  driver_ = std::thread([this] { DriverLoop(); });
  return Status::Ok();
}

ReplicationInfo MonitorService::replication() const {
  ReplicationInfo info;
  info.role = role_.load(std::memory_order_acquire);
  info.applied_cycle_ts = applied_cycle_ts_.load(std::memory_order_acquire);
  info.leader_cycle_ts =
      info.role == ServiceRole::kLeader
          ? info.applied_cycle_ts
          : std::max(info.applied_cycle_ts,
                     leader_cycle_ts_.load(std::memory_order_acquire));
  {
    std::lock_guard<std::mutex> lock(leader_endpoint_mu_);
    info.leader_endpoint = leader_endpoint_;
  }
  info.fencing_epoch = fencing_epoch_.load(std::memory_order_acquire);
  return info;
}

void MonitorService::SetLeaderEndpoint(std::string endpoint) {
  std::lock_guard<std::mutex> lock(leader_endpoint_mu_);
  leader_endpoint_ = std::move(endpoint);
}

void MonitorService::SetLeaderProgress(Timestamp leader_cycle_ts) {
  // Monotone max: chunks can arrive with an unchanged leader timestamp.
  Timestamp seen = leader_cycle_ts_.load(std::memory_order_relaxed);
  while (seen < leader_cycle_ts &&
         !leader_cycle_ts_.compare_exchange_weak(
             seen, leader_cycle_ts, std::memory_order_release,
             std::memory_order_relaxed)) {
  }
}

std::size_t MonitorService::PollDeltas(SessionId session, std::size_t max,
                                       std::vector<DeltaEvent>* out) {
  return hub_.Poll(session, max, out);
}

std::size_t MonitorService::WaitDeltas(SessionId session, std::size_t max,
                                       std::chrono::milliseconds timeout,
                                       std::vector<DeltaEvent>* out) {
  return hub_.WaitPoll(session, max, timeout, out);
}

std::uint64_t MonitorService::DroppedDeltas(SessionId session) const {
  return hub_.Dropped(session);
}

std::size_t MonitorService::PendingDeltas(SessionId session) const {
  return hub_.Depth(session);
}

void MonitorService::NoteJournalGrowth() {
  journal_progress_.fetch_add(1, std::memory_order_release);
  NotifyProgress();
}

std::uint64_t MonitorService::AddProgressListener(
    std::function<void()> listener) {
  std::lock_guard<std::mutex> lock(listeners_mu_);
  const std::uint64_t id = next_listener_id_++;
  listeners_.emplace_back(id, std::move(listener));
  return id;
}

void MonitorService::RemoveProgressListener(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(listeners_mu_);
  listeners_.erase(
      std::remove_if(listeners_.begin(), listeners_.end(),
                     [id](const auto& entry) { return entry.first == id; }),
      listeners_.end());
}

void MonitorService::NotifyProgress() {
  // Listeners are cheap by contract (a pipe write), so they run under
  // the lock — which also guarantees RemoveProgressListener returns
  // only after any in-flight invocation of the removed listener.
  std::lock_guard<std::mutex> lock(listeners_mu_);
  for (const auto& [id, fn] : listeners_) fn();
}

std::uint8_t MonitorService::IngestPressure() const {
  return ingest_.Pressure();
}

bool MonitorService::NeedsFlush() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return applied_records_ - replicated_records_ < flush_fence_;
}

Result<JournalSnapshot> MonitorService::BuildSnapshotLocked() const {
  auto engine_snap = engine_->SnapshotState();
  if (!engine_snap.ok()) return engine_snap.status();
  JournalSnapshot snap;
  snap.last_cycle_ts = engine_snap->last_cycle;
  snap.window = std::move(engine_snap->window);
  snap.next_record_id = ingest_.NextRecordId();
  snap.next_query_id = next_query_id_.load();
  snap.live_queries = journaled_queries_;
  return snap;
}

void MonitorService::DriverLoop() {
  std::vector<Record> batch;
  Timestamp cycle_ts = 0;
  while (true) {
    batch.clear();
    std::chrono::steady_clock::time_point oldest_push{};
    const std::size_t n =
        ingest_.DrainBatch(&batch, &cycle_ts, options_.drain_wait,
                           /*flush_all=*/NeedsFlush(), &oldest_push);
    if (n == 0) {
      if (ingest_.closed() && ingest_.depth() == 0) break;
      // Idle loop: let the group-commit time trigger push any unsynced
      // tail to the platter even though no append will run for a while.
      {
        std::lock_guard<std::mutex> lock(engine_mu_);
        if (journal_ != nullptr) {
          JournalAppendLocked(
              [](CycleJournalWriter& w) { return w.SyncIfDue(); });
        }
      }
      // A flush fence may already be satisfied (fence raced a drain).
      flush_cv_.notify_all();
      continue;
    }
    CycleObserver observer;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      observer = observer_;
    }
    if (observer) observer(cycle_ts, batch);
    Status st;
    {
      std::lock_guard<std::mutex> lock(engine_mu_);
      // Write-ahead: the batch is journaled before it is applied, so the
      // journal never misses state a client may have observed.
      JournalAppendLocked([cycle_ts, &batch](CycleJournalWriter& w) {
        return w.AppendCycle(cycle_ts, batch);
      });
      st = engine_->ProcessCycle(cycle_ts, batch);
      if (st.ok()) {
        applied_cycle_ts_.store(cycle_ts, std::memory_order_release);
      }
      if (journal_ != nullptr && journal_->SnapshotDue()) {
        auto snap = BuildSnapshotLocked();
        if (snap.ok()) {
          JournalAppendLocked([&snap](CycleJournalWriter& w) {
            return w.RotateWithSnapshot(*snap);
          });
        } else {
          journal_failures_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    // The cycle's deltas were published inside ProcessCycle (the delta
    // callback runs synchronously): the batch's oldest record has now
    // completed the ingest->publish span. One sample per cycle, the
    // per-batch worst case.
    if (st.ok() && ingest_publish_hist_ != nullptr) {
      ingest_publish_hist_->Record(std::chrono::steady_clock::now() -
                                   oldest_push);
    }
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      applied_records_ += n;
      ++cycles_;
      // Ingest validation makes cycle errors unreachable in practice;
      // count them anyway so a regression is visible, not silent.
      if (!st.ok()) ++failed_cycles_;
    }
    flush_cv_.notify_all();
    // The cycle may have published deltas and grown the journal: wake
    // front-end poll loops holding parked long-polls or fetches.
    NotifyProgress();
    // Cycle published: hand the drained records' arena storage back so
    // the decode path recycles it instead of growing the arena.
    ingest_.CommitDrained();
  }
  ingest_.CommitDrained();
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    stopped_ = true;
  }
  flush_cv_.notify_all();
}

Status MonitorService::Flush() {
  const std::uint64_t fence = ingest_.PushedSoFar();
  std::unique_lock<std::mutex> lock(state_mu_);
  flush_fence_ = std::max(flush_fence_, fence);
  // Records applied via replication never passed through the ingest
  // queue, so they must not satisfy a fence counted in queue pushes — a
  // promoted leader's replicated history would otherwise cover any
  // fence and Flush() would return before its first own write applied.
  flush_cv_.wait(lock, [this, fence] {
    return stopped_ || applied_records_ - replicated_records_ >= fence;
  });
  if (applied_records_ - replicated_records_ >= fence) return Status::Ok();
  return Status::FailedPrecondition("service stopped before flush finished");
}

void MonitorService::Shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  // Admin first: its handlers read the service, so the introspection
  // thread must be parked before any component starts tearing down.
  if (admin_ != nullptr) admin_->Stop();
  if (!shutdown_requested_) {
    shutdown_requested_ = true;
    ingest_.Close();
  }
  if (driver_.joinable()) driver_.join();
  // With the driver parked, seal the journal: a final snapshot segment
  // makes the next Open() replay nothing. Never after a failed bootstrap
  // — journaled_queries_ is only partially adopted there, and rotating
  // would garbage-collect the segment holding the full recovered state.
  std::lock_guard<std::mutex> engine_lock(engine_mu_);
  if (journal_ != nullptr && !journal_->closed()) {
    if (options_.journal.snapshot_on_shutdown && bootstrap_error_.ok()) {
      auto snap = BuildSnapshotLocked();
      if (snap.ok()) {
        JournalAppendLocked([&snap](CycleJournalWriter& w) {
          return w.RotateWithSnapshot(*snap);
        });
      } else {
        journal_failures_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    JournalAppendLocked(
        [](CycleJournalWriter& w) { return w.Close(); });
  }
}

ServiceStats MonitorService::CoreStats() const {
  ServiceStats out;
  const IngestStats ingest = ingest_.stats();
  const HubStats hub = hub_.stats();
  out.records_ingested = ingest.pushed;
  out.records_shed = ingest.shed;
  out.records_coerced = ingest.coerced;
  out.records_rate_limited = sessions_.stats().rate_limited;
  out.queue_depth = ingest_.depth();
  out.deltas_published = hub.published;
  out.deltas_delivered = hub.delivered;
  out.deltas_dropped = hub.dropped;
  out.open_sessions = sessions_.OpenSessions();
  out.active_queries = sessions_.ActiveQueries();
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    out.cycles = cycles_;
    out.records_applied = applied_records_;
    out.failed_cycles = failed_cycles_;
  }
  {
    std::lock_guard<std::mutex> lock(engine_mu_);
    if (journal_ != nullptr) {
      const JournalWriterStats& js = journal_->stats();
      out.journal_records = js.records_appended;
      out.journal_bytes = js.bytes_written;
      out.journal_snapshots = js.snapshots_written;
    }
  }
  out.journal_failures = journal_failures_.load(std::memory_order_relaxed);
  return out;
}

ServiceStats MonitorService::stats() const {
  ServiceStats out = CoreStats();
  std::lock_guard<std::mutex> lock(sections_mu_);
  for (const auto& [id, name, provider] : sections_) {
    (void)id;
    out.sections.emplace_back(name, provider());
  }
  return out;
}

std::uint64_t MonitorService::AddStatsSection(std::string name,
                                              StatsSectionProvider provider) {
  std::lock_guard<std::mutex> lock(sections_mu_);
  const std::uint64_t id = next_section_id_++;
  sections_.emplace_back(id, std::move(name), std::move(provider));
  return id;
}

void MonitorService::RemoveStatsSection(std::uint64_t id) {
  // sections_mu_ is held while providers run (stats()), so acquiring it
  // here is the barrier that makes captured objects safe to destroy.
  std::lock_guard<std::mutex> lock(sections_mu_);
  sections_.erase(
      std::remove_if(sections_.begin(), sections_.end(),
                     [id](const auto& entry) {
                       return std::get<0>(entry) == id;
                     }),
      sections_.end());
}

std::uint16_t MonitorService::admin_port() const {
  return admin_ != nullptr ? admin_->port() : 0;
}

Status MonitorService::admin_status() const { return admin_status_; }

void MonitorService::SetupObservability() {
  ingest_publish_hist_ = metrics_.RegisterHistogram(
      "topkmon_ingest_publish_latency_seconds",
      "Time from a record entering the ingest queue to its cycle's "
      "deltas being published (one sample per cycle: the batch's oldest "
      "record, i.e. the worst case)");
  delta_delivery_hist_ = metrics_.RegisterHistogram(
      "topkmon_delta_delivery_latency_seconds",
      "Time from a delta event being published to a session polling it "
      "out of its subscription buffer");
  journal_fsync_hist_ = metrics_.RegisterHistogram(
      "topkmon_journal_fsync_latency_seconds",
      "Wall time of journal fdatasync calls (the group-commit ack "
      "point)");
  hub_.SetDeliveryHistogram(delta_delivery_hist_);
  if (journal_ != nullptr) {
    journal_->set_fsync_histogram(journal_fsync_hist_);
  }
  metrics_.AddSampler(
      [this](MetricSink& sink) { SampleServiceMetrics(sink); });
  if (options_.admin.enabled) {
    admin_ = std::make_unique<AdminHttpServer>(options_.admin);
    admin_->Handle("/metrics", [this] { return ServeMetrics(); });
    admin_->Handle("/statusz", [this] { return ServeStatusz(); });
    admin_->Handle("/healthz", [this] { return ServeHealthz(); });
    admin_status_ = admin_->Start();
    // Best-effort: a node whose admin port is taken still serves data.
    if (!admin_status_.ok()) admin_.reset();
  }
}

void MonitorService::SampleServiceMetrics(MetricSink& sink) const {
  const ServiceStats s = CoreStats();
  sink.AddCounter("topkmon_cycles_total", "Engine cycles driven",
                  static_cast<double>(s.cycles));
  sink.AddCounter("topkmon_records_ingested_total",
                  "Records accepted by the ingest queue",
                  static_cast<double>(s.records_ingested));
  sink.AddCounter("topkmon_records_applied_total",
                  "Records applied to the engine",
                  static_cast<double>(s.records_applied));
  sink.AddCounter("topkmon_records_shed_total",
                  "TryIngest refusals with the queue full",
                  static_cast<double>(s.records_shed));
  sink.AddCounter("topkmon_records_coerced_total",
                  "Straggler records time-shifted to the frontier",
                  static_cast<double>(s.records_coerced));
  sink.AddCounter("topkmon_records_rate_limited_total",
                  "Session token-bucket ingest refusals",
                  static_cast<double>(s.records_rate_limited));
  sink.AddCounter("topkmon_deltas_published_total",
                  "Engine deltas entering the subscription hub",
                  static_cast<double>(s.deltas_published));
  sink.AddCounter("topkmon_deltas_delivered_total",
                  "Delta events consumed by sessions",
                  static_cast<double>(s.deltas_delivered));
  sink.AddCounter("topkmon_deltas_dropped_total",
                  "Delta events lost to slow consumers",
                  static_cast<double>(s.deltas_dropped));
  sink.AddCounter("topkmon_failed_cycles_total",
                  "ProcessCycle errors (bug guard)",
                  static_cast<double>(s.failed_cycles));
  sink.AddCounter("topkmon_journal_records_total",
                  "Records appended to the cycle journal",
                  static_cast<double>(s.journal_records));
  sink.AddCounter("topkmon_journal_bytes_total",
                  "Bytes written to the cycle journal",
                  static_cast<double>(s.journal_bytes));
  sink.AddCounter("topkmon_journal_snapshots_total",
                  "Snapshot records written to the journal",
                  static_cast<double>(s.journal_snapshots));
  sink.AddCounter("topkmon_journal_failures_total",
                  "Failed journal appends or rotations",
                  static_cast<double>(s.journal_failures));
  sink.AddGauge("topkmon_ingest_queue_depth",
                "Records waiting in the ingest queue",
                static_cast<double>(s.queue_depth));
  sink.AddGauge("topkmon_ingest_queue_pressure",
                "Backpressure byte surfaced to producers (0 calm, "
                "1..255 above the high-water mark)",
                static_cast<double>(IngestPressure()));
  sink.AddGauge("topkmon_open_sessions", "Currently open sessions",
                static_cast<double>(s.open_sessions));
  sink.AddGauge("topkmon_active_queries",
                "Live continuous queries across all sessions",
                static_cast<double>(s.active_queries));
  const ReplicationInfo repl = replication();
  sink.AddGauge("topkmon_is_leader",
                "1 when this service accepts writes, 0 on a follower",
                repl.role == ServiceRole::kLeader ? 1.0 : 0.0);
  sink.AddGauge("topkmon_fenced",
                "1 once this leader has fenced itself (deposed)",
                IsFenced() ? 1.0 : 0.0);
  sink.AddGauge("topkmon_fencing_epoch",
                "Highest fencing epoch adopted or observed",
                static_cast<double>(repl.fencing_epoch));
  sink.AddGauge("topkmon_applied_cycle_timestamp",
                "Timestamp of the last cycle applied to this engine",
                static_cast<double>(repl.applied_cycle_ts));
  sink.AddGauge("topkmon_replication_staleness",
                "Leader cycle timestamp minus applied cycle timestamp "
                "(0 on a leader)",
                static_cast<double>(repl.StaleBy()));
  sink.AddGauge("topkmon_journal_healthy",
                "1 while journaling is healthy or disabled",
                journal_status().ok() ? 1.0 : 0.0);
  const RecordArenaStats arena = ingest_.ArenaStats();
  sink.AddGauge("topkmon_arena_bytes",
                "Slab bytes held by the ingest record arena "
                "(live chunks + free list)",
                static_cast<double>(arena.resident_bytes));
  sink.AddGauge("topkmon_arena_peak_bytes",
                "High-water mark of topkmon_arena_bytes",
                static_cast<double>(arena.peak_resident_bytes));
  sink.AddCounter("topkmon_arena_chunks_created_total",
                  "Fresh slab allocations by the ingest record arena",
                  static_cast<double>(arena.chunks_created));
  sink.AddCounter("topkmon_arena_chunks_recycled_total",
                  "Arena chunks reclaimed through the free list",
                  static_cast<double>(arena.chunks_recycled));
}

AdminResponse MonitorService::ServeMetrics() const {
  AdminResponse r;
  r.content_type = "text/plain; version=0.0.4; charset=utf-8";
  r.body = metrics_.Snapshot().ToPrometheus();
  return r;
}

AdminResponse MonitorService::ServeStatusz() const {
  const ServiceStats s = stats();
  const ReplicationInfo repl = replication();
  const Status js = journal_status();
  std::ostringstream os;
  os << "{\"role\":\""
     << (repl.role == ServiceRole::kFollower ? "follower" : "leader")
     << "\",\"fenced\":" << (IsFenced() ? "true" : "false")
     << ",\"fencing_epoch\":" << repl.fencing_epoch
     << ",\"lease_enabled\":" << (lease_enabled() ? "true" : "false")
     << ",\"leader_endpoint\":\"" << JsonEscape(repl.leader_endpoint)
     << "\"";
  os << ",\"replication\":{\"applied_cycle_ts\":" << repl.applied_cycle_ts
     << ",\"leader_cycle_ts\":" << repl.leader_cycle_ts
     << ",\"stale_by\":" << repl.StaleBy() << "}";
  os << ",\"service\":{\"cycles\":" << s.cycles
     << ",\"records_ingested\":" << s.records_ingested
     << ",\"records_applied\":" << s.records_applied
     << ",\"records_shed\":" << s.records_shed
     << ",\"records_coerced\":" << s.records_coerced
     << ",\"records_rate_limited\":" << s.records_rate_limited
     << ",\"deltas_published\":" << s.deltas_published
     << ",\"deltas_delivered\":" << s.deltas_delivered
     << ",\"deltas_dropped\":" << s.deltas_dropped
     << ",\"failed_cycles\":" << s.failed_cycles << "}";
  os << ",\"ingest\":{\"queue_depth\":" << s.queue_depth
     << ",\"queue_capacity\":" << options_.ingest.capacity
     << ",\"pressure\":" << static_cast<unsigned>(IngestPressure()) << "}";
  os << ",\"journal\":{\"dir\":\"" << JsonEscape(options_.journal.dir)
     << "\",\"healthy\":" << (js.ok() ? "true" : "false")
     << ",\"status\":\"" << JsonEscape(js.ok() ? "ok" : js.message())
     << "\",\"records\":" << s.journal_records
     << ",\"bytes\":" << s.journal_bytes
     << ",\"snapshots\":" << s.journal_snapshots
     << ",\"failures\":" << s.journal_failures << "}";
  os << ",\"sessions\":[";
  bool first = true;
  for (const SessionInfo& info : sessions_.List()) {
    if (!first) os << ",";
    first = false;
    os << "{\"id\":" << info.id << ",\"label\":\""
       << JsonEscape(info.label) << "\",\"queries\":" << info.queries
       << ",\"pending_deltas\":" << hub_.Depth(info.id)
       << ",\"dropped_deltas\":" << hub_.Dropped(info.id) << "}";
  }
  os << "]";
  os << ",\"sections\":{";
  first = true;
  for (const auto& [name, rows] : s.sections) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":{";
    bool first_row = true;
    for (const auto& [key, value] : rows) {
      if (!first_row) os << ",";
      first_row = false;
      os << "\"" << JsonEscape(key) << "\":\"" << JsonEscape(value)
         << "\"";
    }
    os << "}";
  }
  os << "}}";
  AdminResponse r;
  r.content_type = "application/json";
  r.body = os.str();
  return r;
}

AdminResponse MonitorService::ServeHealthz() const {
  AdminResponse r;
  if (role() == ServiceRole::kFollower) {
    r.body = "follower-ok\n";
    return r;
  }
  // A lapsed lease degrades health even before a refused write latches
  // fenced_ — the probe must not depend on write traffic to notice.
  const bool degraded =
      IsFenced() || (lease_ != nullptr && lease_->Expired(NowSeconds()));
  if (degraded) {
    r.status = 503;
    r.body = "fenced-degraded (fencing epoch " +
             std::to_string(fencing_epoch()) + ")\n";
  } else {
    r.body = "leader-ok\n";
  }
  return r;
}

EngineStats MonitorService::EngineCounters() const {
  std::lock_guard<std::mutex> lock(engine_mu_);
  return engine_->stats();
}

MemoryBreakdown MonitorService::Memory() const {
  MemoryBreakdown mb;
  {
    std::lock_guard<std::mutex> lock(engine_mu_);
    mb = engine_->Memory();
  }
  mb.Add("service_ingest", ingest_.MemoryBytes());
  mb.Add("service_hub", hub_.MemoryBytes());
  return mb;
}

void MonitorService::SetCycleObserver(CycleObserver observer) {
  std::lock_guard<std::mutex> lock(state_mu_);
  observer_ = std::move(observer);
}

}  // namespace topkmon
