#include "service/ingest_queue.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

namespace topkmon {

IngestQueue::IngestQueue(const IngestOptions& options)
    : options_(options), arena_(options.arena) {
  assert(options_.capacity > 0);
  assert(options_.max_batch > 0);
  assert(options_.slack >= 0);
  buf_.reserve(std::min<std::size_t>(options_.capacity, 4096));
  next_id_ = options_.first_record_id;
  frontier_ = options_.min_timestamp;
  max_seen_ = options_.min_timestamp;
}

IngestQueue::~IngestQueue() {
  // Backstop: a queue destroyed with records still buffered (or drained
  // but uncommitted) hands their storage back so external arenas do not
  // leak. Single-record releases are fine here — this is not a hot path.
  for (std::size_t i = head_; i < buf_.size(); ++i) {
    if (buf_[i].owner != nullptr) buf_[i].owner->Release(buf_[i].rec, 1);
  }
  buf_.clear();
  head_ = 0;
  CommitDrained();
}

void IngestQueue::PushLocked(const Record* rec, Timestamp arrival,
                             RecordArena* owner) {
  if (is_sorted_ && head_ < buf_.size() && arrival < buf_.back().arrival) {
    is_sorted_ = false;
  }
  buf_.push_back(Pending{arrival, push_seq_++, rec, owner,
                         std::chrono::steady_clock::now()});
  max_seen_ = std::max(max_seen_, arrival);
  min_arrival_ = std::min(min_arrival_, arrival);
  ++stats_.pushed;
  stats_.max_depth = std::max(stats_.max_depth, SizeLocked());
}

Status IngestQueue::Push(Point position, Timestamp arrival) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_cv_.wait(lock, [this] {
    return closed_ || SizeLocked() < options_.capacity;
  });
  if (closed_) {
    return Status::FailedPrecondition("ingest queue is closed");
  }
  Record* rec = arena_.Allocate(1);
  rec->id = kInvalidRecordId;
  rec->position = std::move(position);
  rec->arrival = arrival;
  PushLocked(rec, arrival, &arena_);
  drain_cv_.notify_one();
  return Status::Ok();
}

bool IngestQueue::TryPush(Point position, Timestamp arrival) {
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_ || SizeLocked() >= options_.capacity) {
    if (!closed_) ++stats_.shed;
    return false;
  }
  Record* rec = arena_.Allocate(1);
  rec->id = kInvalidRecordId;
  rec->position = std::move(position);
  rec->arrival = arrival;
  PushLocked(rec, arrival, &arena_);
  drain_cv_.notify_one();
  return true;
}

std::size_t IngestQueue::PushBatch(const Record* records, std::size_t n,
                                   RecordArena* owner) {
  if (n == 0) return 0;
  std::size_t accepted = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) return 0;
    const std::size_t space = options_.capacity - SizeLocked();
    accepted = std::min(n, space);
    for (std::size_t i = 0; i < accepted; ++i) {
      PushLocked(&records[i], records[i].arrival, owner);
    }
    stats_.shed += n - accepted;
  }
  if (accepted > 0) drain_cv_.notify_one();
  return accepted;
}

bool IngestQueue::ReleasableLocked() const {
  if (SizeLocked() == 0) return false;
  // min_arrival_ tracks the earliest buffered arrival without a scan.
  return min_arrival_ + options_.slack <= max_seen_;
}

void IngestQueue::SortLocked() {
  if (is_sorted_) return;
  std::sort(buf_.begin() + static_cast<std::ptrdiff_t>(head_), buf_.end(),
            [](const Pending& a, const Pending& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              return a.seq < b.seq;
            });
  is_sorted_ = true;
  ++stats_.sorts;
}

std::size_t IngestQueue::DrainBatch(
    std::vector<Record>* out, Timestamp* cycle_ts,
    std::chrono::milliseconds max_wait, bool flush_all,
    std::chrono::steady_clock::time_point* oldest_push) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!flush_all && !closed_ && !ReleasableLocked()) {
    drain_cv_.wait_for(lock, max_wait,
                       [this] { return closed_ || ReleasableLocked(); });
  }
  if (SizeLocked() == 0) return 0;
  // A timeout with data buffered opens the slack gate: bounded staleness
  // beats holding the last records of a quiet stream forever.
  const bool open_gate = flush_all || closed_ || !ReleasableLocked();
  SortLocked();
  std::size_t released = 0;
  while (released < options_.max_batch && head_ < buf_.size()) {
    Pending& p = buf_[head_];
    if (!open_gate && p.arrival + options_.slack > max_seen_) break;
    Timestamp arrival = p.arrival;
    if (arrival < frontier_) {
      // Straggler beyond the slack: advance it to the frontier so the
      // batch stays time-ordered for the window. The arena copy keeps
      // its original timestamp — only the drained copy is coerced.
      arrival = frontier_;
      ++stats_.coerced;
    }
    frontier_ = arrival;
    if (oldest_push != nullptr &&
        (released == 0 || p.pushed_at < *oldest_push)) {
      *oldest_push = p.pushed_at;
    }
    out->emplace_back(next_id_++, p.rec->position, arrival);
    pending_release_.push_back(Parked{p.rec, p.owner});
    ++head_;
    ++released;
  }
  if (head_ == buf_.size()) {
    buf_.clear();
    head_ = 0;
  } else if (head_ >= 64 && head_ * 2 >= buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  min_arrival_ = head_ < buf_.size() ? buf_[head_].arrival
                                     : std::numeric_limits<Timestamp>::max();
  if (released > 0) {
    ++stats_.batches;
    *cycle_ts = frontier_;
    // Seal the drained records' allocation epoch so their chunks retire
    // as soon as CommitDrained hands the storage back.
    const std::uint64_t sealed = arena_.AdvanceEpoch();
    arena_.RetireThrough(sealed);
    not_full_cv_.notify_all();
  }
  return released;
}

void IngestQueue::CommitDrained() {
  std::vector<Parked> parked;
  {
    std::lock_guard<std::mutex> lock(mu_);
    parked.swap(pending_release_);
  }
  // Coalesce contiguous same-owner runs (a drained wire frame releases
  // as one call) and hand the storage back outside the queue mutex.
  std::size_t i = 0;
  while (i < parked.size()) {
    std::size_t j = i + 1;
    while (j < parked.size() && parked[j].owner == parked[i].owner &&
           parked[j].rec == parked[i].rec + (j - i)) {
      ++j;
    }
    if (parked[i].owner != nullptr) {
      parked[i].owner->Release(parked[i].rec, j - i);
    }
    i = j;
  }
}

void IngestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_full_cv_.notify_all();
  drain_cv_.notify_all();
}

bool IngestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t IngestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return SizeLocked();
}

std::uint8_t IngestQueue::Pressure() const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t depth = SizeLocked();
  if (options_.capacity == 0 || depth * 2 < options_.capacity) return 0;
  const std::size_t scaled = (depth * 255) / options_.capacity;
  return static_cast<std::uint8_t>(
      std::min<std::size_t>(255, std::max<std::size_t>(1, scaled)));
}

IngestStats IngestQueue::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::uint64_t IngestQueue::PushedSoFar() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.pushed;
}

RecordId IngestQueue::NextRecordId() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_id_;
}

Status IngestQueue::ResumeSequences(RecordId next_record_id,
                                    Timestamp min_timestamp) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return Status::FailedPrecondition("ingest queue is closed");
  if (SizeLocked() != 0) {
    return Status::FailedPrecondition(
        "cannot re-seed sequences with records buffered");
  }
  next_id_ = next_record_id;
  frontier_ = std::max(frontier_, min_timestamp);
  max_seen_ = std::max(max_seen_, min_timestamp);
  return Status::Ok();
}

std::size_t IngestQueue::MemoryBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buf_.capacity() * sizeof(Pending) +
         pending_release_.capacity() * sizeof(Parked) +
         arena_.ResidentBytes();
}

}  // namespace topkmon
