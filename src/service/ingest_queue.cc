#include "service/ingest_queue.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

namespace topkmon {

IngestQueue::IngestQueue(const IngestOptions& options) : options_(options) {
  assert(options_.capacity > 0);
  assert(options_.max_batch > 0);
  assert(options_.slack >= 0);
  heap_.reserve(std::min<std::size_t>(options_.capacity, 4096));
  next_id_ = options_.first_record_id;
  frontier_ = options_.min_timestamp;
  max_seen_ = options_.min_timestamp;
}

void IngestQueue::PushLocked(Point&& position, Timestamp arrival) {
  heap_.push_back(Pending{arrival, push_seq_++, std::move(position),
                          std::chrono::steady_clock::now()});
  std::push_heap(heap_.begin(), heap_.end(), Later());
  max_seen_ = std::max(max_seen_, arrival);
  ++stats_.pushed;
  stats_.max_depth = std::max(stats_.max_depth, heap_.size());
}

Status IngestQueue::Push(Point position, Timestamp arrival) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_cv_.wait(lock, [this] {
    return closed_ || heap_.size() < options_.capacity;
  });
  if (closed_) {
    return Status::FailedPrecondition("ingest queue is closed");
  }
  PushLocked(std::move(position), arrival);
  drain_cv_.notify_one();
  return Status::Ok();
}

bool IngestQueue::TryPush(Point position, Timestamp arrival) {
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_ || heap_.size() >= options_.capacity) {
    if (!closed_) ++stats_.shed;
    return false;
  }
  PushLocked(std::move(position), arrival);
  drain_cv_.notify_one();
  return true;
}

bool IngestQueue::ReleasableLocked() const {
  if (heap_.empty()) return false;
  // heap_.front() is the earliest (arrival, seq) pending record.
  return heap_.front().arrival + options_.slack <= max_seen_;
}

std::size_t IngestQueue::DrainBatch(
    std::vector<Record>* out, Timestamp* cycle_ts,
    std::chrono::milliseconds max_wait, bool flush_all,
    std::chrono::steady_clock::time_point* oldest_push) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!flush_all && !closed_ && !ReleasableLocked()) {
    drain_cv_.wait_for(lock, max_wait,
                       [this] { return closed_ || ReleasableLocked(); });
  }
  if (heap_.empty()) return 0;
  // A timeout with data buffered opens the slack gate: bounded staleness
  // beats holding the last records of a quiet stream forever.
  const bool open_gate = flush_all || closed_ || !ReleasableLocked();
  std::size_t released = 0;
  while (released < options_.max_batch && !heap_.empty()) {
    if (!open_gate && heap_.front().arrival + options_.slack > max_seen_) {
      break;
    }
    std::pop_heap(heap_.begin(), heap_.end(), Later());
    Pending p = std::move(heap_.back());
    heap_.pop_back();
    if (p.arrival < frontier_) {
      // Straggler beyond the slack: advance it to the frontier so the
      // batch stays time-ordered for the window.
      p.arrival = frontier_;
      ++stats_.coerced;
    }
    frontier_ = p.arrival;
    if (oldest_push != nullptr &&
        (released == 0 || p.pushed_at < *oldest_push)) {
      *oldest_push = p.pushed_at;
    }
    out->emplace_back(next_id_++, std::move(p.position), p.arrival);
    ++released;
  }
  if (released > 0) {
    ++stats_.batches;
    *cycle_ts = frontier_;
    not_full_cv_.notify_all();
  }
  return released;
}

void IngestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_full_cv_.notify_all();
  drain_cv_.notify_all();
}

bool IngestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t IngestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return heap_.size();
}

std::uint8_t IngestQueue::Pressure() const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t depth = heap_.size();
  if (options_.capacity == 0 || depth * 2 < options_.capacity) return 0;
  const std::size_t scaled = (depth * 255) / options_.capacity;
  return static_cast<std::uint8_t>(
      std::min<std::size_t>(255, std::max<std::size_t>(1, scaled)));
}

IngestStats IngestQueue::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::uint64_t IngestQueue::PushedSoFar() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.pushed;
}

RecordId IngestQueue::NextRecordId() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_id_;
}

Status IngestQueue::ResumeSequences(RecordId next_record_id,
                                    Timestamp min_timestamp) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return Status::FailedPrecondition("ingest queue is closed");
  if (!heap_.empty()) {
    return Status::FailedPrecondition(
        "cannot re-seed sequences with records buffered");
  }
  next_id_ = next_record_id;
  frontier_ = std::max(frontier_, min_timestamp);
  max_seen_ = std::max(max_seen_, min_timestamp);
  return Status::Ok();
}

std::size_t IngestQueue::MemoryBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return heap_.capacity() * sizeof(Pending);
}

}  // namespace topkmon
