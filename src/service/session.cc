#include "service/session.h"

#include <utility>

namespace topkmon {

SessionManager::SessionManager(const SessionOptions& options)
    : options_(options) {}

Result<SessionId> SessionManager::Open(std::string label) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.size() >= options_.max_sessions) {
    return Status::FailedPrecondition(
        "session limit reached (" + std::to_string(options_.max_sessions) +
        " open)");
  }
  const SessionId id = next_session_++;
  sessions_.emplace(id, SessionState{std::move(label), {}});
  ++stats_.opened;
  return id;
}

Result<std::vector<QueryId>> SessionManager::Close(SessionId session) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return Status::NotFound("session " + std::to_string(session) +
                            " not open");
  }
  std::vector<QueryId> owned(it->second.queries.begin(),
                             it->second.queries.end());
  for (QueryId q : owned) owner_.erase(q);
  stats_.queries_released += owned.size();
  sessions_.erase(it);
  ++stats_.closed;
  return owned;
}

Status SessionManager::Admit(SessionId session, QueryId query_id, int k) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return Status::NotFound("session " + std::to_string(session) +
                            " not open");
  }
  if (k <= 0 || k > options_.max_k) {
    ++stats_.quota_rejections;
    return Status::InvalidArgument(
        "k=" + std::to_string(k) + " outside the admissible range [1, " +
        std::to_string(options_.max_k) + "]");
  }
  if (it->second.queries.size() >=
      static_cast<std::size_t>(options_.max_queries_per_session)) {
    ++stats_.quota_rejections;
    return Status::FailedPrecondition(
        "session " + std::to_string(session) + " is at its query quota (" +
        std::to_string(options_.max_queries_per_session) + ")");
  }
  if (owner_.count(query_id) > 0) {
    return Status::AlreadyExists("query id " + std::to_string(query_id) +
                                 " already owned");
  }
  it->second.queries.insert(query_id);
  owner_.emplace(query_id, session);
  ++stats_.queries_admitted;
  return Status::Ok();
}

Status SessionManager::Release(QueryId query_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = owner_.find(query_id);
  if (it == owner_.end()) {
    return Status::NotFound("query id " + std::to_string(query_id) +
                            " not owned by any session");
  }
  auto session = sessions_.find(it->second);
  if (session != sessions_.end()) session->second.queries.erase(query_id);
  owner_.erase(it);
  ++stats_.queries_released;
  return Status::Ok();
}

Result<SessionId> SessionManager::Owner(QueryId query_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = owner_.find(query_id);
  if (it == owner_.end()) {
    return Status::NotFound("query id " + std::to_string(query_id) +
                            " not owned by any session");
  }
  return it->second;
}

Result<std::string> SessionManager::Label(SessionId session) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return Status::NotFound("session " + std::to_string(session) +
                            " not open");
  }
  return it->second.label;
}

Result<std::size_t> SessionManager::QueryCount(SessionId session) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return Status::NotFound("session " + std::to_string(session) +
                            " not open");
  }
  return it->second.queries.size();
}

std::size_t SessionManager::OpenSessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

std::size_t SessionManager::ActiveQueries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return owner_.size();
}

SessionStats SessionManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace topkmon
