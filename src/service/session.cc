#include "service/session.h"

#include <algorithm>
#include <utility>

namespace topkmon {

SessionManager::SessionManager(const SessionOptions& options)
    : options_(options) {}

Result<SessionId> SessionManager::Open(std::string label) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.size() >= options_.max_sessions) {
    return Status::FailedPrecondition(
        "session limit reached (" + std::to_string(options_.max_sessions) +
        " open)");
  }
  const SessionId id = next_session_++;
  sessions_.emplace(id, SessionState{std::move(label), {}});
  ++stats_.opened;
  return id;
}

Result<std::vector<QueryId>> SessionManager::Close(SessionId session) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return Status::NotFound("session " + std::to_string(session) +
                            " not open");
  }
  std::vector<QueryId> owned(it->second.queries.begin(),
                             it->second.queries.end());
  for (QueryId q : owned) owner_.erase(q);
  stats_.queries_released += owned.size();
  sessions_.erase(it);
  ++stats_.closed;
  return owned;
}

Status SessionManager::Admit(SessionId session, QueryId query_id, int k) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return Status::NotFound("session " + std::to_string(session) +
                            " not open");
  }
  if (k <= 0 || k > options_.max_k) {
    ++stats_.quota_rejections;
    return Status::InvalidArgument(
        "k=" + std::to_string(k) + " outside the admissible range [1, " +
        std::to_string(options_.max_k) + "]");
  }
  if (it->second.queries.size() >=
      static_cast<std::size_t>(options_.max_queries_per_session)) {
    ++stats_.quota_rejections;
    return Status::FailedPrecondition(
        "session " + std::to_string(session) + " is at its query quota (" +
        std::to_string(options_.max_queries_per_session) + ")");
  }
  if (owner_.count(query_id) > 0) {
    return Status::AlreadyExists("query id " + std::to_string(query_id) +
                                 " already owned");
  }
  it->second.queries.insert(query_id);
  owner_.emplace(query_id, session);
  ++stats_.queries_admitted;
  return Status::Ok();
}

Status SessionManager::Release(QueryId query_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = owner_.find(query_id);
  if (it == owner_.end()) {
    return Status::NotFound("query id " + std::to_string(query_id) +
                            " not owned by any session");
  }
  auto session = sessions_.find(it->second);
  if (session != sessions_.end()) session->second.queries.erase(query_id);
  owner_.erase(it);
  ++stats_.queries_released;
  return Status::Ok();
}

Result<SessionId> SessionManager::Owner(QueryId query_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = owner_.find(query_id);
  if (it == owner_.end()) {
    return Status::NotFound("query id " + std::to_string(query_id) +
                            " not owned by any session");
  }
  return it->second;
}

Result<std::string> SessionManager::Label(SessionId session) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return Status::NotFound("session " + std::to_string(session) +
                            " not open");
  }
  return it->second.label;
}

Result<SessionId> SessionManager::FindByLabel(const std::string& label) const {
  std::lock_guard<std::mutex> lock(mu_);
  SessionId best = 0;
  bool found = false;
  for (const auto& [id, state] : sessions_) {
    if (state.label == label && (!found || id < best)) {
      best = id;
      found = true;
    }
  }
  if (!found) {
    return Status::NotFound("no open session labeled '" + label + "'");
  }
  return best;
}

Status SessionManager::ConsumeIngestTokens(SessionId session, double n,
                                           double now_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return Status::NotFound("session " + std::to_string(session) +
                            " not open");
  }
  if (options_.ingest_rate_per_sec <= 0.0) return Status::Ok();
  SessionState& state = it->second;
  const double burst = BurstCapacity();
  if (!state.bucket_primed) {
    state.tokens = burst;
    state.last_refill = now_seconds;
    state.bucket_primed = true;
  } else if (now_seconds > state.last_refill) {
    state.tokens =
        std::min(burst, state.tokens + (now_seconds - state.last_refill) *
                                           options_.ingest_rate_per_sec);
    state.last_refill = now_seconds;
  }
  if (state.tokens < n) {
    ++stats_.rate_limited;
    return Status::FailedPrecondition(
        "session " + std::to_string(session) +
        " exceeded its ingest rate limit (" +
        std::to_string(options_.ingest_rate_per_sec) + " records/s, burst " +
        std::to_string(burst) + ")");
  }
  state.tokens -= n;
  return Status::Ok();
}

std::size_t SessionManager::ConsumeUpToIngestTokens(SessionId session,
                                                    std::size_t n,
                                                    double now_seconds,
                                                    Status* refusal) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    if (refusal != nullptr) {
      *refusal = Status::NotFound("session " + std::to_string(session) +
                                  " not open");
    }
    return 0;
  }
  if (options_.ingest_rate_per_sec <= 0.0 || n == 0) return n;
  SessionState& state = it->second;
  const double burst = BurstCapacity();
  if (!state.bucket_primed) {
    state.tokens = burst;
    state.last_refill = now_seconds;
    state.bucket_primed = true;
  } else if (now_seconds > state.last_refill) {
    state.tokens =
        std::min(burst, state.tokens + (now_seconds - state.last_refill) *
                                           options_.ingest_rate_per_sec);
    state.last_refill = now_seconds;
  }
  const std::size_t granted = std::min<std::size_t>(
      n, state.tokens >= 0.0 ? static_cast<std::size_t>(state.tokens) : 0);
  state.tokens -= static_cast<double>(granted);
  if (granted < n) {
    // One refusal per record beyond the grant — the same accounting n
    // individual ConsumeIngestTokens refusals would produce.
    stats_.rate_limited += n - granted;
    if (refusal != nullptr) {
      *refusal = Status::FailedPrecondition(
          "session " + std::to_string(session) +
          " exceeded its ingest rate limit (" +
          std::to_string(options_.ingest_rate_per_sec) +
          " records/s, burst " + std::to_string(burst) + ")");
    }
  }
  return granted;
}

Result<std::size_t> SessionManager::QueryCount(SessionId session) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return Status::NotFound("session " + std::to_string(session) +
                            " not open");
  }
  return it->second.queries.size();
}

std::size_t SessionManager::OpenSessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

std::vector<SessionInfo> SessionManager::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SessionInfo> out;
  out.reserve(sessions_.size());
  for (const auto& [id, state] : sessions_) {
    out.push_back(SessionInfo{id, state.label, state.queries.size()});
  }
  std::sort(out.begin(), out.end(),
            [](const SessionInfo& a, const SessionInfo& b) {
              return a.id < b.id;
            });
  return out;
}

std::size_t SessionManager::ActiveQueries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return owner_.size();
}

SessionStats SessionManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace topkmon
