// MonitorService — the multi-client continuous-query façade.
//
// The paper's engines are single-threaded libraries driven by a
// simulation loop; this is the layer that makes them servable. A
// MonitorService owns one MonitorEngine (typically a ShardedEngine for
// multi-core scaling) plus the three service components, and runs a
// dedicated cycle-driver thread:
//
//   producers --Push--> IngestQueue --DrainBatch--> driver thread
//                                                      |  ProcessCycle
//                                                      v
//   sessions <--Poll--  SubscriptionHub <--Publish-- DeltaCallback
//
// Thread roles:
//   * any number of producer threads call Ingest()/TryIngest();
//   * any number of client threads open sessions, register queries,
//     read snapshots (CurrentResult) and poll delta subscriptions;
//   * exactly one internal driver thread talks to the engine for cycle
//     processing. Client-facing engine calls (register / unregister /
//     snapshot reads) are serialized with the driver through one mutex,
//     preserving the engines' single-threaded contract.
//
// Ingested tuples are validated against the engine's dimensionality at
// admission (the same ValidatePoint the engines use), so a malformed
// tuple is an error returned to its producer, never a poisoned batch in
// the driver loop.
//
// Shutdown() closes ingest, lets the driver flush every buffered record
// through a final cycle, and joins the thread; it is idempotent and also
// runs from the destructor. Flush() is the deterministic fence used by
// tests and graceful drains: it blocks until every record pushed before
// the call has been applied to the engine.
//
// Durability (src/journal/): with ServiceOptions::journal.dir set, the
// driver write-ahead-journals every cycle batch — and the control plane
// every register/unregister — before applying it, all under the engine
// mutex so journal order equals apply order. Construct via Open() to
// recover an existing journal on startup: the engine is rebuilt by
// replaying the newest snapshot-anchored segment, sessions are re-created
// under their original labels owning their recovered queries (reconnect
// via FindSession), and journaling resumes into a fresh segment.
//
// Replication (src/replica/): OpenFollower() builds a *read-only* service
// whose engine is fed by journal replay instead of the ingest driver: a
// ReplicaFollower ships the leader's journal bytes into a local directory
// and pushes each decoded record through ApplyReplicated(), which routes
// query registrations through the same session/label adoption recovery
// uses — so follower clients resume their leader-side session labels and
// read snapshots and delta streams from replayed state. Writes (Ingest,
// Register, Unregister, CloseSession) are refused with a
// redirect-to-leader FailedPrecondition. Promote() turns the follower
// into a leader in place: id/timestamp sequences resume from the replay
// bookkeeping, journaling re-opens over the shipped directory, and the
// cycle driver starts.

#ifndef TOPKMON_SERVICE_MONITOR_SERVICE_H_
#define TOPKMON_SERVICE_MONITOR_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "journal/journal_writer.h"
#include "journal/recovery.h"
#include "obs/admin_server.h"
#include "obs/metrics.h"
#include "replica/lease.h"
#include "service/ingest_queue.h"
#include "service/session.h"
#include "service/subscription_hub.h"

namespace topkmon {

/// Composite configuration of the service layer.
struct ServiceOptions {
  IngestOptions ingest;
  SessionOptions session;
  HubOptions hub;
  /// Durable cycle journal; journal.dir empty disables journaling. Use
  /// MonitorService::Open() to recover an existing journal directory.
  JournalOptions journal;
  /// Leader lease for automatic failover (src/replica/lease.h).
  /// Disabled by default: a standalone leader never fences itself. When
  /// enabled, follower fetches renew the lease (NoteFollowerContact)
  /// and writes are refused with FENCED once it lapses.
  LeaseOptions lease;
  /// Read-only HTTP introspection endpoint (/metrics, /statusz,
  /// /healthz; src/obs/admin_server.h). Off by default; when enabled
  /// the service starts the admin thread at construction and reports
  /// the bound port through admin_port().
  AdminServerOptions admin;
  /// Longest the driver waits for the ingest slack gate before forcing a
  /// cycle with whatever is buffered (bounds ingest->result staleness).
  std::chrono::milliseconds drain_wait{5};
};

/// Service-level counters, aggregated across the components.
struct ServiceStats {
  std::uint64_t cycles = 0;             ///< engine cycles driven
  std::uint64_t records_ingested = 0;   ///< records accepted by ingest
  std::uint64_t records_applied = 0;    ///< records applied to the engine
  std::uint64_t records_shed = 0;       ///< TryIngest refusals (queue full)
  std::uint64_t records_coerced = 0;    ///< stragglers time-shifted forward
  std::uint64_t records_rate_limited = 0;  ///< session-bucket refusals
  std::uint64_t deltas_published = 0;   ///< engine deltas entering the hub
  std::uint64_t deltas_delivered = 0;   ///< events consumed by sessions
  std::uint64_t deltas_dropped = 0;     ///< events lost to slow consumers
  std::uint64_t failed_cycles = 0;      ///< ProcessCycle errors (bug guard)
  std::uint64_t journal_records = 0;    ///< records appended to the journal
  std::uint64_t journal_bytes = 0;      ///< bytes written to the journal
  std::uint64_t journal_snapshots = 0;  ///< snapshot records written
  std::uint64_t journal_failures = 0;   ///< failed appends/rotations
  std::size_t queue_depth = 0;          ///< records waiting in ingest
  std::size_t open_sessions = 0;
  std::size_t active_queries = 0;

  /// Key/value sections contributed by attached components (the TCP
  /// server, replica follower, failover agent) via AddStatsSection —
  /// one stats() call reflects the whole node. Section order is
  /// registration order; every value is pre-rendered to a string.
  std::vector<std::pair<std::string,
                        std::vector<std::pair<std::string, std::string>>>>
      sections;

  std::string ToString() const;
};

/// Whether this service accepts writes or mirrors a leader.
enum class ServiceRole : std::uint8_t {
  kLeader = 0,    ///< accepts ingest and query registration
  kFollower = 1,  ///< read-only: state arrives via ApplyReplicated
};

/// Replication observability (role, apply progress, leader progress).
/// Reading it costs three atomics — it sits on the snapshot-serving hot
/// path (cycle counts live in stats(), which does lock).
struct ReplicationInfo {
  ServiceRole role = ServiceRole::kLeader;
  /// Timestamp of the last cycle applied to this engine.
  Timestamp applied_cycle_ts = 0;
  /// The leader's last known cycle timestamp (== applied_cycle_ts on a
  /// leader; on a follower, refreshed from every shipped chunk). The
  /// difference is the staleness bound surfaced in follower reads.
  Timestamp leader_cycle_ts = 0;
  /// Where writes belong when this service is a follower.
  std::string leader_endpoint;
  /// The fencing epoch of this service's replication group (v5); 0 when
  /// leases were never enabled and no failover ever happened.
  std::uint64_t fencing_epoch = 0;

  Timestamp StaleBy() const {
    return leader_cycle_ts > applied_cycle_ts
               ? leader_cycle_ts - applied_cycle_ts
               : 0;
  }
};

/// Thread-safe multi-client continuous-query service over one engine.
class MonitorService {
 public:
  /// Takes ownership of `engine` (freshly constructed, no queries) and
  /// starts the cycle-driver thread. If options.journal.dir is set, a
  /// fresh journal is started there; the directory must not already hold
  /// journal segments (recover those with Open() instead) — a violation
  /// surfaces through journal_status().
  MonitorService(std::unique_ptr<MonitorEngine> engine,
                 const ServiceOptions& options);
  ~MonitorService();

  MonitorService(const MonitorService&) = delete;
  MonitorService& operator=(const MonitorService&) = delete;

  /// Recover-on-start factory: replays the journal in options.journal.dir
  /// (which must be non-empty) through a fresh engine from
  /// `engine_factory`, re-creates one session per recovered session label
  /// owning its recovered queries (look them up with FindSession), and
  /// returns a running service journaling into a fresh segment. An empty
  /// or missing journal directory is a normal first boot. The recovery
  /// outcome is in recovery().
  static Result<std::unique_ptr<MonitorService>> Open(
      const std::function<std::unique_ptr<MonitorEngine>()>& engine_factory,
      const ServiceOptions& options);

  /// Read-only warm-standby factory: the returned service has no cycle
  /// driver and refuses writes; its engine is fed exclusively through
  /// ApplyReplicated* (normally by a ReplicaFollower, src/replica/).
  /// options.journal.dir names the *local* directory the follower ships
  /// the leader's journal into — no writer is opened on it until
  /// Promote(). `leader_endpoint` ("host:port") is surfaced in the
  /// redirect status of refused writes and in replication().
  static Result<std::unique_ptr<MonitorService>> OpenFollower(
      const std::function<std::unique_ptr<MonitorEngine>()>& engine_factory,
      const ServiceOptions& options, std::string leader_endpoint);

  // ---- producer API (any thread) --------------------------------------
  /// Validates and admits a tuple, blocking under backpressure.
  Status Ingest(Point position, Timestamp arrival);
  /// Non-blocking variant; OutOfRange/InvalidArgument for bad tuples,
  /// FailedPrecondition when the queue is full or the service stopped.
  Status TryIngest(Point position, Timestamp arrival);

  /// Session-scoped variants: the tuple is charged against the session's
  /// ingest token bucket (SessionOptions::ingest_rate_per_sec) and
  /// refused with FailedPrecondition when the bucket is empty.
  Status Ingest(SessionId session, Point position, Timestamp arrival);
  Status TryIngest(SessionId session, Point position, Timestamp arrival);

  /// Zero-copy batch admission for the wire hot path: `records[0..n)`
  /// must already live in this service's ingest_arena() (decoded there by
  /// DecodeIngestBodyToArena, which validated them at the frame
  /// boundary — this call does NOT re-validate). Charges the session's
  /// token bucket for as many records as it covers, then admits the
  /// granted prefix up to queue capacity, and returns the count actually
  /// admitted (whose storage the queue now owns; the caller keeps
  /// ownership of — and must Release — the rest). On a short admission
  /// *error carries the refusal: queue-full/closed when the queue cut
  /// the prefix, else the rate-limit (or follower/fenced) refusal.
  std::size_t TryIngestBatch(SessionId session, const Record* records,
                             std::size_t n, Status* error);

  /// The arena backing the ingest queue — where the TCP server decodes
  /// ingest frame bodies so admitted records flow to the engine without
  /// a copy. Alive exactly as long as the service.
  RecordArena& ingest_arena() { return ingest_.arena(); }

  /// Engine dimensionality (what ingested tuples are validated against).
  int dim() const { return dim_; }

  // ---- client API (any thread) ----------------------------------------
  Result<SessionId> OpenSession(std::string label);
  /// Unregisters every query the session owns, drops its subscription
  /// buffer, and closes it.
  Status CloseSession(SessionId session);

  /// The oldest open session with this label — how a client re-adopts its
  /// recovered session (and queries) after a restart.
  Result<SessionId> FindSession(const std::string& label) const;

  /// Registers `spec` on behalf of `session` subject to its quotas. The
  /// spec's id field is ignored: the service assigns the returned
  /// globally unique id. The initial result arrives as the session's
  /// first delta event for that query.
  Result<QueryId> Register(SessionId session, QuerySpec spec);
  /// Terminates a query; only its owning session may do so.
  Status Unregister(SessionId session, QueryId query);

  /// Snapshot read of a query's current top-k (any thread).
  Result<std::vector<ResultEntry>> CurrentResult(QueryId query) const;

  /// The session that owns `query`; NotFound if unknown. Front-ends use
  /// this to scope reads to the requesting session (the TCP server
  /// refuses snapshots of queries the connection's session does not
  /// own, mirroring Unregister's ownership check).
  Result<SessionId> QueryOwner(QueryId query) const;

  /// Moves up to `max` pending delta events for `session` into *out.
  std::size_t PollDeltas(SessionId session, std::size_t max,
                         std::vector<DeltaEvent>* out);
  /// Long-poll variant: blocks until events arrive or `timeout` expires.
  std::size_t WaitDeltas(SessionId session, std::size_t max,
                         std::chrono::milliseconds timeout,
                         std::vector<DeltaEvent>* out);
  /// Delta events `session` has lost to buffer overflow.
  std::uint64_t DroppedDeltas(SessionId session) const;

  /// Delta events currently buffered for `session` — the cheap readiness
  /// probe a non-blocking front-end (the TCP server's poll loop) uses to
  /// decide whether a parked long-poll can be answered without calling
  /// PollDeltas speculatively.
  std::size_t PendingDeltas(SessionId session) const;

  // ---- replication (follower role; see src/replica/) ------------------
  /// Restores a segment-anchor snapshot into the (fresh) engine and
  /// registers its live queries through session/label adoption. The
  /// follower's bootstrap step; FailedPrecondition on a leader.
  Status ApplyReplicatedAnchor(JournalSnapshot anchor);

  /// Applies one replicated journal record: cycles run through the
  /// engine (delta subscribers see the changes), register/unregister
  /// route through session adoption by owner label exactly like journal
  /// recovery. FailedPrecondition on a leader.
  Status ApplyReplicated(const JournalRecord& record);

  /// Full-resync reset: drops every replicated query binding and swaps
  /// in a fresh engine from the follower's factory. Sessions (and their
  /// delta buffers) survive, so attached subscribers keep their streams;
  /// the follower re-applies from a new anchor afterwards.
  Status ResetFollowerState();

  /// Manual promotion: turns this follower into a leader in place. The
  /// caller must have stopped feeding ApplyReplicated first (the
  /// ReplicaFollower's Promote does). Ingest id/timestamp sequences
  /// resume from the replay bookkeeping, a journal writer re-opens over
  /// options.journal.dir (resuming the shipped segments with a fresh
  /// snapshot-anchored segment), and the cycle driver starts. After Ok,
  /// writes are accepted.
  Status Promote();

  /// Election promotion: like Promote(), but the caller names the new
  /// fencing epoch, which must exceed the highest epoch this service has
  /// observed. The epoch is durably persisted (EPOCH file in the journal
  /// dir) *before* the role flips, so a crash mid-promotion can never
  /// produce a leader serving at a stale epoch. Promote() delegates here
  /// with MintFencingEpoch(observed, kOperatorFencingRank) — see lease.h
  /// for why minted epochs carry the minter's rank.
  Status Promote(std::uint64_t new_epoch);

  ServiceRole role() const {
    return role_.load(std::memory_order_acquire);
  }

  // ---- leader lease / fencing (v5; see src/replica/lease.h) -----------
  /// The highest fencing epoch this service has adopted or observed.
  std::uint64_t fencing_epoch() const {
    return fencing_epoch_.load(std::memory_order_acquire);
  }

  /// Whether a lease was configured (ServiceOptions::lease.enabled).
  bool lease_enabled() const { return lease_ != nullptr; }

  /// True once this leader has fenced itself (lease lapsed or a higher
  /// epoch was observed — the latter fences even lease-less leaders).
  /// Sticky; always false on followers. The Status probe ships this
  /// latch because role() keeps answering kLeader after deposition.
  bool IsFenced() const {
    return fenced_.load(std::memory_order_acquire);
  }

  /// Records follower contact (the TCP server calls this per ReplFetch
  /// served): renews the leader lease. A fenced leader stays fenced —
  /// late follower traffic must not resurrect a deposed leader.
  void NoteFollowerContact();

  /// Adopts `epoch` if it exceeds the highest epoch seen so far,
  /// persisting it next to the journal. A *leader* observing a higher
  /// epoch has provably been deposed and fences itself immediately
  /// (without waiting for the lease to lapse). Called by the follower
  /// pump with every shipped chunk's epoch and by the failover agent
  /// with election results.
  Status ObserveFencingEpoch(std::uint64_t epoch);

  /// Role + apply/leader cycle progress (the staleness bound follower
  /// reads carry).
  ReplicationInfo replication() const;

  /// Follower-side: records the leader's cycle progress as learned from
  /// the last shipped chunk (feeds replication().leader_cycle_ts).
  void SetLeaderProgress(Timestamp leader_cycle_ts);

  /// Follower re-targeting after a failover: updates the leader
  /// endpoint surfaced in write-refusal redirects and replication(), so
  /// clients bounced off this follower are pointed at the *new* leader.
  void SetLeaderEndpoint(std::string endpoint);

  /// Monotone counter bumped on every journal append/rotation — the
  /// cheap "did the journal grow" probe the TCP server's parked
  /// replication fetches poll, mirroring PendingDeltas for long-polls.
  std::uint64_t JournalProgress() const {
    return journal_progress_.load(std::memory_order_acquire);
  }

  /// Records out-of-band journal growth. On a follower the journal dir
  /// grows through the ReplicaFollower's ship path, not this service's
  /// writer; the pump calls this after persisting a chunk so a *chained*
  /// follower's parked fetch on this node wakes immediately instead of
  /// at its long-poll deadline. Fires the progress listeners.
  void NoteJournalGrowth();

  /// Registers a callback fired from the driver / replication-apply
  /// threads whenever delta events may have been published or the
  /// journal grew — the cross-thread wakeup a poll-based front-end uses
  /// to answer parked long-polls and replication fetches promptly
  /// instead of waiting out its poll tick. Listeners run with an
  /// internal lock held and must be cheap and reentrancy-free (write a
  /// byte to a pipe; never call back into the service). Returns an id
  /// for RemoveProgressListener.
  std::uint64_t AddProgressListener(std::function<void()> listener);
  void RemoveProgressListener(std::uint64_t id);

  /// Backpressure probe: 0 while the ingest queue sits below its
  /// high-water mark, else its fullness scaled into 1..255 (255 = at
  /// capacity). Surfaced to remote producers as the IngestAck
  /// queue_hint byte (protocol v3) so they self-pace.
  std::uint8_t IngestPressure() const;

  /// The journal directory this service writes (leader) or ships into
  /// (follower); empty when journaling is off.
  const std::string& journal_dir() const { return options_.journal.dir; }

  // ---- control / observability ----------------------------------------
  /// Blocks until every record pushed before the call has been applied to
  /// the engine (forces the slack gate open). FailedPrecondition after
  /// Shutdown.
  Status Flush();

  /// Graceful stop: close ingest, flush buffered records through final
  /// cycles, join the driver. Idempotent; buffered delta events remain
  /// pollable afterwards.
  void Shutdown();

  ServiceStats stats() const;

  // ---- admin plane (src/obs/) -----------------------------------------
  /// The node's metric registry. Attached components (TcpServer,
  /// ReplicaFollower, FailoverAgent) register samplers here so one
  /// scrape covers the whole node; the registry lives exactly as long
  /// as the service.
  MetricsRegistry& metrics() { return metrics_; }

  /// One /statusz + stats() section: a name plus a provider returning
  /// pre-rendered key/value rows. Providers run outside the service's
  /// internal locks on every stats() / /statusz call and must be
  /// thread-safe. Returns an id for RemoveStatsSection, which blocks
  /// until no in-flight stats() call is still inside the provider —
  /// after it returns, whatever the provider captured may be destroyed.
  using StatsSectionProvider =
      std::function<std::vector<std::pair<std::string, std::string>>()>;
  std::uint64_t AddStatsSection(std::string name,
                                StatsSectionProvider provider);
  void RemoveStatsSection(std::uint64_t id);

  /// The admin endpoint's bound TCP port; 0 when options.admin.enabled
  /// is false or the bind failed (the failure is in admin_status()).
  std::uint16_t admin_port() const;

  /// Ok when the admin endpoint is serving or disabled; the bind/start
  /// error otherwise (the service still runs — admin is best-effort).
  Status admin_status() const;

  /// The recovery outcome when this service was constructed via Open();
  /// a default (recovered=false) report otherwise.
  const RecoveryReport& recovery() const { return recovery_; }

  /// Durability barrier: fdatasyncs any journal appends the sync policy
  /// has not pushed to the platter yet (the group-commit ack point —
  /// Flush() only fences engine *apply*, never durability). Ok when
  /// journaling is off or nothing is pending; FailedPrecondition after
  /// the journal is sealed by Shutdown.
  Status SyncJournal();

  /// Ok while journaling is healthy (or disabled). A failed journal open
  /// at construction, or the first append error, is recorded here; the
  /// service keeps serving (availability over durability) with the gap
  /// also counted in stats().journal_failures.
  Status journal_status() const;

  /// Engine counters and memory, including the service's own buffers.
  const std::string& engine_name() const { return engine_name_; }
  EngineStats EngineCounters() const;
  MemoryBreakdown Memory() const;

  /// Installs a hook invoked by the driver thread with every (cycle
  /// timestamp, arrival batch) right before it is applied — the seam for
  /// journaling/persistence and for tests that need ground truth replay.
  /// The span is only valid for the duration of the call: the records
  /// may be arena-backed and are recycled after cycle publish.
  using CycleObserver = std::function<void(Timestamp, RecordSpan)>;
  void SetCycleObserver(CycleObserver observer);

  /// Replaces the monotonic clock behind the session token buckets with a
  /// caller-controlled one (seconds, monotone non-decreasing). Lets tests
  /// drive rate limiting deterministically instead of sleeping; pass
  /// nullptr to restore the steady clock.
  void SetClockForTesting(std::function<double()> clock);

 private:
  /// Shared delegate of the public constructor, Open() and
  /// OpenFollower(): adopts an already-recovered engine plus the journal
  /// writer continuing its journal, then re-creates recovered sessions
  /// and (leader role) starts the driver.
  MonitorService(std::unique_ptr<MonitorEngine> engine,
                 const ServiceOptions& options, RecoveryReport recovery,
                 std::unique_ptr<CycleJournalWriter> journal,
                 ServiceRole role = ServiceRole::kLeader);

  void DriverLoop();
  bool NeedsFlush() const;

  /// Fires every registered progress listener (see AddProgressListener).
  void NotifyProgress();

  /// The redirect status follower-mode writes draw; Ok on a leader.
  Status RefuseIfFollower() const;

  /// FENCED refusal for writes on a leader whose lease lapsed or that
  /// observed a higher epoch; Ok on followers and lease-less services.
  /// Expiry latches fenced_ (sticky), so the check is at most one clock
  /// read past the first refusal.
  Status RefuseIfFenced();

  /// Applier hooks routing replicated query lifetime events through
  /// session adoption + hub binding. Caller holds control_mu_ and
  /// engine_mu_ during applier calls.
  JournalApplier::Hooks FollowerHooks();

  /// Re-opens sessions for recovered queries (one per original label) and
  /// binds their subscriptions; failures land in bootstrap_error_.
  void AdoptRecoveredQueries();

  /// Seconds on the service's monotonic clock (token-bucket time base).
  double NowSeconds() const;

  /// Builds a journal snapshot of the engine + live queries + id
  /// allocators. Caller must hold engine_mu_.
  Result<JournalSnapshot> BuildSnapshotLocked() const;

  /// Appends one record via `append`, tracking failures; holds the
  /// journal healthy/unhealthy accounting in one place. Caller must hold
  /// engine_mu_. No-op (Ok) when journaling is off.
  template <typename AppendFn>
  Status JournalAppendLocked(AppendFn&& append);

  /// Registers the service's owned instruments (latency histograms) and
  /// its scrape-time sampler, injects the histograms into the hub and
  /// journal writer, and — when options.admin.enabled — starts the
  /// admin HTTP endpoint. Constructor-only.
  void SetupObservability();

  /// Admin endpoint handlers (run on the admin thread).
  AdminResponse ServeMetrics() const;
  AdminResponse ServeStatusz() const;
  AdminResponse ServeHealthz() const;

  /// Bridges the service's own counters/gauges into a scrape.
  void SampleServiceMetrics(MetricSink& sink) const;

  /// stats() minus the attached-component sections — what the metric
  /// sampler bridges (a scrape must not re-enter section providers).
  ServiceStats CoreStats() const;

  const ServiceOptions options_;
  std::unique_ptr<MonitorEngine> engine_;
  const int dim_;
  const std::string engine_name_;
  const RecoveryReport recovery_;
  const std::chrono::steady_clock::time_point epoch_;

  /// Admin-plane metric store. Declared before every component that
  /// records into its instruments (hub_, journal_) so it is destroyed
  /// after them; the raw LatencyHistogram pointers handed out below
  /// stay valid for the components' whole lifetime.
  MetricsRegistry metrics_;
  LatencyHistogram* ingest_publish_hist_ = nullptr;
  LatencyHistogram* delta_delivery_hist_ = nullptr;
  LatencyHistogram* journal_fsync_hist_ = nullptr;

  IngestQueue ingest_;
  SessionManager sessions_;
  SubscriptionHub hub_;

  /// Serializes every engine call (driver cycles and client operations).
  mutable std::mutex engine_mu_;

  /// Serializes control-plane operations (Register / Unregister /
  /// CloseSession): admission, hub binding and engine registration must
  /// be atomic with respect to a concurrent session close, or a racing
  /// Close could strand a just-registered query in the engine with no
  /// owner. Always acquired before engine_mu_, never by the driver.
  std::mutex control_mu_;

  std::atomic<QueryId> next_query_id_{1};

  /// Replication state. role_ flips exactly once (Promote). The applier
  /// and its bookkeeping are only touched under engine_mu_; the progress
  /// timestamps are atomics so reads (snapshot staleness, parked fetch
  /// probes) never take the engine lock.
  std::atomic<ServiceRole> role_{ServiceRole::kLeader};
  std::function<std::unique_ptr<MonitorEngine>()> engine_factory_;
  /// Guarded by leader_endpoint_mu_: rewritten by SetLeaderEndpoint when
  /// a failover re-targets this follower, read on every refused write.
  mutable std::mutex leader_endpoint_mu_;
  std::string leader_endpoint_;
  std::unique_ptr<JournalApplier> applier_;
  std::atomic<Timestamp> applied_cycle_ts_{0};
  std::atomic<Timestamp> leader_cycle_ts_{0};
  std::atomic<std::uint64_t> journal_progress_{0};

  /// Lease + fencing state (v5). lease_ is only constructed when
  /// options.lease.enabled; fencing_epoch_ is a monotone max across
  /// Promote() and ObserveFencingEpoch(); fenced_ latches true when
  /// this leader's lease lapses or a higher epoch appears, and only
  /// Promote(new_epoch) clears it. epoch_mu_ serializes the
  /// persist-then-publish of a raised epoch (the EPOCH file must be
  /// durable before the in-memory epoch moves — a failed persist stays
  /// retryable); readers of fencing_epoch_ never take it.
  std::unique_ptr<FencingLease> lease_;
  mutable std::mutex epoch_mu_;
  std::atomic<std::uint64_t> fencing_epoch_{0};
  std::atomic<bool> fenced_{false};

  /// Progress listeners (parked-wakeup hooks for front-ends). Guarded by
  /// its own mutex; never acquired while holding engine_mu_ callbacks
  /// back into the service (listeners must not re-enter).
  mutable std::mutex listeners_mu_;
  std::vector<std::pair<std::uint64_t, std::function<void()>>> listeners_;
  std::uint64_t next_listener_id_ = 1;

  /// Journal state. The writer and the journaled-query registry (the live
  /// specs a snapshot must carry) are only touched under engine_mu_,
  /// which keeps journal record order identical to engine apply order.
  std::unique_ptr<CycleJournalWriter> journal_;
  std::vector<JournaledQuery> journaled_queries_;  ///< registration order
  mutable std::mutex journal_status_mu_;
  Status journal_status_;
  std::atomic<std::uint64_t> journal_failures_{0};

  /// First error during recovered-session adoption (ctor can't fail;
  /// Open() checks and propagates this).
  Status bootstrap_error_;

  /// Test clock override for NowSeconds. The flag is the hot-path
  /// guard: session-scoped ingest calls NowSeconds per record, so the
  /// production path must stay a single relaxed atomic load — the mutex
  /// is only taken when an override is actually installed.
  std::atomic<bool> clock_overridden_{false};
  mutable std::mutex clock_mu_;
  std::function<double()> clock_override_;

  // Driver / flush coordination.
  mutable std::mutex state_mu_;
  std::condition_variable flush_cv_;
  CycleObserver observer_;
  std::uint64_t applied_records_ = 0;
  /// Of applied_records_, how many arrived via replication rather than
  /// the ingest queue. Flush() fences queue drains against queue pushes,
  /// so on a promoted leader the replicated majority must be excluded —
  /// otherwise the fence is trivially satisfied and Flush() returns
  /// before the first post-promotion write is applied.
  std::uint64_t replicated_records_ = 0;
  std::uint64_t flush_fence_ = 0;  ///< drain at least this many pushes
  std::uint64_t cycles_ = 0;
  std::uint64_t failed_cycles_ = 0;
  bool stopped_ = false;

  std::mutex shutdown_mu_;
  bool shutdown_requested_ = false;

  /// Stats sections (see AddStatsSection). sections_mu_ is held while a
  /// provider runs, which is what makes RemoveStatsSection a barrier;
  /// providers must therefore never call back into AddStatsSection /
  /// RemoveStatsSection (they read plain stats structs in practice).
  mutable std::mutex sections_mu_;
  std::vector<std::tuple<std::uint64_t, std::string, StatsSectionProvider>>
      sections_;
  std::uint64_t next_section_id_ = 1;

  /// Admin endpoint (nullptr unless options.admin.enabled). Declared
  /// after everything its handlers read, so destruction stops the admin
  /// thread first; Shutdown() also stops it explicitly.
  std::unique_ptr<AdminHttpServer> admin_;
  Status admin_status_;

  std::thread driver_;
};

}  // namespace topkmon

#endif  // TOPKMON_SERVICE_MONITOR_SERVICE_H_
