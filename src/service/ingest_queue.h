// Batched, reordering MPSC ingest queue (service layer).
//
// Many producer threads feed tuples concurrently, but the monitoring
// engines consume one single-threaded arrival batch per processing cycle
// with strictly increasing record ids and non-decreasing timestamps.
// IngestQueue bridges the two worlds:
//   * Push()/TryPush() admit a point with a client-supplied arrival
//     timestamp from any thread. A bounded capacity applies backpressure
//     (Push blocks while full) or load-shedding (TryPush refuses and
//     counts the record as shed).
//   * Buffered tuples sit in a min-heap ordered by (timestamp, push
//     sequence). A tuple is released only once the highest timestamp seen
//     has advanced past it by `slack` time units, so out-of-order arrivals
//     within the slack are re-sorted rather than clamped. Stragglers that
//     show up later than the release frontier are coerced forward to it
//     (and counted) — the engines' window contract admits no time travel.
//   * DrainBatch() pops the releasable prefix as one arrival batch,
//     assigns the strictly increasing record ids the engines require, and
//     reports the cycle timestamp to process the batch at. When nothing
//     clears the slack gate within `max_wait` the gate opens and whatever
//     is buffered is released, bounding result staleness when the stream
//     goes quiet.

#ifndef TOPKMON_SERVICE_INGEST_QUEUE_H_
#define TOPKMON_SERVICE_INGEST_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <mutex>
#include <vector>

#include "common/record.h"
#include "common/status.h"

namespace topkmon {

/// Tuning knobs for the ingest path.
struct IngestOptions {
  /// Maximum buffered records before producers feel backpressure.
  std::size_t capacity = 1 << 16;
  /// Maximum records released per DrainBatch call (one processing cycle).
  std::size_t max_batch = 8192;
  /// Reorder tolerance: a record is held until max-seen-timestamp exceeds
  /// its arrival by this much, giving out-of-order producers a chance to
  /// slot in. 0 releases immediately in push order.
  Timestamp slack = 2;
  /// First record id DrainBatch assigns. After crash recovery the service
  /// resumes the id sequence where the journal left off, because record
  /// ids must stay strictly increasing across restarts (they encode
  /// arrival order for the engines' windows).
  RecordId first_record_id = 0;
  /// Initial release frontier. Arrivals timestamped at or before this are
  /// coerced forward to it (and counted), exactly like in-stream
  /// stragglers — after recovery, no tuple may time-travel behind the
  /// last journaled cycle.
  Timestamp min_timestamp = std::numeric_limits<Timestamp>::min();
};

/// Observable ingest counters (all monotonically increasing except depth).
struct IngestStats {
  std::uint64_t pushed = 0;    ///< records accepted into the buffer
  std::uint64_t shed = 0;      ///< TryPush refusals on a full buffer
  std::uint64_t coerced = 0;   ///< late records whose timestamp was
                               ///< advanced to the release frontier
  std::uint64_t batches = 0;   ///< DrainBatch calls that released records
  std::size_t max_depth = 0;   ///< high-water mark of the buffer
};

/// Thread-safe multi-producer single-consumer batching queue.
class IngestQueue {
 public:
  explicit IngestQueue(const IngestOptions& options);

  IngestQueue(const IngestQueue&) = delete;
  IngestQueue& operator=(const IngestQueue&) = delete;

  /// Admits a tuple, blocking while the buffer is at capacity
  /// (backpressure). Fails with FailedPrecondition once Close()d.
  Status Push(Point position, Timestamp arrival);

  /// Non-blocking admission; returns false when the buffer is full
  /// (counted as shed) or the queue is closed (not counted — the stream
  /// has ended, nothing was load-shed).
  bool TryPush(Point position, Timestamp arrival);

  /// Consumer side: appends at most options.max_batch releasable records
  /// to *out (ids assigned, timestamps non-decreasing) and sets *cycle_ts
  /// to the timestamp the batch should be processed at. Blocks up to
  /// `max_wait` for the slack gate to clear; on timeout (or when
  /// `flush_all` is set, or after Close) everything buffered is released.
  /// Returns the number of records appended; 0 with closed() true and an
  /// empty buffer means the stream is fully drained. When
  /// `oldest_push` is non-null and records were released, it receives
  /// the earliest Push() wall instant among them — the driver times
  /// (publish instant − oldest push) into the ingest→publish latency
  /// histogram, so one sample per cycle records the batch's worst case.
  std::size_t DrainBatch(std::vector<Record>* out, Timestamp* cycle_ts,
                         std::chrono::milliseconds max_wait,
                         bool flush_all = false,
                         std::chrono::steady_clock::time_point* oldest_push =
                             nullptr);

  /// Permanently closes the queue: subsequent pushes fail, blocked
  /// producers wake, and DrainBatch releases the remaining buffer.
  void Close();

  bool closed() const;

  /// Records currently buffered.
  std::size_t depth() const;

  /// Backpressure hint for producers: 0 while the buffer sits below the
  /// high-water mark (half of capacity), otherwise the fullness scaled
  /// into 1..255 (255 = at capacity). Front-ends ship it to remote
  /// producers (the IngestAck queue_hint byte) so they self-pace instead
  /// of the server blocking on a full queue.
  std::uint8_t Pressure() const;

  IngestStats stats() const;

  /// Total records ever accepted (stats().pushed; used as a flush fence).
  std::uint64_t PushedSoFar() const;

  /// The id the next drained record will receive (journal snapshots store
  /// this so recovery can resume the sequence).
  RecordId NextRecordId() const;

  /// Re-seeds the id/timestamp sequences of an *empty* queue — the
  /// promotion path: a replication follower built its state by replay
  /// (nothing ever pushed), and on promotion new ingest must continue the
  /// leader's record ids and never time-travel behind the last replayed
  /// cycle. FailedPrecondition while records are buffered or the queue is
  /// closed.
  Status ResumeSequences(RecordId next_record_id, Timestamp min_timestamp);

  /// Approximate heap footprint of the buffered records.
  std::size_t MemoryBytes() const;

 private:
  struct Pending {
    Timestamp arrival;
    std::uint64_t seq;  ///< push order; ties on arrival keep FIFO order
    Point position;
    /// Wall instant of the Push (ingest→publish latency measurement).
    std::chrono::steady_clock::time_point pushed_at;
  };
  /// Max-heap comparator inverted to pop the smallest (arrival, seq).
  struct Later {
    bool operator()(const Pending& a, const Pending& b) const {
      if (a.arrival != b.arrival) return a.arrival > b.arrival;
      return a.seq > b.seq;
    }
  };

  void PushLocked(Point&& position, Timestamp arrival);
  bool ReleasableLocked() const;

  const IngestOptions options_;

  mutable std::mutex mu_;
  std::condition_variable not_full_cv_;  ///< producers wait here
  std::condition_variable drain_cv_;     ///< the consumer waits here
  std::vector<Pending> heap_;
  bool closed_ = false;
  std::uint64_t push_seq_ = 0;
  Timestamp max_seen_ = std::numeric_limits<Timestamp>::min();
  Timestamp frontier_ = std::numeric_limits<Timestamp>::min();
  RecordId next_id_ = 0;
  IngestStats stats_;
};

}  // namespace topkmon

#endif  // TOPKMON_SERVICE_INGEST_QUEUE_H_
