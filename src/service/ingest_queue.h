// Batched, reordering MPSC ingest queue (service layer).
//
// Many producer threads feed tuples concurrently, but the monitoring
// engines consume one single-threaded arrival batch per processing cycle
// with strictly increasing record ids and non-decreasing timestamps.
// IngestQueue bridges the two worlds:
//   * Push()/TryPush() admit a point with a client-supplied arrival
//     timestamp from any thread. A bounded capacity applies backpressure
//     (Push blocks while full) or load-shedding (TryPush refuses and
//     counts the record as shed). PushBatch() admits a whole decoded
//     wire frame of arena-backed records at once — the zero-copy path.
//   * Buffered tuples are *references* into a RecordArena (the queue's
//     own arena for in-process pushes, the same arena for wire frames
//     the TCP server decodes straight into it via
//     MonitorService::ingest_arena()). The buffer itself is a flat
//     sorted run with a head index: pushes append in O(1), and the run
//     is re-sorted by (arrival, push sequence) only when a drain finds
//     out-of-order arrivals — in-order streams never pay a sort.
//   * A tuple is released only once the highest timestamp seen has
//     advanced past it by `slack` time units, so out-of-order arrivals
//     within the slack are re-sorted rather than clamped. Stragglers
//     that show up later than the release frontier are coerced forward
//     to it (and counted) — the engines' window contract admits no time
//     travel.
//   * DrainBatch() copies the releasable prefix into the consumer's
//     reusable batch vector (the one copy on the wire path), assigns
//     the strictly increasing record ids the engines require, and
//     reports the cycle timestamp to process the batch at. The drained
//     records' arena storage is NOT released yet: it is parked on a
//     pending-release list until the consumer calls CommitDrained()
//     after the cycle has been published (journal append + engine apply
//     + observer all read the drained copy, but the arena epochs only
//     retire once the cycle is out the door). When nothing clears the
//     slack gate within `max_wait` the gate opens and whatever is
//     buffered is released, bounding result staleness when the stream
//     goes quiet.
//
// Lock ordering: queue mutex before arena mutex; CommitDrained releases
// arena storage outside the queue mutex.

#ifndef TOPKMON_SERVICE_INGEST_QUEUE_H_
#define TOPKMON_SERVICE_INGEST_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <mutex>
#include <vector>

#include "common/record.h"
#include "common/status.h"
#include "stream/record_arena.h"

namespace topkmon {

/// Tuning knobs for the ingest path.
struct IngestOptions {
  /// Maximum buffered records before producers feel backpressure.
  std::size_t capacity = 1 << 16;
  /// Maximum records released per DrainBatch call (one processing cycle).
  std::size_t max_batch = 8192;
  /// Reorder tolerance: a record is held until max-seen-timestamp exceeds
  /// its arrival by this much, giving out-of-order producers a chance to
  /// slot in. 0 releases immediately in push order.
  Timestamp slack = 2;
  /// First record id DrainBatch assigns. After crash recovery the service
  /// resumes the id sequence where the journal left off, because record
  /// ids must stay strictly increasing across restarts (they encode
  /// arrival order for the engines' windows).
  RecordId first_record_id = 0;
  /// Initial release frontier. Arrivals timestamped at or before this are
  /// coerced forward to it (and counted), exactly like in-stream
  /// stragglers — after recovery, no tuple may time-travel behind the
  /// last journaled cycle.
  Timestamp min_timestamp = std::numeric_limits<Timestamp>::min();
  /// The queue's record arena (single pushes allocate from it; the TCP
  /// server decodes wire frames straight into it).
  RecordArenaOptions arena;
};

/// Observable ingest counters (all monotonically increasing except depth).
struct IngestStats {
  std::uint64_t pushed = 0;    ///< records accepted into the buffer
  std::uint64_t shed = 0;      ///< TryPush/PushBatch refusals on a full
                               ///< buffer
  std::uint64_t coerced = 0;   ///< late records whose timestamp was
                               ///< advanced to the release frontier
  std::uint64_t batches = 0;   ///< DrainBatch calls that released records
  std::uint64_t sorts = 0;     ///< drains that found out-of-order input
  std::size_t max_depth = 0;   ///< high-water mark of the buffer
};

/// Thread-safe multi-producer single-consumer batching queue.
class IngestQueue {
 public:
  explicit IngestQueue(const IngestOptions& options);
  ~IngestQueue();

  IngestQueue(const IngestQueue&) = delete;
  IngestQueue& operator=(const IngestQueue&) = delete;

  /// Admits a tuple, blocking while the buffer is at capacity
  /// (backpressure). Fails with FailedPrecondition once Close()d.
  Status Push(Point position, Timestamp arrival);

  /// Non-blocking admission; returns false when the buffer is full
  /// (counted as shed) or the queue is closed (not counted — the stream
  /// has ended, nothing was load-shed).
  bool TryPush(Point position, Timestamp arrival);

  /// Zero-copy admission of a decoded wire frame: `records` points at
  /// `n` already-validated records allocated from `owner` (normally
  /// this queue's own arena()). Admits exactly the first
  /// min(n, capacity − depth) records — the prefix, in record order —
  /// and returns that count without blocking; the refused suffix is
  /// counted as shed and remains the caller's to release. Returns 0
  /// once closed (not counted as shed). Admitted records' storage is
  /// released by the queue after the cycle that drains them is
  /// committed (CommitDrained).
  std::size_t PushBatch(const Record* records, std::size_t n,
                        RecordArena* owner);

  /// Consumer side: appends at most options.max_batch releasable records
  /// to *out (ids assigned, timestamps non-decreasing) and sets *cycle_ts
  /// to the timestamp the batch should be processed at. Blocks up to
  /// `max_wait` for the slack gate to clear; on timeout (or when
  /// `flush_all` is set, or after Close) everything buffered is released.
  /// Returns the number of records appended; 0 with closed() true and an
  /// empty buffer means the stream is fully drained. When
  /// `oldest_push` is non-null and records were released, it receives
  /// the earliest Push() wall instant among them — the driver times
  /// (publish instant − oldest push) into the ingest→publish latency
  /// histogram, so one sample per cycle records the batch's worst case.
  std::size_t DrainBatch(std::vector<Record>* out, Timestamp* cycle_ts,
                         std::chrono::milliseconds max_wait,
                         bool flush_all = false,
                         std::chrono::steady_clock::time_point* oldest_push =
                             nullptr);

  /// Releases the arena storage of every record drained so far back to
  /// its owning arena. The consumer calls this once per cycle, *after*
  /// the drained batch has been journaled, applied and published — the
  /// "reclamation keyed to cycle publish" half of the arena contract.
  /// Contiguous same-owner runs are coalesced into one Release call;
  /// the actual releases happen outside the queue mutex.
  void CommitDrained();

  /// Permanently closes the queue: subsequent pushes fail, blocked
  /// producers wake, and DrainBatch releases the remaining buffer.
  void Close();

  bool closed() const;

  /// Records currently buffered.
  std::size_t depth() const;

  /// Backpressure hint for producers: 0 while the buffer sits below the
  /// high-water mark (half of capacity), otherwise the fullness scaled
  /// into 1..255 (255 = at capacity). Front-ends ship it to remote
  /// producers (the IngestAck queue_hint byte) so they self-pace instead
  /// of the server blocking on a full queue.
  std::uint8_t Pressure() const;

  IngestStats stats() const;

  /// Total records ever accepted (stats().pushed; used as a flush fence).
  std::uint64_t PushedSoFar() const;

  /// The id the next drained record will receive (journal snapshots store
  /// this so recovery can resume the sequence).
  RecordId NextRecordId() const;

  /// Re-seeds the id/timestamp sequences of an *empty* queue — the
  /// promotion path: a replication follower built its state by replay
  /// (nothing ever pushed), and on promotion new ingest must continue the
  /// leader's record ids and never time-travel behind the last replayed
  /// cycle. FailedPrecondition while records are buffered or the queue is
  /// closed.
  Status ResumeSequences(RecordId next_record_id, Timestamp min_timestamp);

  /// The queue's record arena — where the TCP server decodes ingest
  /// frames so admitted records are never copied between decode and
  /// drain. Lives exactly as long as the queue (== the service).
  RecordArena& arena() { return arena_; }

  /// Arena slab bytes currently resident (the topkmon_arena_bytes
  /// gauge; flat after warm-up is what the soak tier asserts).
  std::size_t ArenaResidentBytes() const { return arena_.ResidentBytes(); }
  RecordArenaStats ArenaStats() const { return arena_.stats(); }

  /// Approximate heap footprint of the queue buffers + arena slabs.
  std::size_t MemoryBytes() const;

 private:
  /// One buffered record: a reference into an arena plus the ordering
  /// key. 40 bytes — the point payload stays in the arena slab.
  struct Pending {
    Timestamp arrival;
    std::uint64_t seq;  ///< push order; ties on arrival keep FIFO order
    const Record* rec;  ///< arena-backed storage (position read at drain)
    RecordArena* owner;
    /// Wall instant of the Push (ingest→publish latency measurement).
    std::chrono::steady_clock::time_point pushed_at;
  };
  /// A drained record's storage awaiting CommitDrained.
  struct Parked {
    const Record* rec;
    RecordArena* owner;
  };

  std::size_t SizeLocked() const { return buf_.size() - head_; }
  void PushLocked(const Record* rec, Timestamp arrival, RecordArena* owner);
  bool ReleasableLocked() const;
  /// Restores (arrival, seq) order over the live run if a push broke it.
  void SortLocked();

  const IngestOptions options_;
  RecordArena arena_;

  mutable std::mutex mu_;
  std::condition_variable not_full_cv_;  ///< producers wait here
  std::condition_variable drain_cv_;     ///< the consumer waits here
  /// Live run is buf_[head_..); the drained prefix is compacted away
  /// once it reaches half the vector.
  std::vector<Pending> buf_;
  std::size_t head_ = 0;
  bool is_sorted_ = true;
  /// Smallest buffered arrival (the slack-gate probe); max() when empty.
  Timestamp min_arrival_ = std::numeric_limits<Timestamp>::max();
  std::vector<Parked> pending_release_;
  bool closed_ = false;
  std::uint64_t push_seq_ = 0;
  Timestamp max_seen_ = std::numeric_limits<Timestamp>::min();
  Timestamp frontier_ = std::numeric_limits<Timestamp>::min();
  RecordId next_id_ = 0;
  IngestStats stats_;
};

}  // namespace topkmon

#endif  // TOPKMON_SERVICE_INGEST_QUEUE_H_
