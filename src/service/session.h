// Per-client sessions and admission control (service layer).
//
// A session is the unit of ownership in the multi-client service: every
// continuous query is registered on behalf of exactly one session, and
// closing the session releases everything it owns (queries, subscription
// buffers). SessionManager is pure bookkeeping — it never touches the
// engine — so admission decisions stay cheap, lock-scoped, and testable
// without a running service. MonitorService composes it with the engine:
// admit first (quota check + ownership record), register with the engine,
// and roll the admission back if the engine refuses.
//
// Quotas are the service's admission control: a per-session cap on live
// queries and a cap on k bound the per-cycle maintenance work any single
// client can demand, which is what keeps one greedy dashboard from
// starving a thousand polite ones.

#ifndef TOPKMON_SERVICE_SESSION_H_
#define TOPKMON_SERVICE_SESSION_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "core/query.h"

namespace topkmon {

/// Opaque client-session handle.
using SessionId = std::uint64_t;

/// Admission-control limits applied per session.
struct SessionOptions {
  int max_queries_per_session = 16;  ///< live queries one client may hold
  int max_k = 128;                   ///< largest admissible result size
  std::size_t max_sessions = 4096;   ///< concurrently open sessions
  /// Per-session ingest rate limit (token bucket), records per second.
  /// <= 0 disables rate limiting. Only the session-scoped ingest calls
  /// (MonitorService::Ingest/TryIngest with a SessionId) are limited;
  /// anonymous producers bypass the bucket.
  double ingest_rate_per_sec = 0.0;
  /// Bucket capacity (burst size) in records; <= 0 means one second's
  /// worth of tokens (== ingest_rate_per_sec).
  double ingest_burst = 0.0;
};

/// One open session as the admin plane reports it (/statusz).
struct SessionInfo {
  SessionId id = 0;
  std::string label;
  std::size_t queries = 0;  ///< live queries owned
};

/// Observable session-layer counters.
struct SessionStats {
  std::uint64_t opened = 0;
  std::uint64_t closed = 0;
  std::uint64_t queries_admitted = 0;
  std::uint64_t queries_released = 0;
  std::uint64_t quota_rejections = 0;  ///< Admit refusals (any quota)
  std::uint64_t rate_limited = 0;      ///< ingest refusals (empty bucket)
};

/// Thread-safe registry of sessions and the queries they own.
class SessionManager {
 public:
  explicit SessionManager(const SessionOptions& options);

  /// Opens a session. `label` is free-form (client name, connection
  /// address) and only used for diagnostics. Fails with
  /// FailedPrecondition when max_sessions are already open.
  Result<SessionId> Open(std::string label);

  /// Closes a session and returns the ids of all queries it still owned;
  /// the caller must unregister them from the engine and unbind their
  /// subscriptions. NotFound for unknown sessions.
  Result<std::vector<QueryId>> Close(SessionId session);

  /// Checks quotas and records `query_id` as owned by `session`.
  /// FailedPrecondition when the session is at its query quota,
  /// InvalidArgument when k is non-positive or exceeds max_k, NotFound for
  /// unknown sessions. On success the caller owns rolling back with
  /// Release() if downstream registration fails.
  Status Admit(SessionId session, QueryId query_id, int k);

  /// Drops a query's ownership record (query termination or admission
  /// rollback). NotFound if the query is unknown.
  Status Release(QueryId query_id);

  /// The session owning `query_id`; NotFound if unknown.
  Result<SessionId> Owner(QueryId query_id) const;

  /// Diagnostic label given at Open; NotFound if unknown.
  Result<std::string> Label(SessionId session) const;

  /// The oldest open session with this label; NotFound if none. O(open
  /// sessions) — intended for reconnect/adoption after a restart, not the
  /// hot path.
  Result<SessionId> FindByLabel(const std::string& label) const;

  /// Takes `n` tokens from the session's ingest bucket at time
  /// `now_seconds` (any monotonic clock, in seconds; the caller supplies
  /// it so tests can run on a virtual clock). Refills at
  /// ingest_rate_per_sec up to the burst capacity. FailedPrecondition
  /// (and counted as rate_limited) when the bucket cannot cover `n`;
  /// NotFound for unknown sessions; always Ok when rate limiting is
  /// disabled.
  Status ConsumeIngestTokens(SessionId session, double n,
                             double now_seconds);

  /// Batch variant for the zero-copy wire path: takes as many whole
  /// tokens as the bucket covers, up to `n`, and returns the granted
  /// count. Records beyond the grant are each counted as rate_limited
  /// (matching n single-token refusals). NotFound (granted 0) for
  /// unknown sessions; grants all of `n` when rate limiting is
  /// disabled. When fewer than `n` are granted and `refusal` is
  /// non-null, it receives the same FailedPrecondition a single-record
  /// refusal would draw.
  std::size_t ConsumeUpToIngestTokens(SessionId session, std::size_t n,
                                      double now_seconds, Status* refusal);

  /// Live queries owned by `session`; NotFound if unknown.
  Result<std::size_t> QueryCount(SessionId session) const;

  std::size_t OpenSessions() const;

  /// Snapshot of every open session, id-sorted — the /statusz session
  /// table. O(open sessions); admin-plane only, not the hot path.
  std::vector<SessionInfo> List() const;

  /// Total live queries across all sessions.
  std::size_t ActiveQueries() const;

  SessionStats stats() const;

 private:
  struct SessionState {
    std::string label;
    std::unordered_set<QueryId> queries;
    double tokens = 0.0;           ///< ingest bucket fill
    double last_refill = 0.0;      ///< now_seconds of the last refill
    bool bucket_primed = false;    ///< first consume starts a full bucket
  };

  double BurstCapacity() const {
    return options_.ingest_burst > 0.0 ? options_.ingest_burst
                                       : options_.ingest_rate_per_sec;
  }

  const SessionOptions options_;

  mutable std::mutex mu_;
  SessionId next_session_ = 1;
  std::unordered_map<SessionId, SessionState> sessions_;
  std::unordered_map<QueryId, SessionId> owner_;
  SessionStats stats_;
};

}  // namespace topkmon

#endif  // TOPKMON_SERVICE_SESSION_H_
