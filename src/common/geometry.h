// Geometric primitives for the unit workspace.
//
// The paper (Section 3) models each record as a point in the d-dimensional
// unit space [0,1]^d. Points use a fixed-capacity inline array so that the
// hot maintenance path never allocates.

#ifndef TOPKMON_COMMON_GEOMETRY_H_
#define TOPKMON_COMMON_GEOMETRY_H_

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>

#include "common/status.h"

namespace topkmon {

/// Maximum supported dimensionality. The paper evaluates d in [2, 6]; we
/// leave headroom for experimentation.
inline constexpr int kMaxDims = 8;

/// A point in [0,1]^d with inline storage (no heap allocation).
///
/// Only the first `dim()` coordinates are meaningful; the remainder are
/// zero-initialized so that equality and hashing are well-defined.
class Point {
 public:
  Point() : dim_(0), x_{} {}

  /// Creates a `dim`-dimensional origin point (all coordinates zero).
  explicit Point(int dim) : dim_(dim), x_{} { assert(dim >= 0 && dim <= kMaxDims); }

  /// Creates a point from an explicit coordinate list, e.g. Point({0.3, 0.7}).
  Point(std::initializer_list<double> coords) : dim_(0), x_{} {
    assert(static_cast<int>(coords.size()) <= kMaxDims);
    for (double c : coords) x_[dim_++] = c;
  }

  int dim() const { return dim_; }

  double operator[](int i) const {
    assert(i >= 0 && i < dim_);
    return x_[i];
  }
  double& operator[](int i) {
    assert(i >= 0 && i < dim_);
    return x_[i];
  }

  const double* data() const { return x_.data(); }

  /// True iff every coordinate lies in [0, 1] and is finite.
  bool InUnitSpace() const;

  friend bool operator==(const Point& a, const Point& b) {
    return a.dim_ == b.dim_ && a.x_ == b.x_;
  }

  /// "(x1, x2, ..., xd)" with 4 decimal places.
  std::string ToString() const;

 private:
  int dim_;
  std::array<double, kMaxDims> x_;
};

/// An axis-parallel hyper-rectangle [lo, hi] used for grid cells and the
/// constraint regions of constrained top-k queries (Section 7).
class Rect {
 public:
  Rect() : dim_(0) {}

  /// Constructs the rectangle spanning [lo[i], hi[i]] per dimension.
  /// Requires lo.dim() == hi.dim() and lo[i] <= hi[i].
  Rect(const Point& lo, const Point& hi) : dim_(lo.dim()), lo_(lo), hi_(hi) {
    assert(lo.dim() == hi.dim());
#ifndef NDEBUG
    for (int i = 0; i < dim_; ++i) assert(lo[i] <= hi[i]);
#endif
  }

  /// The full unit workspace [0,1]^d.
  static Rect UnitSpace(int dim);

  int dim() const { return dim_; }
  const Point& lo() const { return lo_; }
  const Point& hi() const { return hi_; }

  /// True iff `p` lies inside this rectangle (inclusive on all faces).
  bool Contains(const Point& p) const;

  /// True iff this rectangle and `other` share at least one point.
  bool Intersects(const Rect& other) const;

  /// Product of side lengths.
  double Volume() const;

  std::string ToString() const;

 private:
  int dim_;
  Point lo_;
  Point hi_;
};

/// Validates that a point has dimensionality `expected_dim` and lies in the
/// unit workspace; returns InvalidArgument / OutOfRange otherwise.
Status ValidatePoint(const Point& p, int expected_dim);

}  // namespace topkmon

#endif  // TOPKMON_COMMON_GEOMETRY_H_
