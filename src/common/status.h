// Lightweight Status / Result error-handling primitives.
//
// The monitoring engines validate external input (records from the wire,
// query registrations from clients) and surface problems as Status values
// instead of throwing: stream servers must keep running when a single
// malformed tuple arrives. Internal hot paths use assertions instead.

#ifndef TOPKMON_COMMON_STATUS_H_
#define TOPKMON_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace topkmon {

/// Machine-readable error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed a value outside the documented domain
  kNotFound,          ///< referenced entity (query id, record id) is unknown
  kAlreadyExists,     ///< entity with the same id is already registered
  kOutOfRange,        ///< coordinate outside the unit workspace
  kFailedPrecondition,///< operation illegal in the current engine state
  kUnimplemented,     ///< feature combination not supported (e.g. SMA on
                      ///< update streams, Section 7 of the paper)
  kInternal,          ///< invariant violation; indicates a library bug
  kResourceExhausted, ///< a bounded buffer is full; retry after backing
                      ///< off (the ingest backpressure signal)
  kUnavailable,       ///< the serving endpoint is unreachable (e.g. a
                      ///< cluster partition is down); retry after it
                      ///< recovers — other partitions keep serving
  kFenced,            ///< the server's leader lease lapsed or a higher
                      ///< fencing epoch exists; writes are permanently
                      ///< refused here — re-resolve to the new leader
};

/// Human-readable name of a status code ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

/// Value-semantic success/error indicator with an optional message.
///
/// A default-constructed Status is OK. Error statuses carry a StatusCode
/// plus a free-form message describing the offending input.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. A message on an
  /// OK status is allowed but meaningless.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers mirroring absl::Status.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Fenced(std::string msg) {
    return Status(StatusCode::kFenced, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "CODE_NAME: message".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Result<T>: either a value or an error Status (a minimal absl::StatusOr).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error Status. `status.ok()` must be
  /// false; a Result never holds an OK status without a value.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Accessors require ok(); checked with assert in debug builds.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates an error status out of the enclosing function.
#define TOPKMON_RETURN_IF_ERROR(expr)        \
  do {                                       \
    ::topkmon::Status _st = (expr);          \
    if (!_st.ok()) return _st;               \
  } while (0)

}  // namespace topkmon

#endif  // TOPKMON_COMMON_STATUS_H_
