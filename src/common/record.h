// The stream record type.
//
// Following Section 4.1 of the paper, a record is the tuple
// <p.id, p.x1 ... p.xd, p.t>: a unique identifier, d attribute values in
// the unit workspace, and its arrival time. For time-based windows the
// expiration instant is `t + window_span`; for count-based windows records
// expire in strict arrival (FIFO) order.

#ifndef TOPKMON_COMMON_RECORD_H_
#define TOPKMON_COMMON_RECORD_H_

#include <cstdint>
#include <limits>

#include "common/geometry.h"

namespace topkmon {

/// Unique, monotonically increasing record identifier assigned on arrival.
/// Because ids are assigned in arrival order, comparing ids also compares
/// arrival (and, in the append-only model, expiration) order.
using RecordId = std::uint64_t;

/// Sentinel for "no record".
inline constexpr RecordId kInvalidRecordId =
    std::numeric_limits<RecordId>::max();

/// Logical timestamp (processing-cycle counter for count-based windows,
/// wall-clock ticks for time-based windows).
using Timestamp = std::int64_t;

/// A single stream tuple.
struct Record {
  RecordId id = kInvalidRecordId;
  Point position;          ///< attribute vector in [0,1]^d
  Timestamp arrival = 0;   ///< arrival timestamp

  Record() = default;
  Record(RecordId id_in, Point pos, Timestamp arrival_in)
      : id(id_in), position(std::move(pos)), arrival(arrival_in) {}
};

}  // namespace topkmon

#endif  // TOPKMON_COMMON_RECORD_H_
