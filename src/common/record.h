// The stream record type.
//
// Following Section 4.1 of the paper, a record is the tuple
// <p.id, p.x1 ... p.xd, p.t>: a unique identifier, d attribute values in
// the unit workspace, and its arrival time. For time-based windows the
// expiration instant is `t + window_span`; for count-based windows records
// expire in strict arrival (FIFO) order.

#ifndef TOPKMON_COMMON_RECORD_H_
#define TOPKMON_COMMON_RECORD_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <limits>
#include <vector>

#include "common/geometry.h"

namespace topkmon {

/// Unique, monotonically increasing record identifier assigned on arrival.
/// Because ids are assigned in arrival order, comparing ids also compares
/// arrival (and, in the append-only model, expiration) order.
using RecordId = std::uint64_t;

/// Sentinel for "no record".
inline constexpr RecordId kInvalidRecordId =
    std::numeric_limits<RecordId>::max();

/// Logical timestamp (processing-cycle counter for count-based windows,
/// wall-clock ticks for time-based windows).
using Timestamp = std::int64_t;

/// A single stream tuple.
struct Record {
  RecordId id = kInvalidRecordId;
  Point position;          ///< attribute vector in [0,1]^d
  Timestamp arrival = 0;   ///< arrival timestamp

  Record() = default;
  Record(RecordId id_in, Point pos, Timestamp arrival_in)
      : id(id_in), position(std::move(pos)), arrival(arrival_in) {}
};

/// Non-owning, contiguous view over records — the currency of the
/// zero-copy ingest path. A span never outlives the storage it views:
/// a cycle batch span is valid for the duration of the driver's cycle
/// (journal append, engine apply, observer), and an arena-backed span
/// is valid until its records are released back to their RecordArena.
/// Implicitly constructible from a vector so every existing
/// ProcessCycle / AppendCycle call site keeps compiling unchanged.
class RecordSpan {
 public:
  constexpr RecordSpan() = default;
  constexpr RecordSpan(const Record* data, std::size_t size)
      : data_(data), size_(size) {}
  RecordSpan(const std::vector<Record>& records)  // NOLINT: implicit
      : data_(records.data()), size_(records.size()) {}
  /// Views a braced list (alive until the end of the full expression —
  /// long enough for any call that does not retain the span).
  RecordSpan(std::initializer_list<Record> records)  // NOLINT: implicit
      : data_(records.begin()), size_(records.size()) {}

  const Record* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const Record* begin() const { return data_; }
  const Record* end() const { return data_ + size_; }

  const Record& operator[](std::size_t i) const { return data_[i]; }
  const Record& front() const { return data_[0]; }
  const Record& back() const { return data_[size_ - 1]; }

  RecordSpan subspan(std::size_t offset, std::size_t count) const {
    return RecordSpan(data_ + offset, count);
  }

 private:
  const Record* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace topkmon

#endif  // TOPKMON_COMMON_RECORD_H_
