// Monotone preference (scoring) functions.
//
// The framework (Section 3 of the paper) supports any scoring function f
// that is monotone on every attribute: increasingly monotone dimensions
// prefer larger coordinates, decreasingly monotone ones prefer smaller
// coordinates. Monotonicity is what makes grid processing efficient: the
// score of the "best corner" of a rectangle R upper-bounds the score of
// every point inside R (maxscore(R), Section 3.1), and the cell traversal
// of the top-k computation module (Figure 6) expands cells in the
// direction of decreasing score.
//
// Three families used in the paper's evaluation are provided:
//   * LinearFunction        f(p) = sum_i a_i * x_i          (Figures 14-20)
//   * ProductFunction       f(p) = prod_i (a_i + x_i)       (Figure 21a/b)
//   * SumOfSquaresFunction  f(p) = sum_i a_i * x_i^2        (Figure 21c/d)
// plus MixedLinear examples with negative coefficients (Figure 7a) fall out
// of LinearFunction directly.

#ifndef TOPKMON_COMMON_SCORING_H_
#define TOPKMON_COMMON_SCORING_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/geometry.h"

namespace topkmon {

/// Per-dimension monotonicity direction of a scoring function.
enum class Monotonicity : std::int8_t {
  kIncreasing = +1,  ///< larger coordinate => larger (or equal) score
  kDecreasing = -1,  ///< larger coordinate => smaller (or equal) score
};

/// Abstract monotone scoring function over the unit workspace.
///
/// Implementations must be monotone per dimension as reported by
/// `direction(i)`; the grid traversal and maxscore bounds rely on it.
/// Functions are immutable and thread-compatible after construction.
class ScoringFunction {
 public:
  virtual ~ScoringFunction() = default;

  /// Dimensionality of the attribute space this function scores.
  virtual int dim() const = 0;

  /// The score of point `p`. Requires p.dim() == dim().
  virtual double Score(const Point& p) const = 0;

  /// Batch-scores `n` points laid out lane-major: lanes[d][i] is
  /// coordinate d of point i; writes the scores to out[0..n). Must be
  /// bitwise identical to scoring each reconstructed point with Score()
  /// — the engines' differential tests rely on it — so overrides have to
  /// apply the exact floating-point operation order of Score(). The
  /// default does exactly that via reconstruction; the built-in families
  /// override it with contiguous auto-vectorizable per-lane loops.
  virtual void ScoreLanes(const double* const* lanes, std::size_t n,
                          double* out) const;

  /// Monotonicity direction along dimension `i` (0-based).
  virtual Monotonicity direction(int i) const = 0;

  /// Deep copy.
  virtual std::unique_ptr<ScoringFunction> Clone() const = 0;

  /// Human-readable formula, e.g. "0.31*x1 + 0.82*x2".
  virtual std::string ToString() const = 0;

  /// Whether the function is monotone per dimension over the whole unit
  /// workspace, as `direction(i)` reports. The grid engines' maxscore
  /// bounds (BestCorner / MaxScore) are only valid when this holds; the
  /// piecewise-monotone wrapper (core/piecewise.h) overrides this to
  /// false, and engines that rely on corner bounds refuse such functions
  /// at registration.
  virtual bool IsMonotone() const { return true; }

  /// The corner of `r` that maximizes this function: the hi corner on
  /// increasing dimensions and the lo corner on decreasing ones.
  Point BestCorner(const Rect& r) const;

  /// The corner of `r` that minimizes this function.
  Point WorstCorner(const Rect& r) const;

  /// Upper bound on the score of any point inside `r` (Section 3.1:
  /// "maxscore(R)"); tight, attained at BestCorner(r).
  double MaxScore(const Rect& r) const { return Score(BestCorner(r)); }

  /// Lower bound on the score of any point inside `r`; attained at
  /// WorstCorner(r).
  double MinScore(const Rect& r) const { return Score(WorstCorner(r)); }
};

/// f(p) = bias + sum_i weight[i] * x_i. Negative weights yield decreasing
/// monotonicity on that dimension (as in Figure 7a, f = x1 - x2). The
/// constant bias does not change which records win, but it matters when
/// several functions must agree on absolute scores — e.g. the monotone
/// pieces of a piecewise-monotone function (core/piecewise.h).
class LinearFunction final : public ScoringFunction {
 public:
  /// Requires 1 <= weights.size() <= kMaxDims.
  explicit LinearFunction(std::vector<double> weights, double bias = 0.0);

  int dim() const override { return static_cast<int>(weights_.size()); }
  double Score(const Point& p) const override;
  void ScoreLanes(const double* const* lanes, std::size_t n,
                  double* out) const override;
  Monotonicity direction(int i) const override {
    return weights_[i] < 0 ? Monotonicity::kDecreasing
                           : Monotonicity::kIncreasing;
  }
  std::unique_ptr<ScoringFunction> Clone() const override {
    return std::make_unique<LinearFunction>(weights_, bias_);
  }
  std::string ToString() const override;

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  std::vector<double> weights_;
  double bias_;
};

/// f(p) = prod_i (a_i + x_i), with a_i >= 0; increasingly monotone on all
/// dimensions (used in Figures 7b and 21a/b).
class ProductFunction final : public ScoringFunction {
 public:
  /// Requires 1 <= offsets.size() <= kMaxDims and offsets[i] >= 0.
  explicit ProductFunction(std::vector<double> offsets);

  int dim() const override { return static_cast<int>(offsets_.size()); }
  double Score(const Point& p) const override;
  void ScoreLanes(const double* const* lanes, std::size_t n,
                  double* out) const override;
  Monotonicity direction(int) const override {
    return Monotonicity::kIncreasing;
  }
  std::unique_ptr<ScoringFunction> Clone() const override {
    return std::make_unique<ProductFunction>(offsets_);
  }
  std::string ToString() const override;

  const std::vector<double>& offsets() const { return offsets_; }

 private:
  std::vector<double> offsets_;
};

/// f(p) = sum_i a_i * x_i^2, with a_i >= 0; increasingly monotone on all
/// dimensions over the unit workspace (used in Figure 21c/d).
class SumOfSquaresFunction final : public ScoringFunction {
 public:
  /// Requires 1 <= coeffs.size() <= kMaxDims and coeffs[i] >= 0.
  explicit SumOfSquaresFunction(std::vector<double> coeffs);

  int dim() const override { return static_cast<int>(coeffs_.size()); }
  double Score(const Point& p) const override;
  void ScoreLanes(const double* const* lanes, std::size_t n,
                  double* out) const override;
  Monotonicity direction(int) const override {
    return Monotonicity::kIncreasing;
  }
  std::unique_ptr<ScoringFunction> Clone() const override {
    return std::make_unique<SumOfSquaresFunction>(coeffs_);
  }
  std::string ToString() const override;

  const std::vector<double>& coeffs() const { return coeffs_; }

 private:
  std::vector<double> coeffs_;
};

/// Scoring-function families used by the paper's workload generator.
enum class FunctionFamily {
  kLinear,        ///< sum a_i x_i, a_i ~ U[0,1]          (Section 8)
  kProduct,       ///< prod (a_i + x_i), a_i ~ U[0,1]     (Figure 21a/b)
  kSumOfSquares,  ///< sum a_i x_i^2, a_i ~ U[0,1]        (Figure 21c/d)
};

/// Draws a random function of the given family with coefficients from
/// `uniform01` (a callable returning doubles in [0,1)), matching the query
/// workload of Section 8.
std::unique_ptr<ScoringFunction> MakeRandomFunction(
    FunctionFamily family, int dim,
    const std::function<double()>& uniform01);

/// Parses a family name ("linear", "product", "squares") for CLI tools.
Result<FunctionFamily> ParseFunctionFamily(const std::string& name);

}  // namespace topkmon

#endif  // TOPKMON_COMMON_SCORING_H_
