#include "common/scoring.h"

#include <cassert>
#include <cstdio>

namespace topkmon {

namespace {

std::string FormatTerm(double coeff, const char* fmt, int i) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, coeff, i + 1);
  return buf;
}

}  // namespace

Point ScoringFunction::BestCorner(const Rect& r) const {
  assert(r.dim() == dim());
  Point corner(r.dim());
  for (int i = 0; i < r.dim(); ++i) {
    corner[i] =
        direction(i) == Monotonicity::kIncreasing ? r.hi()[i] : r.lo()[i];
  }
  return corner;
}

void ScoringFunction::ScoreLanes(const double* const* lanes, std::size_t n,
                                 double* out) const {
  Point p(dim());
  for (std::size_t i = 0; i < n; ++i) {
    for (int d = 0; d < dim(); ++d) p[d] = lanes[d][i];
    out[i] = Score(p);
  }
}

Point ScoringFunction::WorstCorner(const Rect& r) const {
  assert(r.dim() == dim());
  Point corner(r.dim());
  for (int i = 0; i < r.dim(); ++i) {
    corner[i] =
        direction(i) == Monotonicity::kIncreasing ? r.lo()[i] : r.hi()[i];
  }
  return corner;
}

LinearFunction::LinearFunction(std::vector<double> weights, double bias)
    : weights_(std::move(weights)), bias_(bias) {
  assert(!weights_.empty() &&
         static_cast<int>(weights_.size()) <= kMaxDims);
}

double LinearFunction::Score(const Point& p) const {
  assert(p.dim() == dim());
  double s = bias_;
  for (int i = 0; i < dim(); ++i) s += weights_[i] * p[i];
  return s;
}

void LinearFunction::ScoreLanes(const double* const* lanes, std::size_t n,
                                double* out) const {
  // Accumulate dimension-outer / point-inner: each pass reads one
  // contiguous lane, and every point sees the same addition order as
  // Score() (bias, then w_0*x_0, w_1*x_1, ...), keeping results bitwise
  // equal to the scalar path.
  const double bias = bias_;
  for (std::size_t i = 0; i < n; ++i) out[i] = bias;
  for (int d = 0; d < dim(); ++d) {
    const double w = weights_[d];
    const double* lane = lanes[d];
    for (std::size_t i = 0; i < n; ++i) out[i] += w * lane[i];
  }
}

std::string LinearFunction::ToString() const {
  std::string out;
  if (bias_ != 0.0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f + ", bias_);
    out += buf;
  }
  for (int i = 0; i < dim(); ++i) {
    if (i > 0) out += " + ";
    out += FormatTerm(weights_[i], "%.3f*x%d", i);
  }
  return out;
}

ProductFunction::ProductFunction(std::vector<double> offsets)
    : offsets_(std::move(offsets)) {
  assert(!offsets_.empty() &&
         static_cast<int>(offsets_.size()) <= kMaxDims);
#ifndef NDEBUG
  for (double a : offsets_) assert(a >= 0.0);
#endif
}

double ProductFunction::Score(const Point& p) const {
  assert(p.dim() == dim());
  double s = 1.0;
  for (int i = 0; i < dim(); ++i) s *= offsets_[i] + p[i];
  return s;
}

void ProductFunction::ScoreLanes(const double* const* lanes, std::size_t n,
                                 double* out) const {
  for (std::size_t i = 0; i < n; ++i) out[i] = 1.0;
  for (int d = 0; d < dim(); ++d) {
    const double a = offsets_[d];
    const double* lane = lanes[d];
    for (std::size_t i = 0; i < n; ++i) out[i] *= a + lane[i];
  }
}

std::string ProductFunction::ToString() const {
  std::string out;
  for (int i = 0; i < dim(); ++i) {
    if (i > 0) out += " * ";
    out += FormatTerm(offsets_[i], "(%.3f+x%d)", i);
  }
  return out;
}

SumOfSquaresFunction::SumOfSquaresFunction(std::vector<double> coeffs)
    : coeffs_(std::move(coeffs)) {
  assert(!coeffs_.empty() && static_cast<int>(coeffs_.size()) <= kMaxDims);
#ifndef NDEBUG
  for (double a : coeffs_) assert(a >= 0.0);
#endif
}

double SumOfSquaresFunction::Score(const Point& p) const {
  assert(p.dim() == dim());
  double s = 0.0;
  for (int i = 0; i < dim(); ++i) s += coeffs_[i] * p[i] * p[i];
  return s;
}

void SumOfSquaresFunction::ScoreLanes(const double* const* lanes,
                                      std::size_t n, double* out) const {
  for (std::size_t i = 0; i < n; ++i) out[i] = 0.0;
  for (int d = 0; d < dim(); ++d) {
    const double a = coeffs_[d];
    const double* lane = lanes[d];
    for (std::size_t i = 0; i < n; ++i) out[i] += a * lane[i] * lane[i];
  }
}

std::string SumOfSquaresFunction::ToString() const {
  std::string out;
  for (int i = 0; i < dim(); ++i) {
    if (i > 0) out += " + ";
    out += FormatTerm(coeffs_[i], "%.3f*x%d^2", i);
  }
  return out;
}

std::unique_ptr<ScoringFunction> MakeRandomFunction(
    FunctionFamily family, int dim,
    const std::function<double()>& uniform01) {
  assert(dim >= 1 && dim <= kMaxDims);
  std::vector<double> coeffs(dim);
  for (double& c : coeffs) c = uniform01();
  switch (family) {
    case FunctionFamily::kLinear:
      return std::make_unique<LinearFunction>(std::move(coeffs));
    case FunctionFamily::kProduct:
      return std::make_unique<ProductFunction>(std::move(coeffs));
    case FunctionFamily::kSumOfSquares:
      return std::make_unique<SumOfSquaresFunction>(std::move(coeffs));
  }
  return nullptr;
}

Result<FunctionFamily> ParseFunctionFamily(const std::string& name) {
  if (name == "linear") return FunctionFamily::kLinear;
  if (name == "product") return FunctionFamily::kProduct;
  if (name == "squares" || name == "sum_of_squares") {
    return FunctionFamily::kSumOfSquares;
  }
  return Status::InvalidArgument("unknown scoring-function family: " + name);
}

}  // namespace topkmon
