#include "common/geometry.h"

#include <cmath>
#include <cstdio>

namespace topkmon {

bool Point::InUnitSpace() const {
  for (int i = 0; i < dim_; ++i) {
    if (!std::isfinite(x_[i]) || x_[i] < 0.0 || x_[i] > 1.0) return false;
  }
  return true;
}

std::string Point::ToString() const {
  std::string out = "(";
  char buf[32];
  for (int i = 0; i < dim_; ++i) {
    std::snprintf(buf, sizeof(buf), "%.4f", x_[i]);
    if (i > 0) out += ", ";
    out += buf;
  }
  out += ")";
  return out;
}

Rect Rect::UnitSpace(int dim) {
  Point lo(dim);
  Point hi(dim);
  for (int i = 0; i < dim; ++i) hi[i] = 1.0;
  return Rect(lo, hi);
}

bool Rect::Contains(const Point& p) const {
  assert(p.dim() == dim_);
  for (int i = 0; i < dim_; ++i) {
    if (p[i] < lo_[i] || p[i] > hi_[i]) return false;
  }
  return true;
}

bool Rect::Intersects(const Rect& other) const {
  assert(other.dim() == dim_);
  for (int i = 0; i < dim_; ++i) {
    if (hi_[i] < other.lo_[i] || other.hi_[i] < lo_[i]) return false;
  }
  return true;
}

double Rect::Volume() const {
  double v = 1.0;
  for (int i = 0; i < dim_; ++i) v *= hi_[i] - lo_[i];
  return v;
}

std::string Rect::ToString() const {
  return "[" + lo_.ToString() + " .. " + hi_.ToString() + "]";
}

Status ValidatePoint(const Point& p, int expected_dim) {
  if (p.dim() != expected_dim) {
    return Status::InvalidArgument("point has dimensionality " +
                                   std::to_string(p.dim()) + ", expected " +
                                   std::to_string(expected_dim));
  }
  if (!p.InUnitSpace()) {
    return Status::OutOfRange("point " + p.ToString() +
                              " outside unit workspace");
  }
  return Status::Ok();
}

}  // namespace topkmon
