// Tiny filesystem helpers shared by the disk-touching layers (journal
// writer, replication follower): errno-to-Status conversion and a
// mkdir -p. One home so the two sides of journal shipping can never
// drift on directory-creation semantics.

#ifndef TOPKMON_UTIL_FS_H_
#define TOPKMON_UTIL_FS_H_

#include <string>

#include "common/status.h"

namespace topkmon {
namespace fs {

/// Internal-status wrapper of an errno: "what: strerror(err)".
Status ErrnoStatus(const std::string& what, int err);

/// mkdir -p: creates `dir` and any missing parents (0777 & ~umask).
/// Existing directories are fine; any other failure is an error.
Status MakeDirs(const std::string& dir);

}  // namespace fs
}  // namespace topkmon

#endif  // TOPKMON_UTIL_FS_H_
