#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace topkmon {

namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * Uniform();
}

std::uint64_t Rng::UniformInt(std::uint64_t n) {
  assert(n > 0);
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v;
  do {
    v = NextUint64();
  } while (v >= limit);
  return v % n;
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1, u2;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  u2 = Uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace topkmon
