// Deterministic pseudo-random number generation.
//
// All stochastic components (stream generators, query workloads, test
// sweeps) draw from this RNG so that every experiment is reproducible from
// a single seed. The generator is xoshiro256**, which is fast, has a 256-bit
// state, and passes BigCrush; determinism across platforms matters more
// here than cryptographic quality.

#ifndef TOPKMON_UTIL_RNG_H_
#define TOPKMON_UTIL_RNG_H_

#include <cstdint>

namespace topkmon {

/// xoshiro256** pseudo-random generator with convenience distributions.
class Rng {
 public:
  /// Seeds the state via SplitMix64 so that nearby seeds yield uncorrelated
  /// streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output.
  std::uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t UniformInt(std::uint64_t n);

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Splits off an independent generator (for per-component streams).
  Rng Fork();

 private:
  std::uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace topkmon

#endif  // TOPKMON_UTIL_RNG_H_
