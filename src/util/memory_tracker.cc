#include "util/memory_tracker.h"

#include <cstdio>

namespace topkmon {

void MemoryBreakdown::Add(const std::string& component, std::size_t bytes) {
  for (auto& [name, count] : components_) {
    if (name == component) {
      count += bytes;
      return;
    }
  }
  components_.emplace_back(component, bytes);
}

void MemoryBreakdown::Merge(const MemoryBreakdown& other) {
  for (const auto& [name, count] : other.components_) Add(name, count);
}

std::size_t MemoryBreakdown::TotalBytes() const {
  std::size_t total = 0;
  for (const auto& [name, count] : components_) total += count;
  return total;
}

std::size_t MemoryBreakdown::Bytes(const std::string& component) const {
  for (const auto& [name, count] : components_) {
    if (name == component) return count;
  }
  return 0;
}

std::string MemoryBreakdown::ToString() const {
  std::string out;
  char buf[96];
  for (const auto& [name, count] : components_) {
    std::snprintf(buf, sizeof(buf), "%s=%.2fMiB ", name.c_str(),
                  static_cast<double>(count) / (1024.0 * 1024.0));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "total=%.2fMiB", TotalMiB());
  out += buf;
  return out;
}

}  // namespace topkmon
