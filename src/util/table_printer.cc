#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace topkmon {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

std::string TablePrinter::Int(std::int64_t v) {
  return std::to_string(v);
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  print_row(headers_);
  std::string sep;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    if (c > 0) sep += "  ";
    sep += std::string(widths[c], '-');
  }
  os << sep << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace topkmon
