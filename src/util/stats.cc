#include "util/stats.h"

#include <cstdio>

namespace topkmon {

std::string RunningStat::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "mean=%.6g stddev=%.6g min=%.6g max=%.6g n=%llu", mean(),
                stddev(), min(), max(),
                static_cast<unsigned long long>(n_));
  return buf;
}

EngineStats& EngineStats::operator+=(const EngineStats& o) {
  cycles += o.cycles;
  arrivals += o.arrivals;
  expirations += o.expirations;
  cells_visited += o.cells_visited;
  points_scored += o.points_scored;
  recomputations += o.recomputations;
  initial_computations += o.initial_computations;
  result_changes += o.result_changes;
  skyband_insertions += o.skyband_insertions;
  skyband_evictions += o.skyband_evictions;
  view_refills += o.view_refills;
  maintenance_seconds += o.maintenance_seconds;
  return *this;
}

EngineStats Subtract(const EngineStats& a, const EngineStats& b) {
  EngineStats d;
  d.cycles = a.cycles - b.cycles;
  d.arrivals = a.arrivals - b.arrivals;
  d.expirations = a.expirations - b.expirations;
  d.cells_visited = a.cells_visited - b.cells_visited;
  d.points_scored = a.points_scored - b.points_scored;
  d.recomputations = a.recomputations - b.recomputations;
  d.initial_computations = a.initial_computations - b.initial_computations;
  d.result_changes = a.result_changes - b.result_changes;
  d.skyband_insertions = a.skyband_insertions - b.skyband_insertions;
  d.skyband_evictions = a.skyband_evictions - b.skyband_evictions;
  d.view_refills = a.view_refills - b.view_refills;
  d.maintenance_seconds = a.maintenance_seconds - b.maintenance_seconds;
  return d;
}

std::string EngineStats::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "cycles=%llu arrivals=%llu expirations=%llu cells=%llu scored=%llu "
      "recomputes=%llu initial=%llu changes=%llu skyband(ins=%llu evict=%llu) "
      "refills=%llu time=%.4fs",
      static_cast<unsigned long long>(cycles),
      static_cast<unsigned long long>(arrivals),
      static_cast<unsigned long long>(expirations),
      static_cast<unsigned long long>(cells_visited),
      static_cast<unsigned long long>(points_scored),
      static_cast<unsigned long long>(recomputations),
      static_cast<unsigned long long>(initial_computations),
      static_cast<unsigned long long>(result_changes),
      static_cast<unsigned long long>(skyband_insertions),
      static_cast<unsigned long long>(skyband_evictions),
      static_cast<unsigned long long>(view_refills), maintenance_seconds);
  return buf;
}

}  // namespace topkmon
