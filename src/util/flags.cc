#include "util/flags.h"

#include <cstdlib>

namespace topkmon {

Result<Flags> Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0 || token.size() <= 2) {
      return Status::InvalidArgument("expected --flag, got '" + token + "'");
    }
    token = token.substr(2);
    const std::size_t eq = token.find('=');
    if (eq != std::string::npos) {
      flags.values_[token.substr(0, eq)] = token.substr(eq + 1);
      continue;
    }
    // "--name value" when the next token is not itself a flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags.values_[token] = argv[++i];
    } else {
      flags.values_[token] = "";
    }
  }
  return flags;
}

Result<std::string> Flags::GetString(const std::string& name,
                                     const std::string& fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  read_[name] = true;
  return it->second;
}

Result<std::int64_t> Flags::GetInt(const std::string& name,
                                   std::int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  read_[name] = true;
  char* end = nullptr;
  const std::int64_t value = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag --" + name + " expects an integer, "
                                   "got '" + it->second + "'");
  }
  return value;
}

Result<double> Flags::GetDouble(const std::string& name,
                                double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  read_[name] = true;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag --" + name + " expects a number, "
                                   "got '" + it->second + "'");
  }
  return value;
}

Result<bool> Flags::GetBool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  read_[name] = true;
  if (it->second.empty() || it->second == "true" || it->second == "1") {
    return true;
  }
  if (it->second == "false" || it->second == "0") return false;
  return Status::InvalidArgument("flag --" + name + " expects a boolean, "
                                 "got '" + it->second + "'");
}

std::vector<std::string> Flags::UnreadFlags() const {
  std::vector<std::string> unread;
  for (const auto& [name, value] : values_) {
    if (read_.find(name) == read_.end()) unread.push_back(name);
  }
  return unread;
}

}  // namespace topkmon
