// Structure-size accounting.
//
// Figures 14b and 20 of the paper report the memory footprint of each
// method (grid + point lists + influence lists + query table for TMA/SMA;
// sorted lists + views for TSL). Engines report their footprint as a
// MemoryBreakdown: named byte counts that sum to the total, so benches can
// both print totals and attribute space to individual structures.

#ifndef TOPKMON_UTIL_MEMORY_TRACKER_H_
#define TOPKMON_UTIL_MEMORY_TRACKER_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace topkmon {

/// Named byte counts summing to an engine's total footprint.
class MemoryBreakdown {
 public:
  /// Adds `bytes` under `component`, accumulating if it already exists.
  void Add(const std::string& component, std::size_t bytes);

  /// Merges another breakdown into this one.
  void Merge(const MemoryBreakdown& other);

  /// Total bytes across all components.
  std::size_t TotalBytes() const;

  /// Total in MiB.
  double TotalMiB() const {
    return static_cast<double>(TotalBytes()) / (1024.0 * 1024.0);
  }

  /// Bytes attributed to `component`, 0 if absent.
  std::size_t Bytes(const std::string& component) const;

  const std::vector<std::pair<std::string, std::size_t>>& components() const {
    return components_;
  }

  /// "grid=1.2MiB point_lists=3.4MiB ... total=4.6MiB"
  std::string ToString() const;

 private:
  std::vector<std::pair<std::string, std::size_t>> components_;
};

/// Approximate heap footprint helpers for standard containers. These count
/// payload plus typical allocator bookkeeping-free capacity; exact malloc
/// overhead is platform-specific and intentionally ignored, matching the
/// paper's structure-size accounting.
template <typename Vec>
std::size_t VectorBytes(const Vec& v) {
  return v.capacity() * sizeof(typename Vec::value_type);
}

}  // namespace topkmon

#endif  // TOPKMON_UTIL_MEMORY_TRACKER_H_
