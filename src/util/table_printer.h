// Fixed-width text table printer for the benchmark harnesses.
//
// Every bench binary reproduces one table or figure of the paper by
// printing its rows/series; this printer keeps that output aligned and
// diff-friendly.

#ifndef TOPKMON_UTIL_TABLE_PRINTER_H_
#define TOPKMON_UTIL_TABLE_PRINTER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace topkmon {

/// Collects rows of string cells and renders them with aligned columns.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; pads or truncates to the header width.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` significant digits.
  static std::string Num(double v, int precision = 4);
  static std::string Int(std::int64_t v);

  /// Renders the table (header, separator, rows) to `os`.
  void Print(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace topkmon

#endif  // TOPKMON_UTIL_TABLE_PRINTER_H_
