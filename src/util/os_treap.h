// Order-statistics treap.
//
// Section 5 of the paper computes the initial dominance counters of a
// query's k-skyband with "a balanced tree BT sorted in descending order
// [of arrival time, where] an internal node contains the cardinality of
// the sub-tree rooted at that node", giving O(k log k) total time. This
// treap is that structure: a randomized balanced BST augmented with
// subtree sizes, supporting rank queries (how many stored keys are
// greater/less than x) in O(log n) expected time.
//
// Keys may repeat; duplicates are stored as separate nodes.

#ifndef TOPKMON_UTIL_OS_TREAP_H_
#define TOPKMON_UTIL_OS_TREAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace topkmon {

/// Order-statistics treap over keys of totally ordered type K.
template <typename K>
class OsTreap {
 public:
  OsTreap() : rng_state_(0x853c49e6748fea9bULL) {}

  /// Number of stored keys (counting duplicates).
  std::size_t Size() const { return SizeOf(root_.get()); }
  bool Empty() const { return root_ == nullptr; }

  /// Inserts one occurrence of `key`. O(log n) expected.
  void Insert(const K& key) { root_ = InsertNode(std::move(root_), key); }

  /// Removes one occurrence of `key`; returns false if absent.
  bool Erase(const K& key) {
    bool erased = false;
    root_ = EraseNode(std::move(root_), key, &erased);
    return erased;
  }

  /// True iff at least one occurrence of `key` is stored.
  bool Contains(const K& key) const {
    const Node* n = root_.get();
    while (n != nullptr) {
      if (key < n->key) {
        n = n->left.get();
      } else if (n->key < key) {
        n = n->right.get();
      } else {
        return true;
      }
    }
    return false;
  }

  /// Number of stored keys strictly greater than `key`. O(log n) expected.
  std::size_t CountGreater(const K& key) const {
    std::size_t count = 0;
    const Node* n = root_.get();
    while (n != nullptr) {
      if (key < n->key) {
        count += 1 + SizeOf(n->right.get());
        n = n->left.get();
      } else {
        n = n->right.get();
      }
    }
    return count;
  }

  /// Number of stored keys strictly less than `key`. O(log n) expected.
  std::size_t CountLess(const K& key) const {
    std::size_t count = 0;
    const Node* n = root_.get();
    while (n != nullptr) {
      if (n->key < key) {
        count += 1 + SizeOf(n->left.get());
        n = n->right.get();
      } else {
        n = n->left.get();
      }
    }
    return count;
  }

  /// The `rank`-th smallest key (0-based). Requires rank < Size().
  const K& Select(std::size_t rank) const {
    const Node* n = root_.get();
    assert(rank < Size());
    while (true) {
      const std::size_t left = SizeOf(n->left.get());
      if (rank < left) {
        n = n->left.get();
      } else if (rank == left) {
        return n->key;
      } else {
        rank -= left + 1;
        n = n->right.get();
      }
    }
  }

  /// Removes all keys.
  void Clear() { root_.reset(); }

  /// In-order (ascending) key dump, mainly for tests.
  std::vector<K> ToSortedVector() const {
    std::vector<K> out;
    out.reserve(Size());
    AppendInOrder(root_.get(), &out);
    return out;
  }

 private:
  struct Node {
    explicit Node(const K& k, std::uint64_t prio)
        : key(k), priority(prio) {}
    K key;
    std::uint64_t priority;
    std::size_t size = 1;
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;
  };
  using NodePtr = std::unique_ptr<Node>;

  static std::size_t SizeOf(const Node* n) { return n ? n->size : 0; }

  static void Update(Node* n) {
    n->size = 1 + SizeOf(n->left.get()) + SizeOf(n->right.get());
  }

  std::uint64_t NextPriority() {
    // xorshift64*; only used for treap balance, not statistics.
    rng_state_ ^= rng_state_ >> 12;
    rng_state_ ^= rng_state_ << 25;
    rng_state_ ^= rng_state_ >> 27;
    return rng_state_ * 0x2545f4914f6cdd1dULL;
  }

  static NodePtr RotateRight(NodePtr n) {
    NodePtr l = std::move(n->left);
    n->left = std::move(l->right);
    Update(n.get());
    l->right = std::move(n);
    Update(l.get());
    return l;
  }

  static NodePtr RotateLeft(NodePtr n) {
    NodePtr r = std::move(n->right);
    n->right = std::move(r->left);
    Update(n.get());
    r->left = std::move(n);
    Update(r.get());
    return r;
  }

  NodePtr InsertNode(NodePtr n, const K& key) {
    if (n == nullptr) return std::make_unique<Node>(key, NextPriority());
    if (key < n->key) {
      n->left = InsertNode(std::move(n->left), key);
      Update(n.get());
      if (n->left->priority > n->priority) n = RotateRight(std::move(n));
    } else {
      n->right = InsertNode(std::move(n->right), key);
      Update(n.get());
      if (n->right->priority > n->priority) n = RotateLeft(std::move(n));
    }
    return n;
  }

  static NodePtr EraseNode(NodePtr n, const K& key, bool* erased) {
    if (n == nullptr) return nullptr;
    if (key < n->key) {
      n->left = EraseNode(std::move(n->left), key, erased);
    } else if (n->key < key) {
      n->right = EraseNode(std::move(n->right), key, erased);
    } else {
      *erased = true;
      // Rotate the node down until it has at most one child, then splice.
      if (n->left == nullptr) return std::move(n->right);
      if (n->right == nullptr) return std::move(n->left);
      if (n->left->priority > n->right->priority) {
        n = RotateRight(std::move(n));
        bool dummy = false;
        n->right = EraseNode(std::move(n->right), key, &dummy);
      } else {
        n = RotateLeft(std::move(n));
        bool dummy = false;
        n->left = EraseNode(std::move(n->left), key, &dummy);
      }
    }
    Update(n.get());
    return n;
  }

  static void AppendInOrder(const Node* n, std::vector<K>* out) {
    if (n == nullptr) return;
    AppendInOrder(n->left.get(), out);
    out->push_back(n->key);
    AppendInOrder(n->right.get(), out);
  }

  NodePtr root_;
  std::uint64_t rng_state_;
};

}  // namespace topkmon

#endif  // TOPKMON_UTIL_OS_TREAP_H_
