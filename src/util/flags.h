// Minimal command-line flag parsing for the example tools.
//
// Supports "--name=value" and "--name value" syntax with typed lookups
// and a generated usage string; no external dependencies.

#ifndef TOPKMON_UTIL_FLAGS_H_
#define TOPKMON_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace topkmon {

/// Parsed command line: flag name -> value ("" for bare flags).
class Flags {
 public:
  /// Parses argv. Returns InvalidArgument for tokens that are not flags.
  static Result<Flags> Parse(int argc, const char* const* argv);

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  /// Typed accessors returning `fallback` when the flag is absent and
  /// InvalidArgument when the value does not parse.
  Result<std::string> GetString(const std::string& name,
                                const std::string& fallback) const;
  Result<std::int64_t> GetInt(const std::string& name,
                              std::int64_t fallback) const;
  Result<double> GetDouble(const std::string& name, double fallback) const;
  Result<bool> GetBool(const std::string& name, bool fallback) const;

  /// Flags present on the command line that were never read — typically
  /// typos; tools can warn on them.
  std::vector<std::string> UnreadFlags() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> read_;
};

}  // namespace topkmon

#endif  // TOPKMON_UTIL_FLAGS_H_
