// Measurement utilities: wall-clock timers, running statistics, and the
// per-cycle counters reported by the experimental evaluation (Section 8).

#ifndef TOPKMON_UTIL_STATS_H_
#define TOPKMON_UTIL_STATS_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

namespace topkmon {

/// Monotonic stopwatch measuring elapsed seconds.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  /// Resets the epoch to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Streaming mean / variance / min / max over a sequence of samples
/// (Welford's algorithm; numerically stable).
class RunningStat {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  void Reset() { *this = RunningStat(); }

  /// "mean=... stddev=... min=... max=... n=..."
  std::string ToString() const;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Counters accumulated by a monitoring engine over a simulation run; the
/// experimental section's cost model in terms of observable events.
struct EngineStats {
  std::uint64_t cycles = 0;              ///< processing cycles executed
  std::uint64_t arrivals = 0;            ///< records inserted
  std::uint64_t expirations = 0;         ///< records evicted
  std::uint64_t cells_visited = 0;       ///< cells processed by top-k search
  std::uint64_t points_scored = 0;       ///< score evaluations
  std::uint64_t recomputations = 0;      ///< from-scratch top-k computations
                                         ///< triggered by maintenance
  std::uint64_t initial_computations = 0;///< top-k computations at query
                                         ///< registration time
  std::uint64_t result_changes = 0;      ///< reported top-k deltas
  std::uint64_t skyband_insertions = 0;  ///< SMA only
  std::uint64_t skyband_evictions = 0;   ///< SMA only (dominance cnt == k)
  std::uint64_t view_refills = 0;        ///< TSL only (view dropped below k)
  double maintenance_seconds = 0.0;      ///< time in ProcessCycle

  /// Empirical probability that a maintenance cycle recomputed a query from
  /// scratch (Prrec of Section 6): recomputations / (cycles * queries).
  double RecomputationRate(std::uint64_t num_queries) const {
    const double denom =
        static_cast<double>(cycles) * static_cast<double>(num_queries);
    return denom > 0 ? static_cast<double>(recomputations) / denom : 0.0;
  }

  EngineStats& operator+=(const EngineStats& o);
  std::string ToString() const;
};

/// Field-wise difference a - b; used to isolate one measurement phase from
/// an engine's cumulative counters. Requires a >= b field-wise.
EngineStats Subtract(const EngineStats& a, const EngineStats& b);

}  // namespace topkmon

#endif  // TOPKMON_UTIL_STATS_H_
