#include "util/fs.h"

#include <errno.h>
#include <sys/stat.h>
#include <sys/types.h>

#include <cstring>

namespace topkmon {
namespace fs {

Status ErrnoStatus(const std::string& what, int err) {
  return Status::Internal(what + ": " + std::strerror(err));
}

Status MakeDirs(const std::string& dir) {
  std::string prefix;
  std::size_t pos = 0;
  while (pos <= dir.size()) {
    const std::size_t slash = dir.find('/', pos);
    prefix = slash == std::string::npos ? dir : dir.substr(0, slash);
    pos = slash == std::string::npos ? dir.size() + 1 : slash + 1;
    if (prefix.empty()) continue;  // leading '/'
    if (::mkdir(prefix.c_str(), 0777) != 0 && errno != EEXIST) {
      return ErrnoStatus("mkdir " + prefix, errno);
    }
  }
  return Status::Ok();
}

}  // namespace fs
}  // namespace topkmon
