// Fenwick (binary indexed) tree over a bounded integer domain.
//
// Companion to OsTreap for rank/prefix-count queries when keys are dense
// integer ranks (e.g. arrival positions inside a count-based window). Used
// by tests as an independent oracle for the treap and available to
// applications that prefer O(1)-allocation rank structures.

#ifndef TOPKMON_UTIL_FENWICK_H_
#define TOPKMON_UTIL_FENWICK_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace topkmon {

/// Fenwick tree maintaining per-slot non-negative counts over [0, n).
class FenwickTree {
 public:
  /// Creates a tree over the domain [0, universe), all counts zero.
  explicit FenwickTree(std::size_t universe)
      : tree_(universe + 1, 0), total_(0) {}

  std::size_t universe() const { return tree_.size() - 1; }
  std::int64_t total() const { return total_; }

  /// Adds `delta` to slot `index`. The resulting per-slot count must remain
  /// non-negative (checked only in debug builds via PrefixSum).
  void Add(std::size_t index, std::int64_t delta) {
    assert(index < universe());
    total_ += delta;
    for (std::size_t i = index + 1; i < tree_.size(); i += i & (~i + 1)) {
      tree_[i] += delta;
    }
  }

  /// Sum of counts in slots [0, index] inclusive.
  std::int64_t PrefixSum(std::size_t index) const {
    assert(index < universe());
    std::int64_t sum = 0;
    for (std::size_t i = index + 1; i > 0; i -= i & (~i + 1)) {
      sum += tree_[i];
    }
    return sum;
  }

  /// Sum of counts in slots [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t RangeSum(std::size_t lo, std::size_t hi) const {
    assert(lo <= hi && hi < universe());
    return PrefixSum(hi) - (lo == 0 ? 0 : PrefixSum(lo - 1));
  }

  /// Count of entries in slots strictly greater than `index`.
  std::int64_t CountGreater(std::size_t index) const {
    return total_ - PrefixSum(index);
  }

  /// Resets all counts to zero without reallocating.
  void Clear() {
    std::fill(tree_.begin(), tree_.end(), 0);
    total_ = 0;
  }

 private:
  std::vector<std::int64_t> tree_;
  std::int64_t total_;
};

}  // namespace topkmon

#endif  // TOPKMON_UTIL_FENWICK_H_
