#include "tsl/topk_view.h"

#include <algorithm>

namespace topkmon {

void TopKView::Refill(const std::vector<ResultEntry>& top_kmax) {
  entries_.assign(top_kmax.begin(), top_kmax.end());
  if (entries_.size() > static_cast<std::size_t>(kmax_)) {
    entries_.resize(static_cast<std::size_t>(kmax_));
  }
  assert(std::is_sorted(entries_.begin(), entries_.end(), ResultOrder));
}

bool TopKView::OnArrival(RecordId id, double score) {
  // Yi et al.: insert only records beating the current k'th (worst) view
  // entry. A weaker record is provably outside the top-k' and admitting it
  // would break the "view = exact top-k'" invariant; an empty view (k'=0)
  // accepts nothing and is repaired by the next refill.
  if (entries_.empty()) return false;
  const ResultEntry candidate{id, score};
  if (!ResultOrder(candidate, entries_.back())) return false;
  auto pos = std::lower_bound(entries_.begin(), entries_.end(), candidate,
                              ResultOrder);
  entries_.insert(pos, candidate);
  if (entries_.size() > static_cast<std::size_t>(kmax_)) entries_.pop_back();
  return true;
}

bool TopKView::OnExpiry(RecordId id, double score) {
  if (entries_.empty()) return false;
  // Non-members score below the k'th entry; skip them in O(1).
  const ResultEntry probe{id, score};
  if (ResultOrder(entries_.back(), probe)) return false;
  auto pos = std::lower_bound(entries_.begin(), entries_.end(), probe,
                              ResultOrder);
  if (pos != entries_.end() && pos->id == id) {
    entries_.erase(pos);
    return true;
  }
  return false;
}

std::vector<ResultEntry> TopKView::TopK() const {
  const std::size_t n =
      std::min<std::size_t>(entries_.size(), static_cast<std::size_t>(k_));
  return std::vector<ResultEntry>(entries_.begin(), entries_.begin() + n);
}

int DefaultKmax(int k) {
  assert(k >= 1);
  struct Pt {
    int k;
    int kmax;
  };
  static constexpr Pt kTable[] = {{1, 4},   {5, 10},  {10, 20},
                                  {20, 30}, {50, 70}, {100, 120}};
  if (k <= kTable[0].k) return kTable[0].kmax;
  constexpr int n = static_cast<int>(std::size(kTable));
  for (int i = 1; i < n; ++i) {
    if (k <= kTable[i].k) {
      const auto [k0, m0] = kTable[i - 1];
      const auto [k1, m1] = kTable[i];
      return m0 + (m1 - m0) * (k - k0) / (k1 - k0);
    }
  }
  // Beyond the calibrated range, continue the last segment's slope.
  const auto [k0, m0] = kTable[n - 2];
  const auto [k1, m1] = kTable[n - 1];
  return m1 + (m1 - m0) * (k - k1) / (k1 - k0);
}

}  // namespace topkmon
