#include "tsl/sorted_lists.h"

namespace topkmon {

SortedAttributeLists::SortedAttributeLists(int dim) : lists_(dim) {
  assert(dim >= 1 && dim <= kMaxDims);
}

void SortedAttributeLists::Insert(const Record& record) {
  assert(record.position.dim() == dim());
  for (int axis = 0; axis < dim(); ++axis) {
    lists_[axis].emplace(record.position[axis], record.id);
  }
}

Status SortedAttributeLists::Erase(const Record& record) {
  assert(record.position.dim() == dim());
  for (int axis = 0; axis < dim(); ++axis) {
    if (lists_[axis].erase({record.position[axis], record.id}) == 0) {
      return Status::NotFound("record " + std::to_string(record.id) +
                              " missing from sorted list " +
                              std::to_string(axis));
    }
  }
  return Status::Ok();
}

SortedAttributeLists::Cursor::Cursor(const Set* set, bool descending)
    : set_(set), descending_(descending) {
  if (set_->empty()) {
    valid_ = false;
    it_ = set_->end();
    return;
  }
  valid_ = true;
  it_ = descending_ ? std::prev(set_->end()) : set_->begin();
}

void SortedAttributeLists::Cursor::Advance() {
  assert(valid_);
  if (descending_) {
    if (it_ == set_->begin()) {
      valid_ = false;
    } else {
      --it_;
    }
  } else {
    ++it_;
    if (it_ == set_->end()) valid_ = false;
  }
}

SortedAttributeLists::Cursor SortedAttributeLists::BestFirst(
    int axis, Monotonicity direction) const {
  assert(axis >= 0 && axis < dim());
  return Cursor(&lists_[axis], direction == Monotonicity::kIncreasing);
}

std::size_t SortedAttributeLists::MemoryBytes() const {
  // Red-black tree node: payload + parent/left/right pointers + color.
  const std::size_t node_bytes =
      sizeof(std::pair<double, RecordId>) + 3 * sizeof(void*) +
      sizeof(long);
  std::size_t total = 0;
  for (const Set& s : lists_) total += s.size() * node_bytes;
  return total;
}

}  // namespace topkmon
