// Materialized top-k views with lazy refill (Yi et al. [30], Section 3.2).
//
// Instead of a top-k view, TSL maintains a larger view of k' entries with
// k <= k' <= kmax. Arrivals beating the current k'th score enter the view
// (evicting the kmax-th entry when full); expirations of view members
// shrink k'. Only when k' drops below k is a from-scratch top-kmax
// computation (TA) required to refill the view — the slack kmax - k
// amortizes recomputations over many expirations.

#ifndef TOPKMON_TSL_TOPK_VIEW_H_
#define TOPKMON_TSL_TOPK_VIEW_H_

#include <vector>

#include "core/query.h"

namespace topkmon {

/// The per-query materialized view of the TSL baseline.
class TopKView {
 public:
  /// Requires 1 <= k <= kmax.
  TopKView(int k, int kmax) : k_(k), kmax_(kmax) {
    assert(k >= 1 && kmax >= k);
    entries_.reserve(kmax);
  }

  int k() const { return k_; }
  int kmax() const { return kmax_; }
  /// Current view cardinality k'.
  std::size_t size() const { return entries_.size(); }

  /// Replaces the view contents with a fresh top-kmax computation
  /// (entries in ResultOrder).
  void Refill(const std::vector<ResultEntry>& top_kmax);

  /// Handles an arrival: inserts when the view is not full or the score
  /// beats the current k'th (worst) entry, evicting the overflow beyond
  /// kmax. Returns true iff the view changed.
  bool OnArrival(RecordId id, double score);

  /// Handles an expiration: removes the record if present. `score` is the
  /// record's score under the view's query, used to skip non-members in
  /// O(1). Returns true iff the view changed.
  bool OnExpiry(RecordId id, double score);

  /// True when k' < k and the view no longer answers the query (refill
  /// needed).
  bool NeedsRefill() const {
    return entries_.size() < static_cast<std::size_t>(k_);
  }

  /// The answer: first min(k, k') entries.
  std::vector<ResultEntry> TopK() const;

  /// All view entries in ResultOrder.
  const std::vector<ResultEntry>& entries() const { return entries_; }

  std::size_t MemoryBytes() const { return VectorBytes(entries_); }

 private:
  int k_;
  int kmax_;
  std::vector<ResultEntry> entries_;  // ResultOrder, size <= kmax
};

/// The fine-tuned kmax for a given k from the paper's calibration
/// (Section 8): (k, kmax) = (1,4), (5,10), (10,20), (20,30), (50,70),
/// (100,120); piecewise-linear in between and extrapolated beyond.
int DefaultKmax(int k);

}  // namespace topkmon

#endif  // TOPKMON_TSL_TOPK_VIEW_H_
