// Per-dimension sorted attribute lists (Section 3.2, Figure 3).
//
// The TSL baseline maintains, for each of the d attributes, a list of all
// valid records sorted by that attribute. The Threshold Algorithm consumes
// the lists via sorted access in "best-first" order (descending values on
// increasingly monotone axes, ascending on decreasing ones); stream
// maintenance inserts and deletes records as they arrive and expire. Each
// list is a balanced tree keyed by (value, id), giving O(log N) updates
// and exact deletion of a specific record's entry.

#ifndef TOPKMON_TSL_SORTED_LISTS_H_
#define TOPKMON_TSL_SORTED_LISTS_H_

#include <set>
#include <utility>
#include <vector>

#include "common/record.h"
#include "common/scoring.h"
#include "common/status.h"

namespace topkmon {

/// The d sorted attribute lists of TSL.
class SortedAttributeLists {
 public:
  explicit SortedAttributeLists(int dim);

  int dim() const { return static_cast<int>(lists_.size()); }

  /// Number of indexed records (identical across lists).
  std::size_t size() const { return lists_.empty() ? 0 : lists_[0].size(); }

  /// Adds the record's attribute values to all d lists.
  void Insert(const Record& record);

  /// Removes the record from all d lists. Returns NotFound if any list
  /// lacks the entry (indicates the record was never inserted).
  Status Erase(const Record& record);

  /// Sorted access in best-first order along one axis.
  class Cursor {
   public:
    /// True while a current entry exists.
    bool Valid() const { return valid_; }
    /// Attribute value of the current entry. Requires Valid().
    double value() const {
      assert(valid_);
      return it_->first;
    }
    /// Record id of the current entry. Requires Valid().
    RecordId id() const {
      assert(valid_);
      return it_->second;
    }
    /// Moves to the next-best entry.
    void Advance();

   private:
    friend class SortedAttributeLists;
    using Set = std::set<std::pair<double, RecordId>>;
    Cursor(const Set* set, bool descending);

    const Set* set_;
    bool descending_;
    Set::const_iterator it_;
    bool valid_;
  };

  /// Best-first cursor over axis `axis`: descending values when the axis
  /// is increasingly monotone for the consumer, ascending otherwise.
  Cursor BestFirst(int axis, Monotonicity direction) const;

  /// Approximate heap footprint: one tree node (payload + three pointers +
  /// color word) per record per list.
  std::size_t MemoryBytes() const;

 private:
  using Set = std::set<std::pair<double, RecordId>>;
  std::vector<Set> lists_;
};

}  // namespace topkmon

#endif  // TOPKMON_TSL_SORTED_LISTS_H_
