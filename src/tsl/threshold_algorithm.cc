#include "tsl/threshold_algorithm.h"

#include <unordered_set>

namespace topkmon {

TaResult RunThresholdAlgorithm(const SortedAttributeLists& lists,
                               const ScoringFunction& f, int k,
                               const TaRecordAccessor& records,
                               const Rect* constraint) {
  assert(k >= 1);
  assert(f.dim() == lists.dim());
  TaResult out;
  const int dim = lists.dim();

  std::vector<SortedAttributeLists::Cursor> cursors;
  cursors.reserve(dim);
  for (int axis = 0; axis < dim; ++axis) {
    cursors.push_back(lists.BestFirst(axis, f.direction(axis)));
  }

  TopKList top(k);
  std::unordered_set<RecordId> seen;
  Point last_seen(dim);  // last attribute value consumed per list
  std::vector<bool> touched(dim, false);

  bool any_valid = true;
  while (any_valid) {
    ++out.rounds;
    any_valid = false;
    // One sorted access per list, round-robin (Section 3.2).
    for (int axis = 0; axis < dim; ++axis) {
      auto& cursor = cursors[axis];
      if (!cursor.Valid()) continue;
      any_valid = true;
      ++out.sorted_accesses;
      last_seen[axis] = cursor.value();
      touched[axis] = true;
      const RecordId id = cursor.id();
      cursor.Advance();
      if (!seen.insert(id).second) continue;  // already resolved
      ++out.random_accesses;
      const Record& record = records(id);
      if (constraint != nullptr && !constraint->Contains(record.position)) {
        continue;  // resolved but outside the constraint region
      }
      const double score = f.Score(record.position);
      if (!top.full() || score >= top.KthScore()) top.Consider(id, score);
    }
    if (!any_valid) break;  // lists exhausted: fewer than k records exist
    // Threshold tau: the best score any unseen record could still achieve,
    // assembled from the frontier of every list. Until every list has been
    // touched at least once tau is undefined (unbounded).
    bool tau_defined = true;
    for (int axis = 0; axis < dim; ++axis) tau_defined &= touched[axis];
    if (tau_defined && top.full()) {
      const double tau = f.Score(last_seen);
      if (top.KthScore() >= tau) break;
    }
  }
  out.result = top.entries();
  return out;
}

}  // namespace topkmon
