// TSL — the Threshold Sorted List baseline (Section 3.2, Figure 3).
//
// TSL combines the Threshold Algorithm (for from-scratch top-k
// computation over d sorted attribute lists) with the materialized-view
// maintenance of Yi et al. (views of k' in [k, kmax] entries, refilled by
// a fresh TA run when k' drops below k). It is the paper's benchmark
// competitor, assembled from prior work: correct, but it must touch every
// query on every arrival and maintain d sorted lists on every update,
// which is what TMA/SMA's influence regions avoid.

#ifndef TOPKMON_TSL_TSL_ENGINE_H_
#define TOPKMON_TSL_TSL_ENGINE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "core/piecewise_router.h"
#include "stream/sliding_window.h"
#include "tsl/sorted_lists.h"
#include "tsl/threshold_algorithm.h"
#include "tsl/topk_view.h"

namespace topkmon {

/// TSL engine configuration.
struct TslOptions {
  int dim = 2;
  WindowSpec window = WindowSpec::Count(1000);
  /// View slack; 0 selects the paper's fine-tuned DefaultKmax(k).
  int kmax_override = 0;
};

/// The Threshold Sorted List engine.
class TslEngine final : public MonitorEngine {
 public:
  explicit TslEngine(const TslOptions& options);

  std::string name() const override { return "TSL"; }
  int dim() const override { return dim_; }
  Status RegisterQuery(const QuerySpec& spec) override;
  Status UnregisterQuery(QueryId id) override;
  Status ProcessCycle(Timestamp now, RecordSpan arrivals) override;
  Result<std::vector<ResultEntry>> CurrentResult(QueryId id) const override;
  void SetDeltaCallback(DeltaCallback callback) override {
    delta_.SetCallback(std::move(callback));
  }
  std::size_t WindowSize() const override { return window_.size(); }
  Result<EngineSnapshot> SnapshotState() const override {
    return EngineSnapshot{
        last_cycle_, std::vector<Record>(window_.begin(), window_.end())};
  }
  const EngineStats& stats() const override { return stats_; }
  MemoryBreakdown Memory() const override;

  /// Average view cardinality k' across queries (Table 2).
  double AverageViewSize() const;

  /// Cumulative TA access counts (for analysis benches).
  std::uint64_t total_sorted_accesses() const { return sorted_accesses_; }
  std::uint64_t total_random_accesses() const { return random_accesses_; }

 private:
  struct QueryState {
    QueryState(QuerySpec s, int kmax)
        : spec(std::move(s)), view(spec.k, kmax) {}
    QuerySpec spec;
    TopKView view;
  };

  void Refill(QueryState& state);

  /// Pre-validated registration body; internal piecewise sub-queries
  /// skip the delta report (only the parent's merged result is visible).
  Status RegisterMonotone(const QuerySpec& spec, bool report_delta);
  Status RemoveMonotone(QueryId id);
  Status RegisterPiecewise(const QuerySpec& spec,
                           const PiecewiseFunction& fn);
  std::vector<ResultEntry> MergedPiecewise(const PiecewiseBook& book) const;

  int dim_;
  int kmax_override_;
  SlidingWindow window_;
  SortedAttributeLists lists_;
  std::unordered_map<QueryId, QueryState> queries_;
  std::unordered_map<QueryId, PiecewiseBook> piecewise_;
  QueryId next_internal_id_ = kInternalQueryIdBase;
  EngineStats stats_;
  DeltaTracker delta_;
  Timestamp last_cycle_ = 0;
  std::uint64_t sorted_accesses_ = 0;
  std::uint64_t random_accesses_ = 0;
};

}  // namespace topkmon

#endif  // TOPKMON_TSL_TSL_ENGINE_H_
