// The Threshold Algorithm of Fagin, Lotem and Naor (TA), as used by the
// TSL baseline's top-k computation module (Section 3.2).
//
// TA performs sorted accesses over the d attribute lists in round-robin,
// resolving each newly seen record with a random access to obtain its
// remaining attributes and score. After each round it computes the
// threshold tau — the score of the virtual point assembled from the last
// value seen on every list, an upper bound on the score of any unseen
// record — and terminates once the current kth best score reaches tau.

#ifndef TOPKMON_TSL_THRESHOLD_ALGORITHM_H_
#define TOPKMON_TSL_THRESHOLD_ALGORITHM_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/record.h"
#include "common/scoring.h"
#include "core/query.h"
#include "tsl/sorted_lists.h"

namespace topkmon {

/// Output of one TA run.
struct TaResult {
  /// Up to k entries in ResultOrder.
  std::vector<ResultEntry> result;
  std::uint64_t sorted_accesses = 0;
  std::uint64_t random_accesses = 0;
  std::uint64_t rounds = 0;
};

/// Resolves a record id to the full record (random access).
using TaRecordAccessor = std::function<const Record&(RecordId)>;

/// Runs TA for monotone function `f`, returning the top `k` records among
/// those indexed in `lists`. Returns fewer than k entries when the lists
/// hold fewer records. When `constraint` is non-null, only records inside
/// the constraint rectangle are candidates: out-of-region records still
/// cost a sorted (and first-seen random) access — they occupy the shared
/// attribute lists — but never enter the result, and the threshold tau
/// remains a valid upper bound on every unseen in-region record.
TaResult RunThresholdAlgorithm(const SortedAttributeLists& lists,
                               const ScoringFunction& f, int k,
                               const TaRecordAccessor& records,
                               const Rect* constraint = nullptr);

}  // namespace topkmon

#endif  // TOPKMON_TSL_THRESHOLD_ALGORITHM_H_
