#include "tsl/tsl_engine.h"

namespace topkmon {

TslEngine::TslEngine(const TslOptions& options)
    : dim_(options.dim),
      kmax_override_(options.kmax_override),
      window_(options.window.kind == WindowKind::kCountBased
                  ? SlidingWindow::CountBased(options.window.capacity)
                  : SlidingWindow::TimeBased(options.window.span)),
      lists_(options.dim) {}

Status TslEngine::RegisterQuery(const QuerySpec& spec) {
  TOPKMON_RETURN_IF_ERROR(spec.Validate(dim_));
  if (IsInternalQueryId(spec.id)) {
    return Status::InvalidArgument(
        "query id " + std::to_string(spec.id) +
        " is in the range reserved for engine-internal sub-queries");
  }
  if (queries_.count(spec.id) > 0 || piecewise_.count(spec.id) > 0) {
    return Status::AlreadyExists("query id " + std::to_string(spec.id) +
                                 " already registered");
  }
  if (!spec.function->IsMonotone()) {
    const auto* fn =
        dynamic_cast<const PiecewiseFunction*>(spec.function.get());
    if (fn == nullptr) {
      return Status::Unimplemented(
          "TSL requires a per-dimension monotone or piecewise-monotone "
          "scoring function; got '" + spec.function->ToString() + "'");
    }
    return RegisterPiecewise(spec, *fn);
  }
  return RegisterMonotone(spec, /*report_delta=*/true);
}

Status TslEngine::RegisterMonotone(const QuerySpec& spec, bool report_delta) {
  const int kmax =
      kmax_override_ > 0 ? std::max(kmax_override_, spec.k)
                         : DefaultKmax(spec.k);
  auto [it, inserted] = queries_.emplace(spec.id, QueryState(spec, kmax));
  ++stats_.initial_computations;
  Refill(it->second);
  if (report_delta) {
    delta_.Report(spec.id, last_cycle_, it->second.view.TopK());
  }
  return Status::Ok();
}

Status TslEngine::RegisterPiecewise(const QuerySpec& spec,
                                    const PiecewiseFunction& fn) {
  Result<std::vector<QuerySpec>> subs =
      DecomposePiecewise(spec, fn, &next_internal_id_);
  if (!subs.ok()) return subs.status();
  PiecewiseBook book;
  book.k = spec.k;
  book.subs.reserve(subs->size());
  for (const QuerySpec& sub : *subs) {
    const Status st = RegisterMonotone(sub, /*report_delta=*/false);
    if (!st.ok()) {
      for (QueryId sid : book.subs) (void)RemoveMonotone(sid);
      return st;
    }
    book.subs.push_back(sub.id);
  }
  auto [it, inserted] = piecewise_.emplace(spec.id, std::move(book));
  delta_.Report(spec.id, last_cycle_, MergedPiecewise(it->second));
  return Status::Ok();
}

Status TslEngine::UnregisterQuery(QueryId id) {
  auto pit = piecewise_.find(id);
  if (pit != piecewise_.end()) {
    for (QueryId sid : pit->second.subs) (void)RemoveMonotone(sid);
    piecewise_.erase(pit);
    delta_.Forget(id);
    return Status::Ok();
  }
  if (IsInternalQueryId(id)) {
    return Status::NotFound("query id " + std::to_string(id) +
                            " not registered");
  }
  return RemoveMonotone(id);
}

Status TslEngine::RemoveMonotone(QueryId id) {
  if (queries_.erase(id) == 0) {
    return Status::NotFound("query id " + std::to_string(id) +
                            " not registered");
  }
  delta_.Forget(id);
  return Status::Ok();
}

Status TslEngine::ProcessCycle(Timestamp now, RecordSpan arrivals) {
  Stopwatch watch;
  ++stats_.cycles;
  // Arrivals: update the d sorted lists, then probe every view — TSL has
  // no influence regions, so each arrival costs one score evaluation per
  // registered query (Figure 3).
  for (const Record& p : arrivals) {
    TOPKMON_RETURN_IF_ERROR(ValidatePoint(p.position, dim_));
    TOPKMON_RETURN_IF_ERROR(window_.Append(p));
    lists_.Insert(p);
    ++stats_.arrivals;
    for (auto& [qid, state] : queries_) {
      if (state.spec.constraint.has_value() &&
          !state.spec.constraint->Contains(p.position)) {
        continue;  // constrained query: arrival outside R (Section 7)
      }
      ++stats_.points_scored;
      const double score = state.spec.function->Score(p.position);
      if (state.view.OnArrival(p.id, score)) ++stats_.result_changes;
    }
  }
  // Expirations: remove from the sorted lists and from any view that
  // contains the record; refills are deferred to the end of the cycle so
  // a burst of expirations triggers at most one TA run per query.
  for (const Record& p : window_.EvictExpired(now)) {
    TOPKMON_RETURN_IF_ERROR(lists_.Erase(p));
    ++stats_.expirations;
    for (auto& [qid, state] : queries_) {
      if (state.spec.constraint.has_value() &&
          !state.spec.constraint->Contains(p.position)) {
        continue;  // never entered this view
      }
      ++stats_.points_scored;
      const double score = state.spec.function->Score(p.position);
      if (state.view.OnExpiry(p.id, score)) ++stats_.result_changes;
    }
  }
  for (auto& [qid, state] : queries_) {
    // Refill once per cycle when the view dropped below k and the window
    // actually holds records the view is missing.
    if (state.view.NeedsRefill() && window_.size() > state.view.size()) {
      ++stats_.view_refills;
      ++stats_.recomputations;
      Refill(state);
    }
  }
  last_cycle_ = now;
  if (delta_.enabled()) {
    for (const auto& [qid, state] : queries_) {
      if (IsInternalQueryId(qid)) continue;  // only parents are reported
      delta_.Report(qid, now, state.view.TopK());
    }
    for (const auto& [pid, book] : piecewise_) {
      delta_.Report(pid, now, MergedPiecewise(book));
    }
  }
  stats_.maintenance_seconds += watch.ElapsedSeconds();
  return Status::Ok();
}

void TslEngine::Refill(QueryState& state) {
  const Rect* constraint = state.spec.constraint.has_value()
                               ? &*state.spec.constraint
                               : nullptr;
  const TaResult ta = RunThresholdAlgorithm(
      lists_, *state.spec.function, state.view.kmax(),
      [this](RecordId id) -> const Record& { return window_.Get(id); },
      constraint);
  sorted_accesses_ += ta.sorted_accesses;
  random_accesses_ += ta.random_accesses;
  stats_.points_scored += ta.random_accesses;
  state.view.Refill(ta.result);
}

Result<std::vector<ResultEntry>> TslEngine::CurrentResult(QueryId id) const {
  auto pit = piecewise_.find(id);
  if (pit != piecewise_.end()) return MergedPiecewise(pit->second);
  auto it = queries_.find(id);
  if (it == queries_.end() || IsInternalQueryId(id)) {
    return Status::NotFound("query id " + std::to_string(id) +
                            " not registered");
  }
  return it->second.view.TopK();
}

std::vector<ResultEntry> TslEngine::MergedPiecewise(
    const PiecewiseBook& book) const {
  std::vector<ResultEntry> merged;
  for (QueryId sid : book.subs) {
    const std::vector<ResultEntry> entries = queries_.at(sid).view.TopK();
    merged.insert(merged.end(), entries.begin(), entries.end());
  }
  return MergePiecewiseTopK(book.k, std::move(merged));
}

MemoryBreakdown TslEngine::Memory() const {
  MemoryBreakdown mb;
  mb.Add("window", window_.MemoryBytes());
  mb.Add("sorted_lists", lists_.MemoryBytes());
  std::size_t view_bytes = 0;
  for (const auto& [qid, state] : queries_) {
    view_bytes += sizeof(QueryState) + state.view.MemoryBytes() +
                  static_cast<std::size_t>(dim_) * sizeof(double);
  }
  mb.Add("views", view_bytes);
  return mb;
}

double TslEngine::AverageViewSize() const {
  if (queries_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& [qid, state] : queries_) {
    total += static_cast<double>(state.view.size());
  }
  return total / static_cast<double>(queries_.size());
}

}  // namespace topkmon
