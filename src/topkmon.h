// Umbrella header: the full public API of the topkmon library.
//
//   #include "topkmon.h"
//
// pulls in the monitoring engines (TMA, SMA, TSL, brute force), the
// Section 7 extensions (constrained queries, threshold monitoring, update
// streams), the skyline monitor, the synthetic workload generators and
// the simulation driver. Individual headers can be included directly for
// faster builds.

#ifndef TOPKMON_TOPKMON_H_
#define TOPKMON_TOPKMON_H_

#include "common/geometry.h"
#include "common/record.h"
#include "common/scoring.h"
#include "common/status.h"
#include "core/brute_force_engine.h"
#include "core/engine.h"
#include "core/piecewise.h"
#include "core/query.h"
#include "core/sharded_engine.h"
#include "core/simulation.h"
#include "core/skyband.h"
#include "core/skyline_monitor.h"
#include "core/sma_engine.h"
#include "core/threshold_monitor.h"
#include "core/tma_engine.h"
#include "core/topk_compute.h"
#include "core/update_stream_engine.h"
#include "stream/generators.h"
#include "stream/record_pool.h"
#include "stream/sliding_window.h"
#include "stream/update_stream.h"
#include "tsl/tsl_engine.h"

#endif  // TOPKMON_TOPKMON_H_
