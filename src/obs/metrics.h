// MetricsRegistry — the admin plane's metric store (src/obs/).
//
// One registry per node (MonitorService owns it) holds two kinds of
// instruments:
//
//   * Owned hot-path instruments: MetricCounter / MetricGauge (one
//     relaxed atomic each) and LatencyHistogram (fixed power-of-two
//     microsecond buckets, one relaxed fetch_add per Record) — cheap
//     enough to live on the ingest/publish/fsync paths. Register once,
//     keep the returned pointer, never unregister (instrument lifetime
//     == registry lifetime, which is the service's lifetime).
//
//   * Samplers: callbacks invoked only at Snapshot() (i.e. scrape) time
//     that bridge the existing per-component stats structs
//     (ServiceStats, NetServerStats, FailoverStats, ...) into metric
//     samples without adding any hot-path cost. Samplers are removable
//     (AddSampler returns an id) because their owners — TcpServer,
//     FailoverAgent, ReplicaFollower — can stop before the service
//     does; RemoveSampler blocks until any in-flight Snapshot() is done
//     with the callback, so removal makes the captured object safe to
//     destroy.
//
// Snapshot() renders to both wire shapes the admin endpoints serve:
// Prometheus text exposition (/metrics) and structured JSON (/statusz
// embeds it). Metric names follow Prometheus conventions: `_total`
// suffix on counters, `_seconds` on latency histograms (bucket bounds
// are converted from microseconds), labels for per-instance series
// (e.g. {loop="2"}). docs/ADMIN.md catalogs every name; CI
// (tools/check_metrics.py) keeps the catalog equal to what a live
// service actually registers.

#ifndef TOPKMON_OBS_METRICS_H_
#define TOPKMON_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace topkmon {

/// Label set of one metric series, in render order.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Monotone counter; one relaxed atomic, safe from any thread.
class MetricCounter {
 public:
  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time signed value; one relaxed atomic, safe from any thread.
class MetricGauge {
 public:
  void Set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket latency histogram with power-of-two microsecond bounds:
/// bucket i counts samples <= 2^i microseconds (i in [0, 26], so the
/// finite range spans 1us .. ~67s), plus one +Inf bucket. Record() is a
/// single relaxed fetch_add — no locks, no allocation — so it sits on
/// the cycle-publish / delta-delivery / fsync hot paths.
class LatencyHistogram {
 public:
  static constexpr int kFiniteBuckets = 27;

  /// Upper bound of finite bucket i, in microseconds (1 << i).
  static std::uint64_t BucketBoundMicros(int i) {
    return std::uint64_t{1} << i;
  }

  void RecordMicros(std::uint64_t micros) {
    int bucket = kFiniteBuckets;  // +Inf unless a finite bound covers it
    for (int i = 0; i < kFiniteBuckets; ++i) {
      if (micros <= BucketBoundMicros(i)) {
        bucket = i;
        break;
      }
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    sum_micros_.fetch_add(micros, std::memory_order_relaxed);
  }

  void Record(std::chrono::nanoseconds elapsed) {
    if (elapsed.count() < 0) elapsed = std::chrono::nanoseconds::zero();
    RecordMicros(static_cast<std::uint64_t>(elapsed.count()) / 1000u);
  }

  /// Per-bucket (NON-cumulative) count; i == kFiniteBuckets is +Inf.
  std::uint64_t BucketCount(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t Count() const {
    std::uint64_t total = 0;
    for (int i = 0; i <= kFiniteBuckets; ++i) total += BucketCount(i);
    return total;
  }
  std::uint64_t SumMicros() const {
    return sum_micros_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kFiniteBuckets + 1] = {};
  std::atomic<std::uint64_t> sum_micros_{0};
};

enum class MetricKind : std::uint8_t {
  kCounter = 0,
  kGauge = 1,
  kHistogram = 2,
};

const char* MetricKindName(MetricKind kind);

/// One rendered series at snapshot time.
struct MetricSample {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  MetricLabels labels;
  /// Counter / gauge value.
  double value = 0.0;
  /// Histogram: cumulative counts per finite bucket (index i counts
  /// samples <= BucketBoundMicros(i)); count is the +Inf total.
  std::vector<std::uint64_t> cumulative_buckets;
  std::uint64_t count = 0;
  double sum_seconds = 0.0;
};

/// What a sampler callback writes into: bridged samples appended after
/// the registry's owned instruments.
class MetricSink {
 public:
  void AddCounter(const std::string& name, const std::string& help,
                  double value, MetricLabels labels = {});
  void AddGauge(const std::string& name, const std::string& help,
                double value, MetricLabels labels = {});

 private:
  friend class MetricsRegistry;
  std::vector<MetricSample> samples_;
};

/// Scrape-time snapshot with both admin-plane renderings.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  /// Prometheus text exposition format (one # HELP / # TYPE block per
  /// metric name, samples grouped under it; histogram buckets are
  /// cumulative with `le` in seconds).
  std::string ToPrometheus() const;

  /// {"metrics": [...]} — the same samples as structured JSON.
  std::string ToJson() const;
};

/// Thread-safe instrument registry + scrape entry point.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Instrument registration. The returned pointer is owned by the
  /// registry and stays valid for its whole lifetime. Name + label-set
  /// pairs should be unique (the parser round-trip test enforces it).
  MetricCounter* RegisterCounter(std::string name, std::string help,
                                 MetricLabels labels = {});
  MetricGauge* RegisterGauge(std::string name, std::string help,
                             MetricLabels labels = {});
  LatencyHistogram* RegisterHistogram(std::string name, std::string help,
                                      MetricLabels labels = {});

  /// Bridging: `sampler` runs inside every Snapshot() call. Returns an
  /// id for RemoveSampler, which blocks until no snapshot is mid-call —
  /// after it returns, whatever the callback captured may be destroyed.
  std::uint64_t AddSampler(std::function<void(MetricSink&)> sampler);
  void RemoveSampler(std::uint64_t id);

  MetricsSnapshot Snapshot() const;

 private:
  struct Instrument {
    std::string name;
    std::string help;
    MetricKind kind;
    MetricLabels labels;
    // Exactly one of these is set, matching `kind`.
    std::unique_ptr<MetricCounter> counter;
    std::unique_ptr<MetricGauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };

  mutable std::mutex mu_;
  /// deque: instrument addresses must survive later registrations.
  std::deque<Instrument> instruments_;
  std::vector<std::pair<std::uint64_t, std::function<void(MetricSink&)>>>
      samplers_;
  std::uint64_t next_sampler_id_ = 1;
};

/// Minimal JSON string escaping (quotes, backslash, control bytes) for
/// the admin plane's hand-rendered documents.
std::string JsonEscape(const std::string& text);

}  // namespace topkmon

#endif  // TOPKMON_OBS_METRICS_H_
