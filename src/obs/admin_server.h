// AdminHttpServer — the read-only introspection endpoint (src/obs/).
//
// A deliberately minimal HTTP/1.0 server so that curl, a browser or a
// Prometheus scraper can inspect a running node with no topkmon client
// library: one dedicated thread runs a single poll(2) set holding the
// listener plus every admin connection. That is the right shape for an
// admin plane — scrape traffic is a handful of requests per second, and
// one thread keeps the server completely outside the data path (it
// shares no locks with the poll loops or the cycle driver; handlers
// read the service through its ordinary thread-safe accessors).
//
// The protocol subset: requests are `GET <path> HTTP/1.x`; headers are
// read and discarded; every response carries Content-Length and
// `Connection: close` and the connection closes after the reply
// (HTTP/1.0 semantics — keep-alive is complexity the admin plane does
// not need). Paths are matched exactly after stripping any query
// string; handlers are registered before Start() and run on the admin
// thread.
//
// Hardening mirrors the data-plane server's stance — nothing a peer
// does costs more than its own connection (tests/obs/admin_http_test.cc
// pins each case, the way server_torture_test pins the binary server):
//   * a garbage request line draws 400 and the connection closes;
//   * a request growing past max_request_bytes draws 431 and closes —
//     oversized headers cannot balloon server memory;
//   * a slow-loris peer that never finishes its request line is reaped
//     by idle_timeout;
//   * an abrupt disconnect at any point just closes that connection;
//   * connections beyond max_connections are accepted and immediately
//     closed (the listener backlog can never fill with zombies).

#ifndef TOPKMON_OBS_ADMIN_SERVER_H_
#define TOPKMON_OBS_ADMIN_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <list>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/status.h"

namespace topkmon {

/// Admin-plane configuration (part of ServiceOptions).
struct AdminServerOptions {
  /// The admin plane is opt-in: nothing binds unless enabled.
  bool enabled = false;
  /// IPv4 address to bind; the default serves loopback only. The admin
  /// plane is unauthenticated read-only introspection — expose it
  /// beyond loopback deliberately, not by default.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read back with port()).
  std::uint16_t port = 0;
  int listen_backlog = 16;
  /// Connections beyond this are accepted and immediately closed.
  std::size_t max_connections = 64;
  /// Requests larger than this (request line + headers) draw 431.
  std::size_t max_request_bytes = 8u << 10;
  /// Connections idle this long mid-request are reaped (slow-loris).
  std::chrono::milliseconds idle_timeout{5000};
  /// Poll granularity; bounds Stop() latency and timeout precision.
  std::chrono::milliseconds poll_tick{50};
};

/// What a handler returns; rendered as one HTTP/1.0 response.
struct AdminResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Read-only HTTP/1.0 introspection server (one thread, one poll set).
class AdminHttpServer {
 public:
  using Handler = std::function<AdminResponse()>;

  explicit AdminHttpServer(const AdminServerOptions& options);
  ~AdminHttpServer();

  AdminHttpServer(const AdminHttpServer&) = delete;
  AdminHttpServer& operator=(const AdminHttpServer&) = delete;

  /// Registers the handler serving exactly `path` (e.g. "/metrics").
  /// Call before Start(); later registrations race the serving thread.
  void Handle(std::string path, Handler handler);

  /// Binds, listens and starts the serving thread. InvalidArgument for
  /// a bad bind address; FailedPrecondition if already started or the
  /// port is taken.
  Status Start();

  /// Closes the listener and every connection, then joins the thread.
  /// Idempotent.
  void Stop();

  /// The bound TCP port (after a successful Start).
  std::uint16_t port() const { return port_; }

 private:
  struct Connection {
    int fd = -1;
    std::string in;   ///< request bytes, not yet terminated
    std::string out;  ///< response bytes, not yet sent
    bool responding = false;  ///< request answered; flush out, then close
    std::chrono::steady_clock::time_point last_activity{};
  };

  void Loop();
  /// Accepts whatever is pending on the listener.
  void AcceptReady();
  /// Reads request bytes; answers once the header terminator arrives.
  /// Returns false when the connection should close now.
  bool ReadReady(Connection& conn);
  /// Parses the buffered request and queues the response.
  void AnswerRequest(Connection& conn);
  void QueueResponse(Connection& conn, const AdminResponse& response);
  /// Flushes conn.out; false when the peer is gone.
  bool WriteReady(Connection& conn);

  const AdminServerOptions options_;
  std::unordered_map<std::string, Handler> handlers_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::list<Connection> connections_;
  std::thread thread_;
};

}  // namespace topkmon

#endif  // TOPKMON_OBS_ADMIN_SERVER_H_
