#include "obs/metrics.h"

#include <cstdio>

namespace topkmon {
namespace {

/// Shortest round-trippable rendering ("%.17g" is exact but ugly; "%g"
/// is what Prometheus client libraries emit for bucket bounds).
std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

std::string LabelBlock(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ",";
    out += labels[i].first;
    out += "=\"";
    out += labels[i].second;
    out += "\"";
  }
  out += "}";
  return out;
}

/// Label block with `le` appended (histogram bucket series).
std::string LabelBlockWithLe(const MetricLabels& labels,
                             const std::string& le) {
  std::string out = "{";
  for (const auto& label : labels) {
    out += label.first;
    out += "=\"";
    out += label.second;
    out += "\",";
  }
  out += "le=\"" + le + "\"}";
  return out;
}

}  // namespace

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

void MetricSink::AddCounter(const std::string& name, const std::string& help,
                            double value, MetricLabels labels) {
  MetricSample sample;
  sample.name = name;
  sample.help = help;
  sample.kind = MetricKind::kCounter;
  sample.labels = std::move(labels);
  sample.value = value;
  samples_.push_back(std::move(sample));
}

void MetricSink::AddGauge(const std::string& name, const std::string& help,
                          double value, MetricLabels labels) {
  MetricSample sample;
  sample.name = name;
  sample.help = help;
  sample.kind = MetricKind::kGauge;
  sample.labels = std::move(labels);
  sample.value = value;
  samples_.push_back(std::move(sample));
}

MetricCounter* MetricsRegistry::RegisterCounter(std::string name,
                                                std::string help,
                                                MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  instruments_.push_back(Instrument{std::move(name), std::move(help),
                                    MetricKind::kCounter, std::move(labels),
                                    std::make_unique<MetricCounter>(), nullptr,
                                    nullptr});
  return instruments_.back().counter.get();
}

MetricGauge* MetricsRegistry::RegisterGauge(std::string name,
                                            std::string help,
                                            MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  instruments_.push_back(Instrument{std::move(name), std::move(help),
                                    MetricKind::kGauge, std::move(labels),
                                    nullptr, std::make_unique<MetricGauge>(),
                                    nullptr});
  return instruments_.back().gauge.get();
}

LatencyHistogram* MetricsRegistry::RegisterHistogram(std::string name,
                                                     std::string help,
                                                     MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  instruments_.push_back(Instrument{std::move(name), std::move(help),
                                    MetricKind::kHistogram, std::move(labels),
                                    nullptr, nullptr,
                                    std::make_unique<LatencyHistogram>()});
  return instruments_.back().histogram.get();
}

std::uint64_t MetricsRegistry::AddSampler(
    std::function<void(MetricSink&)> sampler) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_sampler_id_++;
  samplers_.emplace_back(id, std::move(sampler));
  return id;
}

void MetricsRegistry::RemoveSampler(std::uint64_t id) {
  // mu_ is held across sampler invocation in Snapshot(), so acquiring
  // it here is the barrier that makes removal safe: once we hold the
  // lock no snapshot is mid-call into the sampler being removed.
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = samplers_.begin(); it != samplers_.end(); ++it) {
    if (it->first == id) {
      samplers_.erase(it);
      return;
    }
  }
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& instrument : instruments_) {
    MetricSample sample;
    sample.name = instrument.name;
    sample.help = instrument.help;
    sample.kind = instrument.kind;
    sample.labels = instrument.labels;
    switch (instrument.kind) {
      case MetricKind::kCounter:
        sample.value = static_cast<double>(instrument.counter->Value());
        break;
      case MetricKind::kGauge:
        sample.value = static_cast<double>(instrument.gauge->Value());
        break;
      case MetricKind::kHistogram: {
        const LatencyHistogram& h = *instrument.histogram;
        std::uint64_t running = 0;
        sample.cumulative_buckets.reserve(LatencyHistogram::kFiniteBuckets);
        for (int i = 0; i < LatencyHistogram::kFiniteBuckets; ++i) {
          running += h.BucketCount(i);
          sample.cumulative_buckets.push_back(running);
        }
        sample.count = running + h.BucketCount(LatencyHistogram::kFiniteBuckets);
        sample.sum_seconds = static_cast<double>(h.SumMicros()) * 1e-6;
        break;
      }
    }
    snapshot.samples.push_back(std::move(sample));
  }
  MetricSink sink;
  for (const auto& sampler : samplers_) sampler.second(sink);
  for (auto& sample : sink.samples_) {
    snapshot.samples.push_back(std::move(sample));
  }
  return snapshot;
}

std::string MetricsSnapshot::ToPrometheus() const {
  // Group samples of the same metric name under one HELP/TYPE block
  // (required by the exposition format when labeled series share a
  // name), preserving first-appearance order.
  std::vector<std::string> order;
  for (const auto& sample : samples) {
    bool seen = false;
    for (const auto& name : order) {
      if (name == sample.name) {
        seen = true;
        break;
      }
    }
    if (!seen) order.push_back(sample.name);
  }

  std::string out;
  for (const auto& name : order) {
    bool block_started = false;
    for (const auto& sample : samples) {
      if (sample.name != name) continue;
      if (!block_started) {
        out += "# HELP " + name + " " + sample.help + "\n";
        out += "# TYPE " + name + " ";
        out += MetricKindName(sample.kind);
        out += "\n";
        block_started = true;
      }
      if (sample.kind == MetricKind::kHistogram) {
        for (int i = 0; i < LatencyHistogram::kFiniteBuckets; ++i) {
          const double le_seconds =
              static_cast<double>(LatencyHistogram::BucketBoundMicros(i)) *
              1e-6;
          out += name + "_bucket" +
                 LabelBlockWithLe(sample.labels, FormatDouble(le_seconds)) +
                 " " + std::to_string(sample.cumulative_buckets[i]) + "\n";
        }
        out += name + "_bucket" + LabelBlockWithLe(sample.labels, "+Inf") +
               " " + std::to_string(sample.count) + "\n";
        out += name + "_sum" + LabelBlock(sample.labels) + " " +
               FormatDouble(sample.sum_seconds) + "\n";
        out += name + "_count" + LabelBlock(sample.labels) + " " +
               std::to_string(sample.count) + "\n";
      } else {
        out += name + LabelBlock(sample.labels) + " " +
               FormatDouble(sample.value) + "\n";
      }
    }
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"metrics\":[";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const MetricSample& sample = samples[i];
    if (i) out += ",";
    out += "{\"name\":\"" + JsonEscape(sample.name) + "\",\"kind\":\"";
    out += MetricKindName(sample.kind);
    out += "\",\"labels\":{";
    for (std::size_t j = 0; j < sample.labels.size(); ++j) {
      if (j) out += ",";
      out += "\"" + JsonEscape(sample.labels[j].first) + "\":\"" +
             JsonEscape(sample.labels[j].second) + "\"";
    }
    out += "}";
    if (sample.kind == MetricKind::kHistogram) {
      out += ",\"count\":" + std::to_string(sample.count);
      out += ",\"sum_seconds\":" + FormatDouble(sample.sum_seconds);
      out += ",\"buckets\":[";
      for (int b = 0; b < LatencyHistogram::kFiniteBuckets; ++b) {
        if (b) out += ",";
        const double le_seconds =
            static_cast<double>(LatencyHistogram::BucketBoundMicros(b)) * 1e-6;
        out += "{\"le\":" + FormatDouble(le_seconds) +
               ",\"count\":" + std::to_string(sample.cumulative_buckets[b]) +
               "}";
      }
      out += "]";
    } else {
      out += ",\"value\":" + FormatDouble(sample.value);
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace topkmon
