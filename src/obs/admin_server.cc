#include "obs/admin_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <vector>

namespace topkmon {
namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(F_SETFL)");
  }
  return Status::Ok();
}

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 431:
      return "Request Header Fields Too Large";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

}  // namespace

AdminHttpServer::AdminHttpServer(const AdminServerOptions& options)
    : options_(options) {}

AdminHttpServer::~AdminHttpServer() { Stop(); }

void AdminHttpServer::Handle(std::string path, Handler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

Status AdminHttpServer::Start() {
  if (started_) return Status::FailedPrecondition("admin server started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad admin bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status = Errno("bind");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::FailedPrecondition(status.message());
  }
  if (::listen(listen_fd_, options_.listen_backlog) < 0) {
    const Status status = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) < 0) {
    const Status status = Errno("getsockname");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = ntohs(bound.sin_port);
  const Status nb = SetNonBlocking(listen_fd_);
  if (!nb.ok()) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return nb;
  }

  stop_.store(false, std::memory_order_release);
  started_ = true;
  thread_ = std::thread([this] { Loop(); });
  return Status::Ok();
}

void AdminHttpServer::Stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (Connection& conn : connections_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  connections_.clear();
  started_ = false;
}

void AdminHttpServer::Loop() {
  std::vector<pollfd> fds;
  while (!stop_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (const Connection& conn : connections_) {
      short events = POLLIN;
      if (!conn.out.empty()) events |= POLLOUT;
      fds.push_back(pollfd{conn.fd, events, 0});
    }

    const int timeout_ms =
        static_cast<int>(options_.poll_tick.count() > 0
                             ? options_.poll_tick.count()
                             : 1);
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (stop_.load(std::memory_order_acquire)) break;
    if (ready < 0 && errno != EINTR) break;

    if (fds[0].revents & POLLIN) AcceptReady();

    const auto now = std::chrono::steady_clock::now();
    std::size_t i = 1;
    for (auto it = connections_.begin(); it != connections_.end(); ++i) {
      Connection& conn = *it;
      bool alive = true;
      const short revents = i < fds.size() ? fds[i].revents : 0;
      if (revents & (POLLERR | POLLNVAL)) alive = false;
      if (alive && (revents & (POLLIN | POLLHUP))) alive = ReadReady(conn);
      if (alive && !conn.out.empty() && (revents & POLLOUT)) {
        alive = WriteReady(conn);
      }
      // A fully flushed response is the end of the HTTP/1.0 exchange.
      if (alive && conn.responding && conn.out.empty()) alive = false;
      // Slow-loris / abandoned sockets: reap when idle mid-request.
      if (alive && options_.idle_timeout.count() > 0 &&
          now - conn.last_activity > options_.idle_timeout) {
        alive = false;
      }
      if (alive) {
        ++it;
      } else {
        ::close(conn.fd);
        it = connections_.erase(it);
      }
    }
  }
}

void AdminHttpServer::AcceptReady() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: nothing pending
    if (connections_.size() >= options_.max_connections ||
        !SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    Connection conn;
    conn.fd = fd;
    conn.last_activity = std::chrono::steady_clock::now();
    connections_.push_back(std::move(conn));
  }
}

bool AdminHttpServer::ReadReady(Connection& conn) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.last_activity = std::chrono::steady_clock::now();
      if (conn.responding) continue;  // pipelined extra bytes: ignore
      conn.in.append(buf, static_cast<std::size_t>(n));
      if (conn.in.find("\r\n\r\n") != std::string::npos ||
          conn.in.find("\n\n") != std::string::npos) {
        AnswerRequest(conn);
      } else if (conn.in.size() > options_.max_request_bytes) {
        AdminResponse response;
        response.status = 431;
        response.body = "request too large\n";
        QueueResponse(conn, response);
      }
      continue;
    }
    if (n == 0) {
      // Peer half-closed. If a response is queued let it flush; an
      // abrupt disconnect mid-request just ends the connection.
      return conn.responding && !conn.out.empty();
    }
    return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
  }
}

void AdminHttpServer::AnswerRequest(Connection& conn) {
  const std::size_t line_end = conn.in.find('\n');
  std::string line =
      line_end == std::string::npos ? conn.in : conn.in.substr(0, line_end);
  if (!line.empty() && line.back() == '\r') line.pop_back();

  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  AdminResponse response;
  if (sp1 == std::string::npos || sp1 == 0) {
    response.status = 400;
    response.body = "malformed request line\n";
    QueueResponse(conn, response);
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string target = sp2 == std::string::npos
                           ? line.substr(sp1 + 1)
                           : line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t query = target.find('?');
  if (query != std::string::npos) target.resize(query);

  if (method != "GET") {
    response.status = 405;
    response.body = "read-only admin plane: GET only\n";
    QueueResponse(conn, response);
    return;
  }
  if (target.empty() || target[0] != '/') {
    response.status = 400;
    response.body = "malformed request target\n";
    QueueResponse(conn, response);
    return;
  }

  const auto it = handlers_.find(target);
  if (it == handlers_.end()) {
    response.status = 404;
    response.body = "unknown path; try /metrics /statusz /healthz\n";
    QueueResponse(conn, response);
    return;
  }
  QueueResponse(conn, it->second());
}

void AdminHttpServer::QueueResponse(Connection& conn,
                                    const AdminResponse& response) {
  conn.responding = true;
  conn.in.clear();
  conn.out = "HTTP/1.0 " + std::to_string(response.status) + " " +
             StatusText(response.status) +
             "\r\nContent-Type: " + response.content_type +
             "\r\nContent-Length: " + std::to_string(response.body.size()) +
             "\r\nConnection: close\r\n\r\n" +
             response.body;
  // Opportunistic flush: most responses fit the socket buffer, so the
  // common scrape completes without waiting for the next poll tick.
  WriteReady(conn);
}

bool AdminHttpServer::WriteReady(Connection& conn) {
  while (!conn.out.empty()) {
    const ssize_t n =
        ::send(conn.fd, conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.out.erase(0, static_cast<std::size_t>(n));
      conn.last_activity = std::chrono::steady_clock::now();
      continue;
    }
    return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
  }
  return true;
}

}  // namespace topkmon
