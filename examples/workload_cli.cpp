// workload_cli — run any engine on any workload from the command line.
//
//   workload_cli --engine=sma --dist=ant --dim=4 --n=100000 --r=1000 \
//                --q=100 --k=20 --cycles=50 --family=linear [--csv]
//
// Prints the simulation report (timings, counters, memory breakdown) and,
// with --compare, runs TMA, SMA, TSL and the brute-force oracle on the
// identical stream and prints a comparison table. With --csv the report
// is emitted as a single CSV row for scripting.

#include <cstdio>
#include <iostream>

#include "core/brute_force_engine.h"
#include "core/simulation.h"
#include "core/sma_engine.h"
#include "core/tma_engine.h"
#include "tsl/tsl_engine.h"
#include "util/flags.h"
#include "util/table_printer.h"

using namespace topkmon;

namespace {

constexpr const char* kUsage = R"(usage: workload_cli [flags]
  --engine=tma|sma|tsl|brute   engine to run (default sma)
  --compare                    run all four engines and compare
  --dist=ind|ant|clu           data distribution (default ind)
  --family=linear|product|squares   scoring functions (default linear)
  --window=count|time          window kind (default count)
  --dim=D                      dimensionality 1..8 (default 4)
  --n=N                        window size in tuples (default 100000)
  --r=R                        arrivals per timestamp (default 1000)
  --q=Q                        number of continuous queries (default 100)
  --k=K                        result size (default 20)
  --cycles=C                   measured timestamps (default 50)
  --seed=S                     RNG seed (default 42)
  --csv                        emit one CSV row instead of a report
)";

std::unique_ptr<MonitorEngine> MakeEngineByName(const std::string& name,
                                                const WorkloadSpec& spec) {
  if (name == "tma") {
    GridEngineOptions opt;
    opt.dim = spec.dim;
    opt.window = spec.MakeWindowSpec();
    return std::make_unique<TmaEngine>(opt);
  }
  if (name == "sma") {
    GridEngineOptions opt;
    opt.dim = spec.dim;
    opt.window = spec.MakeWindowSpec();
    return std::make_unique<SmaEngine>(opt);
  }
  if (name == "tsl") {
    TslOptions opt;
    opt.dim = spec.dim;
    opt.window = spec.MakeWindowSpec();
    return std::make_unique<TslEngine>(opt);
  }
  if (name == "brute") {
    return std::make_unique<BruteForceEngine>(spec.dim,
                                              spec.MakeWindowSpec());
  }
  return nullptr;
}

void PrintReport(const SimulationReport& report, const WorkloadSpec& spec,
                 bool csv) {
  if (csv) {
    std::printf(
        "engine,dim,dist,N,r,Q,k,cycles,warmup_s,register_s,monitor_s,"
        "recomputes,result_changes,memory_mib\n");
    std::printf("%s,%d,%s,%zu,%zu,%zu,%d,%d,%.6f,%.6f,%.6f,%llu,%llu,%.3f\n",
                report.engine.c_str(), spec.dim,
                DistributionName(spec.distribution), spec.window_size,
                spec.arrivals_per_cycle, spec.num_queries, spec.k,
                spec.num_cycles, report.warmup_seconds,
                report.register_seconds, report.monitor_seconds,
                static_cast<unsigned long long>(report.stats.recomputations),
                static_cast<unsigned long long>(
                    report.stats.result_changes),
                report.memory.TotalMiB());
    return;
  }
  std::printf("engine:    %s\n", report.engine.c_str());
  std::printf("warmup:    %.4f s (window fill, unmeasured in the paper)\n",
              report.warmup_seconds);
  std::printf("register:  %.4f s (%zu initial top-k computations)\n",
              report.register_seconds, spec.num_queries);
  std::printf("monitor:   %.4f s over %d cycles (%.1f us/cycle/query)\n",
              report.monitor_seconds, spec.num_cycles,
              1e6 * report.monitor_seconds /
                  static_cast<double>(spec.num_cycles) /
                  static_cast<double>(spec.num_queries));
  std::printf("cycle lat: mean=%.3f ms  max=%.3f ms (worst client stall)\n",
              1e3 * report.cycle_seconds.mean(),
              1e3 * report.cycle_seconds.max());
  std::printf("counters:  %s\n", report.stats.ToString().c_str());
  std::printf("memory:    %s\n", report.memory.ToString().c_str());
}

int Run(const Flags& flags) {
  WorkloadSpec spec;
  const auto engine_name = flags.GetString("engine", "sma");
  const auto dist = flags.GetString("dist", "ind");
  const auto family = flags.GetString("family", "linear");
  const auto window = flags.GetString("window", "count");
  const auto dim = flags.GetInt("dim", 4);
  const auto n = flags.GetInt("n", 100000);
  const auto r = flags.GetInt("r", 1000);
  const auto q = flags.GetInt("q", 100);
  const auto k = flags.GetInt("k", 20);
  const auto cycles = flags.GetInt("cycles", 50);
  const auto seed = flags.GetInt("seed", 42);
  const auto csv = flags.GetBool("csv", false);
  const auto compare = flags.GetBool("compare", false);
  for (const Status& st :
       {engine_name.ok() ? Status::Ok() : engine_name.status(),
        dist.ok() ? Status::Ok() : dist.status(),
        family.ok() ? Status::Ok() : family.status(),
        window.ok() ? Status::Ok() : window.status()}) {
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n%s", st.ToString().c_str(), kUsage);
      return 2;
    }
  }
  const Result<Distribution> parsed_dist = ParseDistribution(*dist);
  const Result<FunctionFamily> parsed_family = ParseFunctionFamily(*family);
  if (!parsed_dist.ok() || !parsed_family.ok() ||
      (*window != "count" && *window != "time")) {
    std::fprintf(stderr, "bad --dist/--family/--window value\n%s", kUsage);
    return 2;
  }
  spec.dim = static_cast<int>(*dim);
  spec.distribution = *parsed_dist;
  spec.family = *parsed_family;
  spec.window_kind =
      *window == "count" ? WindowKind::kCountBased : WindowKind::kTimeBased;
  spec.window_size = static_cast<std::size_t>(*n);
  spec.arrivals_per_cycle = static_cast<std::size_t>(*r);
  spec.num_queries = static_cast<std::size_t>(*q);
  spec.k = static_cast<int>(*k);
  spec.num_cycles = static_cast<int>(*cycles);
  spec.seed = static_cast<std::uint64_t>(*seed);

  for (const std::string& name : flags.UnreadFlags()) {
    std::fprintf(stderr, "warning: unknown flag --%s ignored\n",
                 name.c_str());
  }

  if (*compare) {
    TablePrinter table({"engine", "monitor [s]", "recomputes",
                        "result changes", "memory [MiB]"});
    for (const char* name : {"brute", "tsl", "tma", "sma"}) {
      auto engine = MakeEngineByName(name, spec);
      const Result<SimulationReport> report = RunWorkload(*engine, spec);
      if (!report.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", name,
                     report.status().ToString().c_str());
        return 1;
      }
      table.AddRow({report->engine,
                    TablePrinter::Num(report->monitor_seconds, 4),
                    TablePrinter::Int(static_cast<std::int64_t>(
                        report->stats.recomputations)),
                    TablePrinter::Int(static_cast<std::int64_t>(
                        report->stats.result_changes)),
                    TablePrinter::Num(report->memory.TotalMiB(), 4)});
    }
    table.Print(std::cout);
    return 0;
  }

  auto engine = MakeEngineByName(*engine_name, spec);
  if (engine == nullptr) {
    std::fprintf(stderr, "unknown engine '%s'\n%s", engine_name->c_str(),
                 kUsage);
    return 2;
  }
  const Result<SimulationReport> report = RunWorkload(*engine, spec);
  if (!report.ok()) {
    std::fprintf(stderr, "workload failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  PrintReport(*report, spec, *csv);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Result<Flags> flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n%s", flags.status().ToString().c_str(),
                 kUsage);
    return 2;
  }
  return Run(*flags);
}
