// Constrained top-k and threshold monitoring dashboard (Section 7).
//
// A sensor fleet streams readings with attributes (x1 = temperature,
// x2 = vibration), normalized to [0,1]. The dashboard runs:
//   * a constrained top-5 "hot in safe band" query — the hottest sensors
//     among those whose vibration stays inside an operating band
//     (constrained top-k, Figure 12);
//   * a threshold query — every reading whose combined stress score
//     exceeds a fixed alarm level (threshold monitoring);
//   * an unconstrained top-5 for comparison.

#include <cstdio>

#include "core/threshold_monitor.h"
#include "core/tma_engine.h"
#include "util/rng.h"

using namespace topkmon;

int main() {
  const int dim = 2;
  const WindowSpec window = WindowSpec::Count(20000);

  TmaEngine topk_engine({dim, window});
  ThresholdMonitor threshold_monitor(dim, window);

  // Unconstrained: hottest overall (temperature-dominated score).
  QuerySpec hottest;
  hottest.id = 1;
  hottest.k = 5;
  hottest.function = std::make_shared<LinearFunction>(
      std::vector<double>{1.0, 0.1});
  // Constrained: hottest among sensors with vibration in [0.2, 0.6].
  QuerySpec safe_band = hottest;
  safe_band.id = 2;
  safe_band.constraint = Rect(Point{0.0, 0.2}, Point{1.0, 0.6});
  for (const QuerySpec* q : {&hottest, &safe_band}) {
    if (Status st = topk_engine.RegisterQuery(*q); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  // Threshold: stress = 0.6*temp + 0.8*vibration above 1.25 alarms.
  ThresholdQuerySpec alarm;
  alarm.id = 1;
  alarm.threshold = 1.25;
  alarm.function = std::make_shared<LinearFunction>(
      std::vector<double>{0.6, 0.8});
  if (Status st = threshold_monitor.RegisterQuery(alarm); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  Rng rng(99);
  RecordId next_id = 0;
  for (Timestamp minute = 1; minute <= 30; ++minute) {
    // A heat wave passes through mid-run, pushing temperatures up.
    const double heat =
        minute >= 12 && minute <= 20 ? 0.25 : 0.0;
    std::vector<Record> batch;
    for (int i = 0; i < 1000; ++i) {
      Point x(dim);
      x[0] = std::clamp(rng.Gaussian(0.45 + heat, 0.18), 0.0, 1.0);
      x[1] = std::clamp(rng.Gaussian(0.4, 0.2), 0.0, 1.0);
      batch.emplace_back(next_id++, x, minute);
    }
    if (Status st = topk_engine.ProcessCycle(minute, batch); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    if (Status st = threshold_monitor.ProcessCycle(minute, batch);
        !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }

    const auto overall = topk_engine.CurrentResult(hottest.id);
    const auto banded = topk_engine.CurrentResult(safe_band.id);
    const auto alarms = threshold_monitor.CurrentResult(alarm.id);
    std::printf(
        "min %2lld%s  hottest#1=%.3f  safe-band#1=%.3f  alarms=%zu\n",
        static_cast<long long>(minute), heat > 0 ? "*" : " ",
        overall->empty() ? 0.0 : (*overall)[0].score,
        banded->empty() ? 0.0 : (*banded)[0].score, alarms->size());
  }
  std::printf("\n(* = heat wave active)\n");
  std::printf("top-k engine:      %s\n",
              topk_engine.stats().ToString().c_str());
  std::printf("threshold monitor: %s\n",
              threshold_monitor.stats().ToString().c_str());
  return 0;
}
