// Stock-ticker leaderboard — "stock market trading" from the paper's
// application list (Section 1), exercising time-based windows, multiple
// preference functions and query churn.
//
// Trades stream in with attributes (normalized to [0,1]):
//   x1 = trade volume, x2 = price momentum, x3 = volatility.
// Three leaderboards run concurrently over the last 30 seconds:
//   * "whales"    — top-5 by volume;
//   * "momentum"  — top-5 by momentum-weighted volume (product function);
//   * "quiet"     — top-5 large-volume LOW-volatility trades (mixed
//     monotonicity: volatility enters with a negative weight).
// Midway, a trader retires the momentum board and registers a
// sum-of-squares "breakout" board instead, demonstrating query churn.

#include <cstdio>
#include <string>
#include <vector>

#include "core/tma_engine.h"
#include "util/rng.h"

using namespace topkmon;

namespace {

const char* kSymbols[] = {"AAA", "BBB", "CCC", "DDD", "EEE",
                          "FFF", "GGG", "HHH"};

struct Trade {
  Record record;
  std::string symbol;
};

struct TradeFeed {
  Rng rng{7};
  RecordId next_id = 0;

  Trade Next(Timestamp now) {
    Trade t;
    const std::size_t sym = rng.UniformInt(std::size(kSymbols));
    // Symbols have different volume/volatility profiles.
    const double vol_center = 0.2 + 0.08 * static_cast<double>(sym);
    Point x(3);
    x[0] = std::clamp(rng.Gaussian(vol_center, 0.2), 0.0, 1.0);
    x[1] = std::clamp(rng.Gaussian(0.5, 0.22), 0.0, 1.0);
    x[2] = std::clamp(rng.Gaussian(0.3 + 0.05 * static_cast<double>(sym),
                                   0.18),
                      0.0, 1.0);
    t.record = Record(next_id++, x, now);
    t.symbol = kSymbols[sym];
    return t;
  }
};

void PrintBoard(const char* name, const TmaEngine& engine, QueryId id,
                const std::vector<std::string>& symbols) {
  const auto result = engine.CurrentResult(id);
  if (!result.ok()) return;
  std::printf("  %-9s:", name);
  for (const ResultEntry& e : *result) {
    std::printf(" %s(%.3f)", symbols[static_cast<std::size_t>(e.id)].c_str(),
                e.score);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  GridEngineOptions options;
  options.dim = 3;
  options.window = WindowSpec::Time(30);  // last 30 seconds
  TmaEngine engine(options);

  QuerySpec whales;
  whales.id = 1;
  whales.k = 5;
  whales.function = std::make_shared<LinearFunction>(
      std::vector<double>{1.0, 0.0, 0.0});
  QuerySpec momentum;
  momentum.id = 2;
  momentum.k = 5;
  momentum.function = std::make_shared<ProductFunction>(
      std::vector<double>{0.2, 0.05, 1.0});
  QuerySpec quiet;
  quiet.id = 3;
  quiet.k = 5;
  quiet.function = std::make_shared<LinearFunction>(
      std::vector<double>{1.0, 0.0, -0.8});
  for (const QuerySpec* q : {&whales, &momentum, &quiet}) {
    if (Status st = engine.RegisterQuery(*q); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }

  TradeFeed feed;
  std::vector<std::string> symbols;  // record id -> symbol
  for (Timestamp second = 1; second <= 60; ++second) {
    std::vector<Record> batch;
    for (int i = 0; i < 400; ++i) {
      Trade t = feed.Next(second);
      symbols.push_back(t.symbol);
      batch.push_back(t.record);
    }
    if (Status st = engine.ProcessCycle(second, batch); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    if (second == 30) {
      // Query churn: retire "momentum", launch "breakout".
      if (Status st = engine.UnregisterQuery(momentum.id); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      QuerySpec breakout;
      breakout.id = 4;
      breakout.k = 5;
      breakout.function = std::make_shared<SumOfSquaresFunction>(
          std::vector<double>{0.4, 1.0, 0.3});
      if (Status st = engine.RegisterQuery(breakout); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("t=%llds: retired 'momentum', registered 'breakout'\n",
                  static_cast<long long>(second));
    }
    if (second % 10 == 0) {
      std::printf("t=%llds, window=%zu trades\n",
                  static_cast<long long>(second), engine.WindowSize());
      PrintBoard("whales", engine, whales.id, symbols);
      PrintBoard("momentum", engine, momentum.id, symbols);
      PrintBoard("quiet", engine, quiet.id, symbols);
      PrintBoard("breakout", engine, 4, symbols);
    }
  }
  std::printf("\nengine stats: %s\n", engine.stats().ToString().c_str());
  return 0;
}
