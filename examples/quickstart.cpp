// Quickstart: continuous top-k monitoring in ~60 lines.
//
// Build a 2-dimensional SMA engine over a count-based window, register a
// top-3 query with a linear preference function, stream random tuples
// through it, and print the result after every cycle.

#include <cstdio>

#include "core/sma_engine.h"
#include "stream/generators.h"

using namespace topkmon;

int main() {
  // 1. Configure the engine: 2-D workspace, the 1000 most recent tuples.
  GridEngineOptions options;
  options.dim = 2;
  options.window = WindowSpec::Count(1000);
  SmaEngine engine(options);

  // 2. Register a continuous query: top-3 under f(p) = x1 + 2 * x2.
  QuerySpec query;
  query.id = 1;
  query.k = 3;
  query.function =
      std::make_shared<LinearFunction>(std::vector<double>{1.0, 2.0});
  if (Status st = engine.RegisterQuery(query); !st.ok()) {
    std::fprintf(stderr, "RegisterQuery: %s\n", st.ToString().c_str());
    return 1;
  }

  // 3. Stream tuples: 100 arrivals per cycle for 20 cycles.
  RecordSource source(MakeGenerator(Distribution::kIndependent, 2, 42));
  for (Timestamp now = 1; now <= 20; ++now) {
    if (Status st = engine.ProcessCycle(now, source.NextBatch(100, now));
        !st.ok()) {
      std::fprintf(stderr, "ProcessCycle: %s\n", st.ToString().c_str());
      return 1;
    }
    // 4. The exact top-3 is available after every cycle.
    const auto result = engine.CurrentResult(query.id);
    std::printf("t=%2lld  window=%4zu  top-3:", static_cast<long long>(now),
                engine.WindowSize());
    for (const ResultEntry& e : *result) {
      std::printf("  #%llu (%.4f)", static_cast<unsigned long long>(e.id),
                  e.score);
    }
    std::printf("\n");
  }

  // 5. Engine counters summarize the work done.
  std::printf("\nstats: %s\n", engine.stats().ToString().c_str());
  std::printf("memory: %s\n", engine.Memory().ToString().c_str());
  return 0;
}
