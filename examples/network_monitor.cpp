// Network traffic monitor — the paper's motivating scenario (Section 1).
//
// An ISP server ingests per-flow records (NetFlow style). Each flow is
// summarized by normalized attributes:
//   x1 = throughput (bytes/sec), x2 = packet count, x3 = duration,
//   x4 = fan-out (distinct destination ports probed).
// Two continuous queries run over the last 50K flows:
//   * DDoS watch   — top-100 flows by individual throughput: many heavy
//     flows sharing a destination suggest a volumetric attack;
//   * worm watch   — top-100 flows by probe-likeness (high fan-out, few
//     packets): many hits sharing a source suggest a scanning worm.
// The synthetic stream is mostly benign traffic with injected attack
// phases; the example shows the alerts flipping on as the attack enters
// the window and off as it slides out.

#include <cstdio>
#include <map>
#include <string>

#include "core/sma_engine.h"
#include "util/rng.h"

using namespace topkmon;

namespace {

constexpr int kDims = 4;
constexpr std::size_t kWindow = 50000;
constexpr std::size_t kFlowsPerTick = 2000;
constexpr int kTicks = 50;
constexpr int kAttackStart = 15;
constexpr int kAttackEnd = 25;
constexpr int kTopK = 100;

/// Synthesizes one flow record. During the attack phase a fraction of
/// flows are DDoS floods (high throughput toward one victim) or worm
/// probes (high fan-out, few packets, one source).
struct FlowSource {
  Rng rng{20060627};
  RecordId next_id = 0;

  struct Flow {
    Record record;
    std::string src;
    std::string dst;
  };

  Flow Next(Timestamp now, bool attack_phase) {
    Flow flow;
    Point x(kDims);
    const double role = rng.Uniform();
    if (attack_phase && role < 0.02) {
      // DDoS flood member: extreme throughput, common victim.
      x[0] = rng.Uniform(0.93, 1.0);
      x[1] = rng.Uniform(0.7, 1.0);
      x[2] = rng.Uniform(0.0, 0.2);
      x[3] = rng.Uniform(0.0, 0.1);
      flow.src = "bot-" + std::to_string(rng.UniformInt(1000));
      flow.dst = "victim.example.com";
    } else if (attack_phase && role < 0.04) {
      // Worm probe: tiny flows, huge fan-out, common source.
      x[0] = rng.Uniform(0.0, 0.05);
      x[1] = rng.Uniform(0.0, 0.05);
      x[2] = rng.Uniform(0.0, 0.05);
      x[3] = rng.Uniform(0.92, 1.0);
      flow.src = "infected-host";
      flow.dst = "probe-" + std::to_string(rng.UniformInt(100000));
    } else {
      // Benign traffic: mid-range everything.
      for (int i = 0; i < kDims; ++i) {
        x[i] = std::clamp(rng.Gaussian(0.35, 0.15), 0.0, 0.9);
      }
      flow.src = "host-" + std::to_string(rng.UniformInt(5000));
      flow.dst = "site-" + std::to_string(rng.UniformInt(5000));
    }
    flow.record = Record(next_id++, x, now);
    return flow;
  }
};

}  // namespace

int main() {
  GridEngineOptions options;
  options.dim = kDims;
  options.window = WindowSpec::Count(kWindow);
  SmaEngine engine(options);

  // DDoS watch: rank purely by throughput.
  QuerySpec ddos;
  ddos.id = 1;
  ddos.k = kTopK;
  ddos.function = std::make_shared<LinearFunction>(
      std::vector<double>{1.0, 0.05, 0.0, 0.0});
  // Worm watch: fan-out dominates, packet count counts against.
  QuerySpec worm;
  worm.id = 2;
  worm.k = kTopK;
  worm.function = std::make_shared<LinearFunction>(
      std::vector<double>{0.0, -0.5, 0.0, 1.0});
  for (const QuerySpec* q : {&ddos, &worm}) {
    if (Status st = engine.RegisterQuery(*q); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }

  FlowSource source;
  std::map<RecordId, std::pair<std::string, std::string>> flow_meta;

  std::printf(
      "tick  window   DDoS: victim-share   worm: src-share   verdicts\n");
  for (Timestamp now = 1; now <= kTicks; ++now) {
    const bool attacking = now >= kAttackStart && now <= kAttackEnd;
    std::vector<Record> batch;
    batch.reserve(kFlowsPerTick);
    for (std::size_t i = 0; i < kFlowsPerTick; ++i) {
      FlowSource::Flow flow = source.Next(now, attacking);
      flow_meta[flow.record.id] = {flow.src, flow.dst};
      batch.push_back(flow.record);
    }
    if (Status st = engine.ProcessCycle(now, batch); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    // Drop metadata of expired flows.
    if (!batch.empty() && batch.back().id >= kWindow) {
      flow_meta.erase(flow_meta.begin(),
                      flow_meta.lower_bound(batch.back().id - kWindow + 1));
    }

    // Analyze the two result sets: do many top flows share an endpoint?
    auto share = [&](QueryId id, bool by_destination) {
      const auto result = engine.CurrentResult(id);
      std::map<std::string, int> counts;
      for (const ResultEntry& e : *result) {
        const auto& [src, dst] = flow_meta.at(e.id);
        ++counts[by_destination ? dst : src];
      }
      int best = 0;
      for (const auto& [name, count] : counts) best = std::max(best, count);
      return result->empty()
                 ? 0.0
                 : static_cast<double>(best) /
                       static_cast<double>(result->size());
    };
    const double victim_share = share(ddos.id, /*by_destination=*/true);
    const double source_share = share(worm.id, /*by_destination=*/false);
    std::string verdict;
    if (victim_share > 0.5) verdict += " [DDoS ALERT]";
    if (source_share > 0.5) verdict += " [WORM ALERT]";
    if (verdict.empty()) verdict = " ok";
    std::printf("%4lld  %6zu   %17.2f   %15.2f  %s%s\n",
                static_cast<long long>(now), engine.WindowSize(),
                victim_share, source_share, verdict.c_str(),
                attacking ? "  (attack traffic active)" : "");
  }
  std::printf("\nengine stats: %s\n", engine.stats().ToString().c_str());
  return 0;
}
