// Service demo: the monitoring engines behind a multi-client service —
// in-process, or split across processes over the binary TCP protocol.
//
// Five modes (--mode=local is the default):
//   * local  — everything in one process: 3 producer threads stream
//     tuples through the batching ingest queue while 2 client sessions
//     hold continuous top-k queries and long-poll their delta streams.
//   * serve  — starts the TCP front-end on --port and blocks serving
//     remote clients until the process is killed (or --serve_seconds
//     elapses). Combine with --journal=DIR for a durable server that
//     recovers sessions and queries across restarts — and that
//     followers can replicate from.
//   * client — connects to --host:--port, registers --queries top-k
//     queries under a session labeled --label (resuming it if the
//     server already knows the label), streams --records tuples through
//     batched wire ingest, and prints the deltas it long-polls. Run
//     several concurrently; re-run with the same --label to see
//     gap-free resume (sequence numbers continue where they stopped).
//   * cluster — the horizontal tier in one process: --partitions
//     independent leaders (each behind a real TCP socket, each
//     announcing its partition index as the Welcome server_tag), a
//     routed producer per --producers thread hash-splitting its tuples
//     across the partitions, and a subscriber router that merges the
//     per-partition delta streams into one gap-free sequence and
//     k-merges the per-partition top-k into the global answer. With
//     --journal=DIR each partition journals under DIR/p<i>.
//   * follower — warm standby: ships the journal of the leader at
//     --host:--port into --journal=DIR (required), continuously replays
//     it, and serves *read-only* clients on --listen (snapshots carry a
//     staleness bound; writes are refused with a redirect). Prints the
//     apply lag once a second. With --promote_seconds=N the follower
//     promotes itself after N seconds — kill the leader first and watch
//     the standby take over writes with the same sessions and queries.
//
// With --journal=DIR the service write-ahead-journals every cycle and
// recovers the directory on startup: run twice with the same DIR and
// the second run prints the recovery summary, re-adopts the first run's
// sessions by label, and continues their queries.
//
// Replication quickstart (three terminals):
//   service_demo --mode=serve --journal=/tmp/leaderj --port=4585
//   service_demo --mode=follower --journal=/tmp/replj --port=4585 \
//                --listen=4586
//   service_demo --mode=client --port=4585 --label=dash   # writes
//   service_demo --mode=client --port=4586 --label=dash --records=0
//                                       # reads the replica's stream
//
// With --workload=NAME (local mode) the demo is driven by a named
// generator from the workload registry instead of the built-in random
// queries and clustered producers: the workload schedules the query
// register/unregister mix and the per-cycle arrival batches, and the
// service ingests them through the same pipeline. --workload=list
// prints every registered name with its tunable parameters (see
// docs/WORKLOADS.md).
//
// Flags: --mode=local|serve|client|follower|cluster --host=H --port=P
//        --listen=P --label=NAME --producers=N --records=N --queries=N
//        --k=N --window=N --serve_seconds=N --promote_seconds=N
//        --journal=DIR --sync=none|interval|always --server_threads=N
//        (0 = min(4, cores); with >= 2 threads and a journal, the last
//        poll loop is dedicated to replication fetches)
//        --partitions=N (cluster mode) --server_tag=I (serve mode: the
//        operator-assigned partition index announced in Welcome when
//        this server is one leader of a cluster; see docs/CLUSTER.md)
//        --workload=NAME|list --workload_seed=S (local mode)
//        --admin_port=P (serve/follower modes: read-only HTTP admin
//        plane on 127.0.0.1:P — /metrics, /statusz, /healthz; 0 binds
//        an ephemeral port, omit to disable; see docs/ADMIN.md)
//        --dump_metrics (prints every metric name a full node — leader,
//        TCP server, replica follower, failover agent — registers, one
//        per line, and exits; tools/check_metrics.py diffs this against
//        the docs/ADMIN.md catalog)

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include <stdlib.h>

#include "cluster/local_cluster.h"
#include "cluster/router.h"
#include "core/sharded_engine.h"
#include "core/tma_engine.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "replica/failover.h"
#include "replica/follower.h"
#include "service/monitor_service.h"
#include "stream/generators.h"
#include "util/flags.h"
#include "util/rng.h"
#include "workload/workload.h"

using namespace topkmon;

namespace {

/// Builds the service (recovering --journal if given) shared by the
/// local and serve modes.
/// Shared engine factory of every serving mode.
std::function<std::unique_ptr<MonitorEngine>()> EngineFactory(
    std::size_t window) {
  return [window] {
    return std::unique_ptr<MonitorEngine>(new ShardedEngine(
        2,
        [window] {
          GridEngineOptions opt;
          opt.dim = 2;
          opt.window = WindowSpec::Count(window);
          return std::unique_ptr<MonitorEngine>(new TmaEngine(opt));
        }));
  };
}

std::unique_ptr<MonitorService> MakeService(std::size_t window,
                                            const std::string& journal_dir,
                                            SyncPolicy sync,
                                            long admin_port = -1) {
  ServiceOptions options;
  options.ingest.slack = 4;
  options.drain_wait = std::chrono::milliseconds(2);
  options.journal.dir = journal_dir;
  options.journal.sync = sync;
  // Leave the previous segment for attached followers to finish.
  options.journal.retain_segment_count = 2;
  if (admin_port >= 0) {
    options.admin.enabled = true;
    options.admin.port = static_cast<std::uint16_t>(admin_port);
  }
  const auto engine_factory = EngineFactory(window);
  if (journal_dir.empty()) {
    return std::make_unique<MonitorService>(engine_factory(), options);
  }
  auto opened = MonitorService::Open(engine_factory, options);
  if (!opened.ok()) {
    std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
    return nullptr;
  }
  std::printf("journal: %s\n", (*opened)->recovery().ToString().c_str());
  return std::move(*opened);
}

/// First unlabeled sample named `name` in a scrape, or 0 — the demo's
/// summary lines only need the node-wide series.
double SampleValue(const MetricsSnapshot& snap, const char* name) {
  for (const MetricSample& s : snap.samples) {
    if (s.name == name && s.labels.empty()) return s.value;
  }
  return 0.0;
}

/// Announces the admin plane (if the service managed to bind it) right
/// after startup, so operators can copy-paste the scrape URL.
void PrintAdminEndpoint(const MonitorService& service) {
  if (service.admin_port() != 0) {
    std::printf("admin:   http://127.0.0.1:%u/metrics (also /statusz, "
                "/healthz)\n",
                service.admin_port());
  } else if (!service.admin_status().ok()) {
    std::fprintf(stderr, "admin plane disabled: %s\n",
                 service.admin_status().ToString().c_str());
  }
}

/// The periodic serve-mode summary, sourced from the metrics registry —
/// the same numbers a /metrics scrape sees, proving the registry is the
/// one place the node's health lives. `interval` is the seconds since
/// `last_ingested` was sampled.
void PrintStatsLine(MonitorService& service, std::uint64_t* last_ingested,
                    long interval) {
  const MetricsSnapshot snap = service.metrics().Snapshot();
  const auto ingested = static_cast<std::uint64_t>(
      SampleValue(snap, "topkmon_records_ingested_total"));
  const double rate =
      interval > 0
          ? static_cast<double>(ingested - *last_ingested) /
                static_cast<double>(interval)
          : 0.0;
  *last_ingested = ingested;
  std::printf(
      "stats:   %.0f rec/s  queue depth %.0f (pressure %.0f)  "
      "sessions %.0f  staleness %.0f  %s epoch %.0f\n",
      rate, SampleValue(snap, "topkmon_ingest_queue_depth"),
      SampleValue(snap, "topkmon_ingest_queue_pressure"),
      SampleValue(snap, "topkmon_open_sessions"),
      SampleValue(snap, "topkmon_replication_staleness"),
      SampleValue(snap, "topkmon_fenced") != 0.0
          ? "FENCED"
          : SampleValue(snap, "topkmon_is_leader") != 0.0 ? "leader"
                                                          : "follower",
      SampleValue(snap, "topkmon_fencing_epoch"));
}

int RunServe(std::size_t window, const std::string& journal_dir,
             SyncPolicy sync, std::uint16_t port, long serve_seconds,
             std::size_t server_threads, std::uint32_t server_tag,
             long admin_port) {
  auto service = MakeService(window, journal_dir, sync, admin_port);
  if (service == nullptr) return 1;
  NetServerOptions net;
  net.port = port;
  net.server_threads = server_threads;
  net.server_tag = server_tag;
  TcpServer server(*service, net);
  if (const Status st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (server_tag != kNoServerTag) {
    std::printf("cluster partition %u — routers will refuse this server "
                "at any other index of their endpoint list\n", server_tag);
  }
  std::printf("serving on 127.0.0.1:%u with %zu poll loop(s)%s — "
              "connect with --mode=client --port=%u (ctrl-C to stop)\n",
              server.port(), server.loop_count(),
              server.replication_loop() < server.loop_count()
                  ? " (last one dedicated to replication)"
                  : "",
              server.port());
  PrintAdminEndpoint(*service);
  long elapsed = 0;
  std::uint64_t last_ingested = 0;
  while (serve_seconds <= 0 || elapsed < serve_seconds) {
    std::this_thread::sleep_for(std::chrono::seconds(1));
    ++elapsed;
    if (elapsed % 10 == 0) {
      PrintStatsLine(*service, &last_ingested, /*interval=*/10);
    }
  }
  server.Stop();
  service->Shutdown();
  std::printf("net:     %s\nservice: %s\n",
              server.stats().ToString().c_str(),
              service->stats().ToString().c_str());
  return 0;
}

int RunFollower(std::size_t window, const std::string& journal_dir,
                const std::string& leader_host, std::uint16_t leader_port,
                std::uint16_t listen_port, long serve_seconds,
                long promote_seconds, std::size_t server_threads,
                long admin_port) {
  if (journal_dir.empty()) {
    std::fprintf(stderr,
                 "--mode=follower needs --journal=DIR (the local "
                 "directory the leader's journal is shipped into)\n");
    return 1;
  }
  ServiceOptions options;
  options.journal.dir = journal_dir;
  if (admin_port >= 0) {
    options.admin.enabled = true;
    options.admin.port = static_cast<std::uint16_t>(admin_port);
  }
  ReplicaFollowerOptions fopt;
  fopt.leader_host = leader_host;
  fopt.leader_port = leader_port;
  auto follower = ReplicaFollower::Open(EngineFactory(window), options,
                                        fopt);
  if (!follower.ok()) {
    std::fprintf(stderr, "%s\n", follower.status().ToString().c_str());
    return 1;
  }
  NetServerOptions net;
  net.port = listen_port;
  net.server_threads = server_threads;
  TcpServer server((*follower)->service(), net);
  if (const Status st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf(
      "read-only follower of %s:%u serving on 127.0.0.1:%u — reads "
      "(snapshots, delta polls) welcome; writes are redirected\n",
      leader_host.c_str(), leader_port, server.port());
  PrintAdminEndpoint((*follower)->service());
  bool promoted = false;
  long elapsed = 0;
  std::uint64_t last_ingested = 0;
  while (serve_seconds <= 0 || elapsed < serve_seconds) {
    std::this_thread::sleep_for(std::chrono::seconds(1));
    ++elapsed;
    if (!promoted) {
      const ReplicaFollowerStats stats = (*follower)->stats();
      std::printf(
          "lag: %lld cycle-ts (applied %lld / leader %lld)  shipped %llu "
          "bytes  segment %llu  resyncs %llu%s\n",
          static_cast<long long>(stats.LagTs()),
          static_cast<long long>(stats.applied_cycle_ts),
          static_cast<long long>(stats.leader_cycle_ts),
          static_cast<unsigned long long>(stats.bytes_shipped),
          static_cast<unsigned long long>(stats.current_segment),
          static_cast<unsigned long long>(stats.restarts),
          stats.connected ? "" : "  [leader unreachable]");
    }
    if (!promoted && promote_seconds > 0 && elapsed >= promote_seconds) {
      if (const Status st = (*follower)->Promote(); !st.ok()) {
        std::fprintf(stderr, "promotion failed: %s\n",
                     st.ToString().c_str());
        return 1;
      }
      promoted = true;
      std::printf(
          "PROMOTED: now the leader — writes accepted, journaling into "
          "%s\n",
          journal_dir.c_str());
    }
    if (elapsed % 10 == 0) {
      PrintStatsLine((*follower)->service(), &last_ingested,
                     /*interval=*/10);
    }
  }
  server.Stop();
  (*follower)->Stop();
  (*follower)->service().Shutdown();
  return 0;
}

int RunClient(const std::string& host, std::uint16_t port,
              const std::string& label, std::size_t records,
              std::size_t queries, int k) {
  auto client = MonitorClient::Connect(host, port, label, /*resume=*/true);
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }
  std::printf("[%s] %s session %llu\n", label.c_str(),
              (*client)->resumed() ? "resumed" : "opened",
              static_cast<unsigned long long>((*client)->session()));
  Rng rng(static_cast<std::uint64_t>((*client)->session()) * 7919);
  if (!(*client)->resumed()) {
    for (std::size_t q = 0; q < queries; ++q) {
      QuerySpec spec;  // the service assigns the id
      spec.k = k;
      spec.function = MakeRandomFunction(
          FunctionFamily::kLinear, 2, [&rng] { return rng.Uniform(); });
      const auto id = (*client)->Register(spec);
      if (!id.ok()) {
        std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
        return 1;
      }
      std::printf("[%s] registered query %u: top-%d under %s\n",
                  label.c_str(), *id, k, spec.function->ToString().c_str());
    }
  }

  // A second connection (same label, resumed) long-polls the deltas the
  // ingest below triggers — the two-connection shape real dashboards use.
  std::atomic<bool> done{false};
  std::thread subscriber([&] {
    auto sub = MonitorClient::Connect(host, port, label, /*resume=*/true);
    if (!sub.ok()) return;
    std::uint64_t printed = 0;
    while (true) {
      auto events = (*sub)->PollDeltas(64, std::chrono::milliseconds(50));
      if (!events.ok()) break;
      for (const DeltaEvent& e : *events) {
        if (++printed <= 8) {
          std::printf("[%s] seq=%llu t=%lld query=%u +%zu -%zu\n",
                      label.c_str(),
                      static_cast<unsigned long long>(e.seq),
                      static_cast<long long>(e.delta.when), e.delta.query,
                      e.delta.added.size(), e.delta.removed.size());
        }
      }
      if (events->empty() && done.load()) break;
    }
    std::printf("[%s] received %llu delta events (last seq %llu)\n",
                label.c_str(), static_cast<unsigned long long>(printed),
                static_cast<unsigned long long>((*sub)->last_seq()));
    (void)(*sub)->Close();
  });

  auto gen = MakeGenerator(Distribution::kClustered, 2,
                           rng.NextUint64());
  const Timestamp base =
      static_cast<Timestamp>((*client)->session()) * 1000000;
  std::size_t sent = 0;
  while (sent < records) {
    std::vector<Record> batch;
    for (std::size_t i = 0; i < 256 && sent < records; ++i, ++sent) {
      batch.emplace_back(0, gen->NextPoint(),
                         base + static_cast<Timestamp>(sent));
    }
    // Hint-paced ingest: a RESOURCE_EXHAUSTED refusal means the server's
    // queue filled mid-batch — the accepted tuples are the batch prefix,
    // so back off (scaled by the queue hint) and resend the suffix.
    std::size_t offset = 0;
    while (offset < batch.size()) {
      std::vector<Record> part(batch.begin() + static_cast<long>(offset),
                               batch.end());
      const auto ack = (*client)->Ingest(std::move(part));
      if (!ack.ok()) {
        std::fprintf(stderr, "%s\n", ack.status().ToString().c_str());
        done.store(true);
        subscriber.join();
        return 1;
      }
      offset += ack->accepted;
      if (ack->rejected == 0) break;
      if (ack->first_error.code() == StatusCode::kResourceExhausted) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(1 + ack->queue_hint / 32));
        continue;
      }
      std::printf("[%s] %u tuples rejected: %s\n", label.c_str(),
                  ack->rejected, ack->first_error.ToString().c_str());
      break;
    }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  done.store(true);
  subscriber.join();
  return (*client)->Close().ok() ? 0 : 1;
}

int RunCluster(std::size_t partitions, int producers, std::size_t records,
               std::size_t queries, int k, std::size_t window,
               const std::string& journal_dir, SyncPolicy sync) {
  // 1. The cluster: N independent leaders in this process, each with its
  //    own engine, driver and (optionally) journal under DIR/p<i>, each
  //    behind a real TCP socket announcing its partition index.
  LocalClusterOptions copt;
  copt.partitions = partitions;
  copt.engine_factory = EngineFactory(window);
  copt.service.ingest.slack = 4;
  copt.service.drain_wait = std::chrono::milliseconds(2);
  copt.service.journal.dir = journal_dir;
  copt.service.journal.sync = sync;
  auto cluster = LocalCluster::Start(copt);
  if (!cluster.ok()) {
    std::fprintf(stderr, "%s\n", cluster.status().ToString().c_str());
    return 1;
  }
  const PartitionMap& map = (*cluster)->map();
  std::printf("cluster: %zu partitions up —", partitions);
  for (std::size_t i = 0; i < partitions; ++i) {
    std::printf(" %s", map.Describe(i).c_str());
  }
  std::printf("%s\n", journal_dir.empty()
                          ? ""
                          : "  (journaling per partition)");

  // 2. The subscriber router owns the queries and the merged stream.
  //    Register scatters each spec to every partition; the per-partition
  //    delta streams merge into one gap-free sequence below.
  auto sub = ClusterRouter::Connect(map, "dash");
  if (!sub.ok()) {
    std::fprintf(stderr, "%s\n", sub.status().ToString().c_str());
    return 1;
  }
  Rng rng(2024);
  std::vector<QueryId> qids;
  for (std::size_t q = 0; q < queries; ++q) {
    QuerySpec spec;  // the router assigns the global id
    spec.k = k;
    spec.function = MakeRandomFunction(
        FunctionFamily::kLinear, 2, [&rng] { return rng.Uniform(); });
    const auto id = (*sub)->Register(spec);
    if (!id.ok()) {
      std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
      return 1;
    }
    qids.push_back(*id);
    std::printf("[dash] registered global query %u on all %zu "
                "partitions: top-%d under %s\n",
                *id, partitions, k, spec.function->ToString().c_str());
  }

  // 3. The subscriber thread drains the merged stream while producers
  //    run. It owns the router exclusively until joined (routers, like
  //    clients, are single-threaded).
  std::atomic<bool> done{false};
  std::uint64_t printed = 0;
  std::thread subscriber([&] {
    while (true) {
      const auto events =
          (*sub)->PollDeltas(256, std::chrono::milliseconds(20));
      if (!events.ok()) break;
      for (const DeltaEvent& e : *events) {
        if (++printed <= 8) {
          std::printf("[dash] seq=%llu t=%lld query=%u +%zu -%zu "
                      "(as_of %lld)\n",
                      static_cast<unsigned long long>(e.seq),
                      static_cast<long long>(e.delta.when), e.delta.query,
                      e.delta.added.size(), e.delta.removed.size(),
                      static_cast<long long>((*sub)->deltas_as_of()));
        }
      }
      if (events->empty() && done.load()) break;
    }
  });

  // 4. Routed producers: every thread dials its own router and assigns
  //    its own object ids — ownership (splitmix64(id) mod N) is computed
  //    client-side, so each batch splits into per-partition sub-batches
  //    with per-partition backpressure pacing.
  std::atomic<Timestamp> clock{1};
  std::atomic<std::uint64_t> next_id{1};
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> rejected{0};
  std::vector<std::thread> workers;
  const std::size_t per_producer =
      records / static_cast<std::size_t>(producers > 0 ? producers : 1);
  for (int p = 0; p < producers; ++p) {
    workers.emplace_back([&, p] {
      auto feed = ClusterRouter::Connect(
          map, "feed-" + std::to_string(p));
      if (!feed.ok()) {
        std::fprintf(stderr, "%s\n", feed.status().ToString().c_str());
        return;
      }
      auto gen = MakeGenerator(Distribution::kClustered, 2,
                               77 + static_cast<std::uint64_t>(p));
      std::size_t sent = 0;
      while (sent < per_producer) {
        std::vector<Record> batch;
        for (std::size_t i = 0; i < 256 && sent < per_producer;
             ++i, ++sent) {
          batch.emplace_back(next_id.fetch_add(1), gen->NextPoint(),
                             clock.fetch_add(1));
        }
        const auto report = (*feed)->Ingest(batch);
        if (!report.ok()) {
          std::fprintf(stderr, "%s\n",
                       report.status().ToString().c_str());
          return;
        }
        accepted.fetch_add(report->accepted);
        if (report->rejected != 0) {
          rejected.fetch_add(report->rejected);
          std::printf("[feed-%d] %llu tuples rejected: %s\n", p,
                      static_cast<unsigned long long>(report->rejected),
                      report->first_error.ToString().c_str());
        }
      }
      (void)(*feed)->Close();
    });
  }
  for (std::thread& t : workers) t.join();

  // 5. Fence every partition (all accepted records applied, all deltas
  //    published), let the subscriber drain, then flush the merge's
  //    buffered tail — Finalize is safe exactly because the cluster is
  //    quiescent here.
  if (const Status st = (*cluster)->FlushAll(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  done.store(true);
  subscriber.join();
  const std::size_t tail = (*sub)->FinalizeDeltas().size();
  std::printf("[dash] merged %llu delta events gap-free (+%zu finalized "
              "from the frontier buffer), as_of %lld, %llu partition "
              "restarts\n",
              static_cast<unsigned long long>((*sub)->merged_events()),
              tail, static_cast<long long>((*sub)->deltas_as_of()),
              static_cast<unsigned long long>(
                  (*sub)->partition_restarts()));
  std::printf("ingest: %llu accepted / %llu rejected across %zu "
              "partitions\n",
              static_cast<unsigned long long>(accepted.load()),
              static_cast<unsigned long long>(rejected.load()),
              partitions);

  // 6. The global answer: per-partition top-k gathered and k-merged
  //    under namespaced ids; as_of is the min across partitions.
  for (const QueryId q : qids) {
    const auto result = (*sub)->CurrentResult(q);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("query %u global top-%d (as_of %lld, stale_by %lld):",
                q, k, static_cast<long long>((*sub)->snapshot_as_of()),
                static_cast<long long>((*sub)->snapshot_stale_by()));
    for (const ResultEntry& e : *result) {
      std::printf(" %llu=%.4f", static_cast<unsigned long long>(e.id),
                  e.score);
    }
    std::printf("\n");
  }
  for (std::size_t i = 0; i < partitions; ++i) {
    if (MonitorService* svc = (*cluster)->service(i)) {
      std::printf("p%zu: %s\n", i, svc->stats().ToString().c_str());
    }
  }
  (void)(*sub)->Close();
  (*cluster)->Stop();
  return 0;
}

int PrintWorkloads() {
  std::printf("named workloads (--workload=NAME):\n");
  for (const WorkloadInfo& info : ListWorkloads()) {
    std::printf("  %-18s %s\n", info.name.c_str(),
                info.description.c_str());
    const auto workload = MakeWorkload(info.name, WorkloadOptions{});
    if (!workload.ok()) continue;
    for (const WorkloadParam& p : (*workload)->Params()) {
      std::printf("      %s=%g  (%s)\n", p.name.c_str(), p.value,
                  p.description.c_str());
    }
  }
  return 0;
}

int RunWorkloadDriven(const std::string& name, std::uint64_t seed,
                      std::size_t records, std::size_t queries, int k,
                      std::size_t window, const std::string& journal_dir,
                      SyncPolicy sync) {
  WorkloadOptions wopt;
  wopt.dim = 2;
  wopt.seed = seed;
  wopt.k = k;
  wopt.num_queries = queries;
  auto workload = MakeWorkload(name, wopt);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }
  auto owned_service = MakeService(window, journal_dir, sync);
  if (owned_service == nullptr) return 1;
  MonitorService& service = *owned_service;

  // One session owns every workload-scheduled query. After a journal
  // recovery the session is adopted by label and keeps the previous
  // run's queries alongside the ones this run registers.
  SessionId session;
  if (const auto adopted = service.FindSession(name); adopted.ok()) {
    std::printf("[%s] adopted recovered session %llu\n", name.c_str(),
                static_cast<unsigned long long>(*adopted));
    session = *adopted;
  } else {
    const auto opened = service.OpenSession(name);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      return 1;
    }
    session = *opened;
  }

  std::atomic<bool> done{false};
  std::thread subscriber([&service, &done, &name, session] {
    std::uint64_t printed = 0;
    std::vector<DeltaEvent> events;
    while (true) {
      events.clear();
      const std::size_t n = service.WaitDeltas(
          session, 64, std::chrono::milliseconds(20), &events);
      for (const DeltaEvent& e : events) {
        if (++printed <= 8) {
          std::printf("[%s] seq=%llu t=%lld query=%u +%zu -%zu\n",
                      name.c_str(),
                      static_cast<unsigned long long>(e.seq),
                      static_cast<long long>(e.delta.when), e.delta.query,
                      e.delta.added.size(), e.delta.removed.size());
        }
      }
      if (n == 0 && done.load()) break;
    }
    std::printf("[%s] received %llu delta events (%llu dropped)\n",
                name.c_str(), static_cast<unsigned long long>(printed),
                static_cast<unsigned long long>(
                    service.DroppedDeltas(session)));
  });

  // The service assigns its own query ids, so workload-scheduled
  // unregisters are translated through this map.
  std::map<QueryId, QueryId> id_map;
  std::size_t sent = 0;
  std::size_t registered = 0;
  std::size_t unregistered = 0;
  while (sent < records) {
    const WorkloadStep step = (*workload)->NextStep();
    for (const QueryEvent& ev : step.query_events) {
      if (ev.kind == QueryEvent::kRegister) {
        QuerySpec spec = ev.spec;
        spec.id = 0;  // the service assigns the id
        const auto id = service.Register(session, spec);
        if (!id.ok()) {
          std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
          done.store(true);
          subscriber.join();
          return 1;
        }
        id_map[ev.id] = *id;
        ++registered;
        if (registered <= 8) {
          std::printf("[%s] cycle %llu: registered query %u: top-%d "
                      "under %s\n",
                      name.c_str(),
                      static_cast<unsigned long long>(step.cycle), *id,
                      spec.k, spec.function->ToString().c_str());
        }
      } else {
        const auto it = id_map.find(ev.id);
        if (it == id_map.end()) continue;  // registered before recovery
        if (const Status st = service.Unregister(session, it->second);
            !st.ok()) {
          std::fprintf(stderr, "%s\n", st.ToString().c_str());
        }
        id_map.erase(it);
        ++unregistered;
      }
    }
    for (const Record& r : step.arrivals) {
      if (const Status st = service.Ingest(r.position, r.arrival);
          !st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        done.store(true);
        subscriber.join();
        return 1;
      }
      ++sent;
    }
  }

  if (const Status st = service.Flush(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  service.Shutdown();
  done.store(true);
  subscriber.join();

  std::printf("\nworkload '%s' (seed %llu): %zu records, %zu queries "
              "registered, %zu unregistered, %zu live\n",
              name.c_str(), static_cast<unsigned long long>(seed), sent,
              registered, unregistered, id_map.size());
  std::size_t shown = 0;
  for (const auto& [workload_id, service_id] : id_map) {
    if (++shown > 4) break;
    const auto result = service.CurrentResult(service_id);
    if (!result.ok()) continue;
    std::printf("query %u top-%d:", service_id, k);
    for (const ResultEntry& e : *result) {
      std::printf(" %llu=%.4f", static_cast<unsigned long long>(e.id),
                  e.score);
    }
    std::printf("\n");
  }
  std::printf("service: %s\n", service.stats().ToString().c_str());
  std::printf("engine:  %s over %s\n", service.engine_name().c_str(),
              service.EngineCounters().ToString().c_str());
  return 0;
}

int RunLocal(int producers, std::size_t records,
             std::size_t queries_per_session, int k, std::size_t window,
             const std::string& journal_dir, SyncPolicy sync) {
  // 1. Engine + service. The service owns the cycle-driver thread; we
  //    never call the engine directly again.
  auto owned_service = MakeService(window, journal_dir, sync);
  if (owned_service == nullptr) return 1;
  MonitorService& service = *owned_service;

  // 2. Two client sessions, each holding continuous queries. After a
  //    recovery the sessions already exist (adopted by label) and keep
  //    the previous run's queries.
  const char* names[2] = {"alice", "bob"};
  std::vector<SessionId> sessions;
  Rng rng(2024);
  for (const char* name : names) {
    if (const auto adopted = service.FindSession(name); adopted.ok()) {
      std::printf("[%s] adopted recovered session %llu\n", name,
                  static_cast<unsigned long long>(*adopted));
      sessions.push_back(*adopted);
      continue;
    }
    const auto session = service.OpenSession(name);
    if (!session.ok()) {
      std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
      return 1;
    }
    sessions.push_back(*session);
    for (std::size_t q = 0; q < queries_per_session; ++q) {
      QuerySpec spec;  // the service assigns the id
      spec.k = k;
      spec.function = MakeRandomFunction(
          FunctionFamily::kLinear, 2, [&rng] { return rng.Uniform(); });
      const auto id = service.Register(*session, spec);
      if (!id.ok()) {
        std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
        return 1;
      }
      std::printf("[%s] registered query %u: top-%d under %s\n", name, *id,
                  k, spec.function->ToString().c_str());
    }
  }

  // 3. Subscriber threads long-poll their session's delta stream.
  std::atomic<bool> done{false};
  std::vector<std::thread> subscribers;
  for (std::size_t s = 0; s < sessions.size(); ++s) {
    subscribers.emplace_back([&service, &done, &names, &sessions, s] {
      std::uint64_t printed = 0;
      std::vector<DeltaEvent> events;
      while (true) {
        events.clear();
        const std::size_t n = service.WaitDeltas(
            sessions[s], 64, std::chrono::milliseconds(20), &events);
        for (const DeltaEvent& e : events) {
          // Print only a prefix per session to keep the demo readable.
          if (++printed <= 8) {
            std::printf("[%s] seq=%llu t=%lld query=%u +%zu -%zu\n",
                        names[s],
                        static_cast<unsigned long long>(e.seq),
                        static_cast<long long>(e.delta.when),
                        e.delta.query, e.delta.added.size(),
                        e.delta.removed.size());
          }
        }
        if (n == 0 && done.load()) break;
      }
      std::printf("[%s] received %llu delta events (%llu dropped)\n",
                  names[s], static_cast<unsigned long long>(printed),
                  static_cast<unsigned long long>(
                      service.DroppedDeltas(sessions[s])));
    });
  }

  // 4. Producer threads ingest concurrently; a shared atomic clock keeps
  //    timestamps globally unique (the ingest queue re-sorts stragglers).
  std::atomic<Timestamp> clock{1};
  std::vector<std::thread> workers;
  for (int p = 0; p < producers; ++p) {
    workers.emplace_back([&service, &clock, records, p] {
      auto gen = MakeGenerator(Distribution::kClustered, 2,
                               77 + static_cast<std::uint64_t>(p));
      for (std::size_t i = 0; i < records; ++i) {
        const Timestamp ts = clock.fetch_add(1);
        if (!service.Ingest(gen->NextPoint(), ts).ok()) return;
      }
    });
  }
  for (std::thread& t : workers) t.join();

  // 5. Drain and stop: Flush guarantees every pushed record was applied,
  //    Shutdown joins the driver; buffered deltas stay pollable.
  if (const Status st = service.Flush(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  service.Shutdown();
  done.store(true);
  for (std::thread& t : subscribers) t.join();

  std::printf("\nservice: %s\n", service.stats().ToString().c_str());
  std::printf("engine:  %s over %s\n", service.engine_name().c_str(),
              service.EngineCounters().ToString().c_str());
  std::printf("memory:  %s\n", service.Memory().ToString().c_str());
  return 0;
}

/// --dump_metrics: boots the fullest node shape this binary can build —
/// a journaled leader behind a TcpServer, a replica follower shipping
/// from it, and a failover agent riding the follower — snapshots both
/// services' registries and prints the union of registered metric
/// names, one per line, sorted. tools/check_metrics.py diffs this list
/// against the docs/ADMIN.md catalog, so a metric added in code
/// without a catalog row (or vice versa) fails CI.
int DumpMetrics() {
  char leader_tmpl[] = "/tmp/topkmon_dump_leader_XXXXXX";
  char replica_tmpl[] = "/tmp/topkmon_dump_replica_XXXXXX";
  if (::mkdtemp(leader_tmpl) == nullptr ||
      ::mkdtemp(replica_tmpl) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }
  const std::string leader_dir = leader_tmpl;
  const std::string replica_dir = replica_tmpl;
  int rc = 1;
  {
    ServiceOptions lopt;
    lopt.journal.dir = leader_dir;
    auto leader = MonitorService::Open(EngineFactory(500), lopt);
    if (!leader.ok()) {
      std::fprintf(stderr, "%s\n", leader.status().ToString().c_str());
      return 1;
    }
    NetServerOptions net;
    net.port = 0;
    TcpServer server(**leader, net);
    if (const Status st = server.Start(); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    ServiceOptions fopt_service;
    fopt_service.journal.dir = replica_dir;
    ReplicaFollowerOptions fopt;
    fopt.leader_host = "127.0.0.1";
    fopt.leader_port = server.port();
    auto follower =
        ReplicaFollower::Open(EngineFactory(500), fopt_service, fopt);
    if (!follower.ok()) {
      std::fprintf(stderr, "%s\n", follower.status().ToString().c_str());
      server.Stop();
      (*leader)->Shutdown();
      return 1;
    }
    {
      // The agent only needs to *register* its metrics; a day-long
      // election timeout keeps it from ever probing.
      FailoverOptions agent_options;
      agent_options.self_endpoint = "127.0.0.1:1";
      agent_options.election_timeout = std::chrono::hours(24);
      FailoverAgent agent(follower->get(), agent_options);

      std::set<std::string> names;
      for (const MetricsSnapshot& snap :
           {(*leader)->metrics().Snapshot(),
            (*follower)->service().metrics().Snapshot()}) {
        for (const MetricSample& s : snap.samples) names.insert(s.name);
      }
      for (const std::string& name : names) {
        std::printf("%s\n", name.c_str());
      }
      agent.Stop();
    }
    (*follower)->Stop();
    (*follower)->service().Shutdown();
    server.Stop();
    (*leader)->Shutdown();
    rc = 0;
  }
  for (const std::string& dir : {leader_dir, replica_dir}) {
    const std::string cmd = "rm -rf '" + dir + "'";
    if (std::system(cmd.c_str()) != 0) {
      std::fprintf(stderr, "warning: failed to clean %s\n", dir.c_str());
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 1;
  }
  const auto mode_flag = flags->GetString("mode", "local");
  const auto host_flag = flags->GetString("host", "127.0.0.1");
  const auto label_flag = flags->GetString("label", "demo-client");
  const auto port_flag = flags->GetInt("port", 4585);
  const auto producers_flag = flags->GetInt("producers", 3);
  const auto records_flag = flags->GetInt("records", 5000);
  const auto queries_flag = flags->GetInt("queries", 2);
  const auto k_flag = flags->GetInt("k", 3);
  const auto window_flag = flags->GetInt("window", 2000);
  const auto serve_seconds_flag = flags->GetInt("serve_seconds", 0);
  const auto listen_flag = flags->GetInt("listen", 4586);
  const auto promote_seconds_flag = flags->GetInt("promote_seconds", 0);
  const auto server_threads_flag = flags->GetInt("server_threads", 0);
  const auto partitions_flag = flags->GetInt("partitions", 3);
  // -1 = untagged (standalone); 0..N-1 = this server's partition index.
  const auto server_tag_flag = flags->GetInt("server_tag", -1);
  // -1 = admin plane off; 0 = ephemeral port; >0 = fixed port.
  const auto admin_port_flag = flags->GetInt("admin_port", -1);
  for (const auto* f : {&producers_flag, &records_flag, &queries_flag,
                        &k_flag, &window_flag, &port_flag,
                        &serve_seconds_flag, &listen_flag,
                        &promote_seconds_flag, &server_threads_flag,
                        &partitions_flag, &server_tag_flag,
                        &admin_port_flag}) {
    if (!f->ok()) {
      std::fprintf(stderr, "%s\n", f->status().ToString().c_str());
      return 1;
    }
  }
  if (*admin_port_flag > 65535) {
    std::fprintf(stderr,
                 "INVALID_ARGUMENT: flag --admin_port expects a port in "
                 "[0, 65535], got %d\n",
                 *admin_port_flag);
    return 1;
  }
  const auto journal_flag = flags->GetString("journal", "");
  const auto sync_flag = flags->GetString("sync", "none");
  const auto workload_flag = flags->GetString("workload", "");
  const auto workload_seed_flag = flags->GetInt("workload_seed", 42);
  if (!mode_flag.ok() || !host_flag.ok() || !label_flag.ok() ||
      !journal_flag.ok() || !sync_flag.ok() || !workload_flag.ok() ||
      !workload_seed_flag.ok()) {
    std::fprintf(stderr, "bad string flag\n");
    return 1;
  }
  if (*workload_flag == "list" || *workload_flag == "help") {
    return PrintWorkloads();
  }
  const auto dump_metrics_flag = flags->GetBool("dump_metrics", false);
  if (!dump_metrics_flag.ok()) {
    std::fprintf(stderr, "%s\n",
                 dump_metrics_flag.status().ToString().c_str());
    return 1;
  }
  if (*dump_metrics_flag) return DumpMetrics();
  const auto sync_policy = ParseSyncPolicy(*sync_flag);
  if (!sync_policy.ok()) {
    std::fprintf(stderr, "%s\n", sync_policy.status().ToString().c_str());
    return 1;
  }
  const std::size_t window = static_cast<std::size_t>(*window_flag);
  const std::uint16_t port = static_cast<std::uint16_t>(*port_flag);

  if (*mode_flag == "serve") {
    return RunServe(window, *journal_flag, *sync_policy, port,
                    static_cast<long>(*serve_seconds_flag),
                    static_cast<std::size_t>(*server_threads_flag),
                    *server_tag_flag < 0
                        ? kNoServerTag
                        : static_cast<std::uint32_t>(*server_tag_flag),
                    static_cast<long>(*admin_port_flag));
  }
  if (*mode_flag == "cluster") {
    if (*partitions_flag < 1) {
      std::fprintf(stderr, "--partitions must be >= 1\n");
      return 1;
    }
    return RunCluster(static_cast<std::size_t>(*partitions_flag),
                      static_cast<int>(*producers_flag),
                      static_cast<std::size_t>(*records_flag),
                      static_cast<std::size_t>(*queries_flag),
                      static_cast<int>(*k_flag), window, *journal_flag,
                      *sync_policy);
  }
  if (*mode_flag == "client") {
    return RunClient(*host_flag, port, *label_flag,
                     static_cast<std::size_t>(*records_flag),
                     static_cast<std::size_t>(*queries_flag),
                     static_cast<int>(*k_flag));
  }
  if (*mode_flag == "follower") {
    return RunFollower(window, *journal_flag, *host_flag, port,
                       static_cast<std::uint16_t>(*listen_flag),
                       static_cast<long>(*serve_seconds_flag),
                       static_cast<long>(*promote_seconds_flag),
                       static_cast<std::size_t>(*server_threads_flag),
                       static_cast<long>(*admin_port_flag));
  }
  if (*mode_flag == "local" && !workload_flag->empty()) {
    return RunWorkloadDriven(
        *workload_flag,
        static_cast<std::uint64_t>(*workload_seed_flag),
        static_cast<std::size_t>(*records_flag),
        static_cast<std::size_t>(*queries_flag),
        static_cast<int>(*k_flag), window, *journal_flag, *sync_policy);
  }
  if (*mode_flag == "local") {
    return RunLocal(static_cast<int>(*producers_flag),
                    static_cast<std::size_t>(*records_flag),
                    static_cast<std::size_t>(*queries_flag),
                    static_cast<int>(*k_flag), window, *journal_flag,
                    *sync_policy);
  }
  std::fprintf(
      stderr,
      "unknown --mode '%s' (local|serve|client|follower|cluster)\n",
      mode_flag->c_str());
  return 1;
}
