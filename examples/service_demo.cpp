// Service demo: the monitoring engines behind a multi-client service.
//
// Spins up a MonitorService over a 2-shard TMA engine, then runs real
// concurrency against it:
//   * 3 producer threads stream tuples through the batching ingest queue;
//   * 2 client sessions each register continuous top-k queries and run a
//     subscriber thread that long-polls its delta subscription, printing
//     every change as it arrives (sequence number, cycle, entered/left).
// Ends with a graceful shutdown and the service-level counters.
//
// With --journal=DIR the service write-ahead-journals every cycle and
// recovers the directory on startup: run the demo twice with the same
// DIR and the second run prints the recovery summary, re-adopts the
// first run's sessions by label, and continues their queries.
//
// Flags: --producers=N --records=N --queries=N --k=N --window=N
//        --journal=DIR --sync=none|interval|always

#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "core/sharded_engine.h"
#include "core/tma_engine.h"
#include "service/monitor_service.h"
#include "stream/generators.h"
#include "util/flags.h"
#include "util/rng.h"

using namespace topkmon;

int main(int argc, char** argv) {
  const auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 1;
  }
  const auto producers_flag = flags->GetInt("producers", 3);
  const auto records_flag = flags->GetInt("records", 5000);
  const auto queries_flag = flags->GetInt("queries", 2);
  const auto k_flag = flags->GetInt("k", 3);
  const auto window_flag = flags->GetInt("window", 2000);
  for (const auto* f :
       {&producers_flag, &records_flag, &queries_flag, &k_flag,
        &window_flag}) {
    if (!f->ok()) {
      std::fprintf(stderr, "%s\n", f->status().ToString().c_str());
      return 1;
    }
  }
  const auto journal_flag = flags->GetString("journal", "");
  const auto sync_flag = flags->GetString("sync", "none");
  if (!journal_flag.ok() || !sync_flag.ok()) {
    std::fprintf(stderr, "bad --journal/--sync flag\n");
    return 1;
  }
  const std::string journal_dir = *journal_flag;
  const auto sync_policy = ParseSyncPolicy(*sync_flag);
  if (!sync_policy.ok()) {
    std::fprintf(stderr, "%s\n", sync_policy.status().ToString().c_str());
    return 1;
  }
  const int producers = static_cast<int>(*producers_flag);
  const std::size_t records = static_cast<std::size_t>(*records_flag);
  const std::size_t queries_per_session =
      static_cast<std::size_t>(*queries_flag);
  const int k = static_cast<int>(*k_flag);
  const std::size_t window = static_cast<std::size_t>(*window_flag);

  // 1. Engine + service. The service owns the cycle-driver thread; we
  //    never call the engine directly again. With --journal, Open()
  //    recovers the directory first and resumes journaling.
  ServiceOptions options;
  options.ingest.slack = 4;
  options.drain_wait = std::chrono::milliseconds(2);
  options.journal.dir = journal_dir;
  options.journal.sync = *sync_policy;
  const auto engine_factory = [window] {
    return std::unique_ptr<MonitorEngine>(new ShardedEngine(
        2,
        [window] {
          GridEngineOptions opt;
          opt.dim = 2;
          opt.window = WindowSpec::Count(window);
          return std::unique_ptr<MonitorEngine>(new TmaEngine(opt));
        }));
  };
  std::unique_ptr<MonitorService> owned_service;
  if (journal_dir.empty()) {
    owned_service =
        std::make_unique<MonitorService>(engine_factory(), options);
  } else {
    auto opened = MonitorService::Open(engine_factory, options);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      return 1;
    }
    owned_service = std::move(*opened);
    std::printf("journal: %s\n",
                owned_service->recovery().ToString().c_str());
  }
  MonitorService& service = *owned_service;

  // 2. Two client sessions, each holding continuous queries. After a
  //    recovery the sessions already exist (adopted by label) and keep
  //    the previous run's queries.
  const char* names[2] = {"alice", "bob"};
  std::vector<SessionId> sessions;
  Rng rng(2024);
  for (const char* name : names) {
    if (const auto adopted = service.FindSession(name); adopted.ok()) {
      std::printf("[%s] adopted recovered session %llu\n", name,
                  static_cast<unsigned long long>(*adopted));
      sessions.push_back(*adopted);
      continue;
    }
    const auto session = service.OpenSession(name);
    if (!session.ok()) {
      std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
      return 1;
    }
    sessions.push_back(*session);
    for (std::size_t q = 0; q < queries_per_session; ++q) {
      QuerySpec spec;  // the service assigns the id
      spec.k = k;
      spec.function = MakeRandomFunction(
          FunctionFamily::kLinear, 2, [&rng] { return rng.Uniform(); });
      const auto id = service.Register(*session, spec);
      if (!id.ok()) {
        std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
        return 1;
      }
      std::printf("[%s] registered query %u: top-%d under %s\n", name, *id,
                  k, spec.function->ToString().c_str());
    }
  }

  // 3. Subscriber threads long-poll their session's delta stream.
  std::atomic<bool> done{false};
  std::vector<std::thread> subscribers;
  for (std::size_t s = 0; s < sessions.size(); ++s) {
    subscribers.emplace_back([&service, &done, &names, &sessions, s] {
      std::uint64_t printed = 0;
      std::vector<DeltaEvent> events;
      while (true) {
        events.clear();
        const std::size_t n = service.WaitDeltas(
            sessions[s], 64, std::chrono::milliseconds(20), &events);
        for (const DeltaEvent& e : events) {
          // Print only a prefix per session to keep the demo readable.
          if (++printed <= 8) {
            std::printf("[%s] seq=%llu t=%lld query=%u +%zu -%zu\n",
                        names[s],
                        static_cast<unsigned long long>(e.seq),
                        static_cast<long long>(e.delta.when),
                        e.delta.query, e.delta.added.size(),
                        e.delta.removed.size());
          }
        }
        if (n == 0 && done.load()) break;
      }
      std::printf("[%s] received %llu delta events (%llu dropped)\n",
                  names[s], static_cast<unsigned long long>(printed),
                  static_cast<unsigned long long>(
                      service.DroppedDeltas(sessions[s])));
    });
  }

  // 4. Producer threads ingest concurrently; a shared atomic clock keeps
  //    timestamps globally unique (the ingest queue re-sorts stragglers).
  std::atomic<Timestamp> clock{1};
  std::vector<std::thread> workers;
  for (int p = 0; p < producers; ++p) {
    workers.emplace_back([&service, &clock, records, p] {
      auto gen = MakeGenerator(Distribution::kClustered, 2,
                               77 + static_cast<std::uint64_t>(p));
      for (std::size_t i = 0; i < records; ++i) {
        const Timestamp ts = clock.fetch_add(1);
        if (!service.Ingest(gen->NextPoint(), ts).ok()) return;
      }
    });
  }
  for (std::thread& t : workers) t.join();

  // 5. Drain and stop: Flush guarantees every pushed record was applied,
  //    Shutdown joins the driver; buffered deltas stay pollable.
  if (const Status st = service.Flush(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  service.Shutdown();
  done.store(true);
  for (std::thread& t : subscribers) t.join();

  std::printf("\nservice: %s\n", service.stats().ToString().c_str());
  std::printf("engine:  %s over %s\n", service.engine_name().c_str(),
              service.EngineCounters().ToString().c_str());
  std::printf("memory:  %s\n", service.Memory().ToString().c_str());
  return 0;
}
